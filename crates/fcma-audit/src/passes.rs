//! The audit passes. Each takes the analyzed workspace and returns
//! violations; the driver prints them as `file:line: pass: message`.
//!
//! | pass          | scope                               | escape hatch |
//! |---------------|-------------------------------------|--------------|
//! | `unsafe`      | every source file                   | none |
//! | `cast`        | kernel-crate library code           | allow marker |
//! | `proptest`    | top-level `pub fn`s of fcma-linalg  | allow marker |
//! | `moddoc`      | every `src/*.rs` file               | none |
//! | `tracename`   | span!/event!/counter!/histogram! sites outside fcma-trace | allow marker |
//! | `layering`    | Cargo.toml edges + cross-crate paths vs DESIGN.md §12 DAG | none |
//! | `panicpath`   | call-graph panic reachability of sweep-crate `pub fn`s | `# Panics` docs or allow marker |
//! | `protocol`    | ToWorker/FromWorker ↔ driver match arms ↔ DESIGN.md §12 table | none |
//! | `deadpub`     | sweep-crate `pub` items with no cross-crate references | allow marker |
//! | `syncfacade`  | no raw `std::sync`/`std::thread`/vendor sync primitives outside fcma-sync | allow marker |
//! | `lockorder`   | `.lock()` receivers declared in DESIGN.md §13, acquired in rank order | allow marker |
//! | `blockinlock` | no channel recv / file I/O reachable while a facade lock is held | allow marker |
//! | `allocinloop` | no heap allocation reachable inside a loop of a hot fn (DESIGN.md §14) | allow marker |
//! | `boundsinloop`| no `a[i]` induction-variable indexing in innermost hot loops | allow marker |
//! | `accumorder`  | float accumulators in hot loops must use the blessed fcma-linalg idioms | allow marker |
//! | `hotcallout`  | hot fns call only hot/`audit: pure` fns — no I/O, tracing, or locking | allow marker |
//! | `threadescape`| values captured by thread-boundary closures are immutable, atomic, lock-guarded, or `audit: disjoint` | allow marker |
//! | `lockset`     | Eraser-style: fields of shared structs written from ≥2 fns need a non-empty held-lock intersection | allow marker |
//! | `atomicorder` | every `Ordering::*` site matches a DESIGN.md §16 atomics-contract row; seqlock publish shape | allow marker |
//! | `unusedallow` | every allow or disjoint marker must suppress something | none |
//!
//! Allow markers are comments of the form
//! `// audit: allow(<pass>) — <reason>` on the offending line or the line
//! directly above; the reason is mandatory. The `unusedallow` pass runs
//! last and flags any marker no other pass consumed.
//!
//! Disjoint-band markers — `// audit: disjoint(<name>) — <reason>` — are
//! the race-detector counterpart: they classify a mutable value crossing
//! a thread boundary as partitioned into non-overlapping per-task pieces
//! (the `split_at_mut` output-band pattern of DESIGN.md §15). The
//! `threadescape`/`lockset` passes consume them; `unusedallow` flags the
//! stale ones.
//!
//! The four hot-path passes are scoped by DESIGN.md §14: a fn is *hot*
//! when the §14 "Hot functions" table names it or an `// audit: hot`
//! marker sits on its `fn` line (or directly above). `// audit: pure`
//! marks a trusted leaf a hot fn may call; pure fns are not themselves
//! scanned, but their allocation effects still propagate — pure is not
//! an allocation escape.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::FnCfg;
use crate::dataflow;
use crate::graph::{CallGraph, Contracts, CrateGraph, SeqlockDecl};
use crate::parser::{self, ParsedFile, TypeKind, Vis};
use crate::source::{marker_allows, Role, SourceFile};

/// Crates whose numeric code is held to the no-`as`-cast rule.
const KERNEL_CRATES: &[&str] = &["fcma-linalg", "fcma-core"];

/// The crate whose public kernels must be exercised by property tests.
const PROPTEST_CRATE: &str = "fcma-linalg";

/// The tracing substrate itself — exempt from the `tracename` pass (it
/// defines the probes; instrumentation lives in the other crates).
const TRACE_CRATE: &str = "fcma-trace";

/// Call-site prefixes whose first string literal is a trace name.
const TRACE_SITES: &[&str] = &[
    "span!(",
    "event!(",
    "counter!(",
    "labeled_counter!(",
    "histogram!(",
    "record!(",
    "record_span_since(",
    "record_span_elapsed(",
];

/// Where the cluster protocol enums live.
const PROTOCOL_FILE: &str = "crates/fcma-cluster/src/protocol.rs";

/// Where the master/worker loops match on protocol messages.
const DRIVER_FILE: &str = "crates/fcma-cluster/src/driver.rs";

/// Crates whose code never runs inside a sweep, exempt from the
/// `panicpath` and `deadpub` passes: `fcma-audit` is this CI tool
/// itself, `fcma-bench` is a measurement harness, and `fcma-mc` is the
/// model-checking harness (its asserts *should* abort the checker), so
/// a panic or an unused `pub` item there cannot take down a worker.
/// Every other library crate — including any future one — is in scope
/// by default.
const EXEMPT_CRATES: &[&str] = &["fcma-audit", "fcma-bench", "fcma-mc", "fcma-mut"];

/// The package name of the workspace root crate.
const ROOT_CRATE: &str = "fcma";

/// Crates exempt from the concurrency-facade passes (`syncfacade`,
/// `lockorder`, `blockinlock`): `fcma-sync` *is* the facade, `fcma-mc`
/// is the model checker driving it, `fcma-trace` is the observational
/// substrate below it (its internal registry mutex must keep working
/// while the facade is in model mode), and the tool/bench crates never
/// run inside a sweep.
pub(crate) const SYNC_EXEMPT_CRATES: &[&str] =
    &["fcma-sync", "fcma-mc", "fcma-trace", "fcma-audit", "fcma-bench"];

/// `std::sync` items forbidden outside the facade. `Arc`/`Weak` stay
/// allowed — they are shared ownership, not synchronization, and the
/// model checker does not need to interpose on them.
const FORBIDDEN_STD_SYNC: &[&str] =
    &["Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "LazyLock", "mpsc", "atomic"];

/// Call names that can block the calling thread — channel receives and
/// file I/O — and are therefore forbidden while a facade lock is held.
const BLOCKING_CALLS: &[&str] =
    &["recv", "recv_timeout", "read_to_string", "write_all", "flush", "sync_all"];

/// The mutant classes an `// audit: equivalent(<class>)` triage marker
/// may name (alias of [`crate::mutants::MUTANT_CLASSES`], kept local so
/// the marker checks read without a module hop).
const MUTANT_CLASSES_FOR_MARKERS: &[&str] = crate::mutants::MUTANT_CLASSES;

/// Every pass name an allow marker may reference, in `run_all` order.
pub const PASS_NAMES: &[&str] = &[
    "unsafe",
    "cast",
    "proptest",
    "moddoc",
    "tracename",
    "layering",
    "panicpath",
    "protocol",
    "deadpub",
    "syncfacade",
    "lockorder",
    "blockinlock",
    "allocinloop",
    "boundsinloop",
    "accumorder",
    "hotcallout",
    "threadescape",
    "lockset",
    "atomicorder",
    "unusedallow",
];

/// Passes that honor allow markers at all.
pub const ESCAPABLE_PASSES: &[&str] = &[
    "cast",
    "proptest",
    "tracename",
    "panicpath",
    "deadpub",
    "syncfacade",
    "lockorder",
    "blockinlock",
    "allocinloop",
    "boundsinloop",
    "accumorder",
    "hotcallout",
    "threadescape",
    "lockset",
    "atomicorder",
];

/// One diagnostic. Lines are 1-based for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Pass name (see the module table).
    pub pass: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.pass, self.message)
    }
}

/// The fully analyzed workspace every pass runs over: lexed + parsed
/// sources, the crate-dependency graph, the DESIGN.md contracts, and a
/// shared record of which allow markers were actually consulted (fed to
/// the `unusedallow` pass).
pub struct Workspace {
    /// Lexed and scope-analyzed files.
    pub files: Vec<SourceFile>,
    /// Item-parsed view of the same files (index-parallel).
    pub parsed: Vec<ParsedFile>,
    /// Crate-dependency graph from the manifests.
    pub crates: CrateGraph,
    /// Machine-readable DESIGN.md §12 contracts.
    pub contracts: Contracts,
    /// Trace-name taxonomy from DESIGN.md §Observability.
    pub taxonomy: Option<Taxonomy>,
    /// `(file index, marker line)` of every consumed allow marker.
    used_markers: RefCell<BTreeSet<(usize, usize)>>,
    /// `(file index, marker line)` of every consumed disjoint marker.
    used_disjoint: RefCell<BTreeSet<(usize, usize)>>,
}

impl Workspace {
    /// Parse `files` and assemble the workspace model.
    pub fn new(
        files: Vec<SourceFile>,
        crates: CrateGraph,
        contracts: Contracts,
        taxonomy: Option<Taxonomy>,
    ) -> Workspace {
        let parsed = files.iter().map(|f| parser::parse(&f.scan)).collect();
        Workspace {
            files,
            parsed,
            crates,
            contracts,
            taxonomy,
            used_markers: RefCell::new(BTreeSet::new()),
            used_disjoint: RefCell::new(BTreeSet::new()),
        }
    }

    /// Parse-free constructor for callers that already hold the parsed
    /// views (the mutation engine's per-mutant overlay re-parses one
    /// file and clones the rest — re-parsing the whole workspace for
    /// every mutant would dominate its runtime). `parsed` must be
    /// index-parallel with `files`.
    pub fn with_parsed(
        files: Vec<SourceFile>,
        parsed: Vec<ParsedFile>,
        crates: CrateGraph,
        contracts: Contracts,
        taxonomy: Option<Taxonomy>,
    ) -> Workspace {
        debug_assert_eq!(files.len(), parsed.len());
        Workspace {
            files,
            parsed,
            crates,
            contracts,
            taxonomy,
            used_markers: RefCell::new(BTreeSet::new()),
            used_disjoint: RefCell::new(BTreeSet::new()),
        }
    }

    /// The crate key of a file (the root package's files key as `fcma`).
    pub fn crate_key(&self, file: usize) -> &str {
        self.files[file].crate_name.as_deref().unwrap_or(ROOT_CRATE)
    }

    /// Does an allow marker for `pass` cover 0-based `line` of `file`?
    /// A hit is recorded as consumed for the `unusedallow` pass.
    pub fn allowed(&self, file: usize, pass: &str, line: usize) -> bool {
        let f = &self.files[file];
        for l in [line, line.wrapping_sub(1)] {
            if l < f.scan.comment_lines.len() && marker_allows(&f.scan.comment_lines[l], pass) {
                self.used_markers.borrow_mut().insert((file, l));
                return true;
            }
        }
        false
    }

    /// Does a `// audit: disjoint(<what>)` marker (with its mandatory
    /// reason) cover 0-based `line` of `file`? A hit is recorded as
    /// consumed for the `unusedallow` pass.
    pub fn disjoint_allowed(&self, file: usize, what: &str, line: usize) -> bool {
        let f = &self.files[file];
        for l in [line, line.wrapping_sub(1)] {
            if l < f.scan.comment_lines.len() {
                let hit = crate::source::parse_disjoint(&f.scan.comment_lines[l])
                    .is_some_and(|(w, has_reason)| w == what && has_reason);
                if hit {
                    self.used_disjoint.borrow_mut().insert((file, l));
                    return true;
                }
            }
        }
        false
    }

    /// Run every pass and return the sorted violations.
    pub fn run_all(&self) -> Vec<Violation> {
        self.run_selected(PASS_NAMES)
    }

    /// Run only the named passes (unknown names are ignored — the CLI
    /// validates them). `unusedallow` is additionally gated on *every*
    /// escapable pass being selected: with a subset running, unconsumed
    /// markers are expected, not stale.
    pub fn run_selected(&self, passes: &[&str]) -> Vec<Violation> {
        let on = |p: &str| passes.contains(&p);
        let mut v = Vec::new();
        if on("unsafe") {
            v.extend(check_unsafe(self));
        }
        if on("cast") {
            v.extend(check_casts(self));
        }
        if on("proptest") {
            v.extend(check_proptest_coverage(self));
        }
        if on("moddoc") {
            v.extend(check_module_docs(self));
        }
        if on("tracename") {
            v.extend(check_trace_names(self));
        }
        if on("layering") {
            v.extend(check_layering(self));
        }
        if on("panicpath") {
            v.extend(check_panicpath(self));
        }
        if on("protocol") {
            v.extend(check_protocol(self));
        }
        if on("deadpub") {
            v.extend(check_deadpub(self));
        }
        if on("syncfacade") {
            v.extend(check_syncfacade(self));
        }
        if on("lockorder") {
            v.extend(check_lockorder(self));
        }
        if on("blockinlock") {
            v.extend(check_blockinlock(self));
        }
        if on("allocinloop") {
            v.extend(check_allocinloop(self));
        }
        if on("boundsinloop") {
            v.extend(check_boundsinloop(self));
        }
        if on("accumorder") {
            v.extend(check_accumorder(self));
        }
        if on("hotcallout") {
            v.extend(check_hotcallout(self));
        }
        if on("threadescape") {
            v.extend(crate::escape::check_threadescape(self));
        }
        if on("lockset") {
            v.extend(crate::lockset::check_lockset(self));
        }
        if on("atomicorder") {
            v.extend(check_atomicorder(self));
        }
        // Must run last: it inventories markers the passes above
        // consumed, so it is only meaningful when all of them ran.
        if on("unusedallow") && ESCAPABLE_PASSES.iter().all(|p| on(p)) {
            v.extend(check_unused_allow(self));
        }
        v.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
        v
    }

    /// Per-pass `(violations, allow markers)` counts over the whole
    /// workspace, in [`PASS_NAMES`] order — the payload of the
    /// committed `audit-baseline.json` regression gate.
    pub fn stats(&self) -> Vec<(&'static str, usize, usize)> {
        let violations = self.run_all();
        PASS_NAMES
            .iter()
            .map(|&p| {
                let v = violations.iter().filter(|x| x.pass == p).count();
                let a =
                    self.files.iter().flat_map(SourceFile::markers).filter(|m| m.pass == p).count();
                (p, v, a)
            })
            .collect()
    }
}

/// Pass: no `unsafe` anywhere, no escape hatch.
///
/// The whole point of the Rust port is memory safety under heavy
/// threading; a single `unsafe` block reopens the class of bugs the
/// rewrite closed, so this pass has no allow marker.
pub fn check_unsafe(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.files {
        for &line in &f.unsafe_lines {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: line + 1,
                pass: "unsafe",
                message: "`unsafe` is forbidden workspace-wide (no escape hatch)".to_owned(),
            });
        }
    }
    out
}

/// Pass: no `as` numeric casts in kernel-crate library code.
///
/// `as` silently truncates and saturates; in the correlation kernels a
/// lossy index or value cast corrupts results instead of failing. Use
/// `From`/`TryFrom` (or the crate's cast helpers), or justify with
/// `// audit: allow(cast) — <reason>`.
pub fn check_casts(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.role != Role::Lib
            || !f.crate_name.as_deref().is_some_and(|c| KERNEL_CRATES.contains(&c))
        {
            continue;
        }
        for cast in &f.casts {
            if f.in_test_span(cast.line) || ws.allowed(fi, "cast", cast.line) {
                continue;
            }
            out.push(Violation {
                file: f.rel_path.clone(),
                line: cast.line + 1,
                pass: "cast",
                message: format!(
                    "`as {}` in kernel crate: use From/TryFrom or add \
                     `// audit: allow(cast) — <reason>`",
                    cast.target
                ),
            });
        }
    }
    out
}

/// Pass: every top-level `pub fn` in the linalg crate is referenced
/// from at least one of its integration-test files (where the property
/// tests live), or carries an allow marker.
pub fn check_proptest_coverage(ws: &Workspace) -> Vec<Violation> {
    let test_code: Vec<&String> = ws
        .files
        .iter()
        .filter(|f| f.crate_name.as_deref() == Some(PROPTEST_CRATE) && f.role == Role::Test)
        .flat_map(|f| f.scan.code_lines.iter())
        .collect();

    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.crate_name.as_deref() != Some(PROPTEST_CRATE) || f.role != Role::Lib {
            continue;
        }
        for pf in &ws.parsed[fi].fns {
            if pf.vis != Vis::Pub || !pf.top_level || f.in_test_span(pf.line) {
                continue;
            }
            if ws.allowed(fi, "proptest", pf.line) {
                continue;
            }
            let covered = test_code.iter().any(|line| contains_word(line, &pf.name));
            if !covered {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: pf.line + 1,
                    pass: "proptest",
                    message: format!(
                        "pub fn `{}` is not exercised by any {PROPTEST_CRATE} \
                         integration test; add a property test or \
                         `// audit: allow(proptest) — <reason>`",
                        pf.name
                    ),
                });
            }
        }
    }
    out
}

/// Pass: every library/binary source file starts with `//!` docs.
pub fn check_module_docs(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in ws.files.iter().filter(|f| matches!(f.role, Role::Lib | Role::Bin)) {
        if !f.has_module_docs() {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: 1,
                pass: "moddoc",
                message: "missing module-level `//!` documentation".to_owned(),
            });
        }
    }
    out
}

/// The documented span/counter taxonomy: every backticked `snake.dotted`
/// token under the DESIGN.md "Observability" heading.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    names: BTreeSet<String>,
}

impl Taxonomy {
    /// Parse the taxonomy out of DESIGN.md: all backticked tokens of
    /// `snake.dotted` shape between a heading containing "Observability"
    /// and the next heading. Returns `None` if no such section (or no
    /// names) exists.
    pub fn from_design_md(text: &str) -> Option<Taxonomy> {
        let mut names = BTreeSet::new();
        let mut in_section = false;
        for line in text.lines() {
            if line.starts_with('#') {
                if in_section {
                    break;
                }
                in_section = line.contains("Observability");
                continue;
            }
            if in_section {
                let mut parts = line.split('`');
                // Odd-indexed split segments are inside backticks.
                while let (Some(_), Some(tok)) = (parts.next(), parts.next()) {
                    if is_snake_dotted(tok) {
                        names.insert(tok.to_owned());
                    }
                }
            }
        }
        if names.is_empty() {
            None
        } else {
            Some(Taxonomy { names })
        }
    }

    /// Is `name` part of the documented contract?
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of documented names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the taxonomy is empty (never true for a parsed one).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Pass: every trace-probe name literal is well-formed and documented.
///
/// Span, event, counter, and histogram names are a stable contract —
/// dashboards, the `fcma report --check` invariants, and the CI trace
/// validation all parse them — so each call site's name must (a) be an
/// inline string literal, (b) match the `snake.dotted` shape, and (c)
/// with a taxonomy present, appear verbatim in DESIGN.md §Observability.
/// The fcma-trace crate itself (which defines the probes) and test code
/// are exempt.
pub fn check_trace_names(ws: &Workspace) -> Vec<Violation> {
    let taxonomy = ws.taxonomy.as_ref();
    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if !matches!(f.role, Role::Lib | Role::Bin) || f.crate_name.as_deref() == Some(TRACE_CRATE)
        {
            continue;
        }
        for (lno, code) in f.scan.code_lines.iter().enumerate() {
            for pat in TRACE_SITES {
                for col in site_starts(code, pat) {
                    if f.in_test_span(lno) || ws.allowed(fi, "tracename", lno) {
                        continue;
                    }
                    let site = &pat[..pat.len() - 1];
                    match extract_name(&f.scan.raw_lines, lno, col + pat.len()) {
                        None => out.push(Violation {
                            file: f.rel_path.clone(),
                            line: lno + 1,
                            pass: "tracename",
                            message: format!(
                                "`{site}` call: trace name must be an inline string literal"
                            ),
                        }),
                        Some((name_line, name)) => {
                            if !is_snake_dotted(&name) {
                                out.push(Violation {
                                    file: f.rel_path.clone(),
                                    line: name_line + 1,
                                    pass: "tracename",
                                    message: format!(
                                        "trace name `{name}` is not `snake.dotted` (two or \
                                         more dot-separated [a-z][a-z0-9_]* segments)"
                                    ),
                                });
                            } else if let Some(tax) = taxonomy {
                                if !tax.contains(&name) {
                                    out.push(Violation {
                                        file: f.rel_path.clone(),
                                        line: name_line + 1,
                                        pass: "tracename",
                                        message: format!(
                                            "trace name `{name}` is not documented in \
                                             DESIGN.md §Observability; add it to the taxonomy \
                                             or `// audit: allow(tracename) — <reason>`"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Pass: the crate-dependency DAG matches DESIGN.md §12.
///
/// Three checks, none escapable (edit the table, not the code): every
/// manifest `[dependencies]` edge on a `fcma-*` crate must be allowed by
/// the layering table; every `fcma_*::` path or `use` in library/binary
/// source must stay within the declaring crate's allowed set; and the
/// table itself must stay in sync with the set of workspace crates.
pub fn check_layering(ws: &Workspace) -> Vec<Violation> {
    let Some(table) = &ws.contracts.layering else {
        return Vec::new();
    };
    let mut out = Vec::new();

    // Manifest edges.
    for m in &ws.crates.crates {
        let Some(allowed) = table.get(&m.name) else {
            out.push(Violation {
                file: m.rel_path.clone(),
                line: 1,
                pass: "layering",
                message: format!(
                    "crate `{}` is missing from the DESIGN.md §12 layering table",
                    m.name
                ),
            });
            continue;
        };
        for dep in &m.deps {
            if !allowed.contains(&dep.name) {
                out.push(Violation {
                    file: m.rel_path.clone(),
                    line: dep.line + 1,
                    pass: "layering",
                    message: format!(
                        "dependency `{}` → `{}` violates the DESIGN.md §12 layering DAG",
                        m.name, dep.name
                    ),
                });
            }
        }
    }

    // Table staleness: rows for crates that no longer exist.
    for name in table.keys() {
        if ws.crates.get(name).is_none() {
            out.push(Violation {
                file: "DESIGN.md".to_owned(),
                line: 1,
                pass: "layering",
                message: format!(
                    "layering table lists crate `{name}` which is not in the workspace"
                ),
            });
        }
    }

    // Source-level cross-crate references.
    for (fi, f) in ws.files.iter().enumerate() {
        if !matches!(f.role, Role::Lib | Role::Bin) {
            continue;
        }
        let key = ws.crate_key(fi).to_owned();
        let Some(allowed) = table.get(&key) else {
            continue; // already reported at the manifest
        };
        for (crate_ref, line) in &ws.parsed[fi].crate_refs {
            let dep = crate_ref.replace('_', "-");
            if dep == key || f.in_test_span(*line) {
                continue;
            }
            if !allowed.contains(&dep) {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: line + 1,
                    pass: "layering",
                    message: format!(
                        "`{crate_ref}::` reference from `{key}` violates the DESIGN.md §12 \
                         layering DAG (allowed deps: {})",
                        if allowed.is_empty() {
                            "none".to_owned()
                        } else {
                            allowed.iter().cloned().collect::<Vec<_>>().join(", ")
                        }
                    ),
                });
            }
        }
    }
    out
}

/// Pass: no library `pub fn` reaches a panic, transitively.
///
/// Builds the workspace call graph over non-test library functions of
/// the sweep crates (every library crate except [`EXEMPT_CRATES`]) and
/// propagates panic reachability from every `panic!`-family macro,
/// `.unwrap()`, `.expect()`, and `[idx]` indexing site. A function
/// documented with `# Panics` (or carrying an allow marker on its
/// declaration) is excused and absorbs propagation — its callers are
/// trusted to have read the contract. A marker on a source line
/// suppresses that one source.
pub fn check_panicpath(ws: &Workspace) -> Vec<Violation> {
    // Node inclusion: library-role files, fns outside `#[cfg(test)]`.
    let files: Vec<(String, &ParsedFile)> = ws
        .files
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let key = if f.role == Role::Lib { ws.crate_key(fi).to_owned() } else { String::new() };
            (key, &ws.parsed[fi])
        })
        .collect();
    let include = |file: usize, idx: usize| {
        let f = &ws.files[file];
        f.role == Role::Lib
            && !EXEMPT_CRATES.contains(&ws.crate_key(file))
            && !f.in_test_span(ws.parsed[file].fns[idx].line)
    };

    let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in &ws.crates.crates {
        visible.insert(m.name.clone(), ws.crates.closure(&m.name));
    }

    let graph = CallGraph::build(&files, &include, &visible);

    let direct: Vec<Option<String>> = graph
        .nodes
        .iter()
        .map(|n| {
            let f = &ws.parsed[n.file].fns[n.idx];
            // Eager over every source: a marker on a later source must be
            // consulted (and consumed) even when an earlier one already
            // condemns the function.
            let unmarked: Vec<_> =
                f.sources.iter().filter(|s| !ws.allowed(n.file, "panicpath", s.line)).collect();
            unmarked.first().map(|s| {
                format!("{} at {}:{}", s.kind.label(), ws.files[n.file].rel_path, s.line + 1)
            })
        })
        .collect();

    let absorbing: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| {
            let f = &ws.parsed[n.file].fns[n.idx];
            f.doc_panics || ws.allowed(n.file, "panicpath", f.line)
        })
        .collect();

    let describe = |j: usize| {
        let n = &graph.nodes[j];
        let f = &ws.parsed[n.file].fns[n.idx];
        format!("`{}` ({}:{})", f.name, ws.files[n.file].rel_path, f.line + 1)
    };
    let reach = graph.reach(&direct, &absorbing, &describe);

    let mut out = Vec::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        let f = &ws.parsed[n.file].fns[n.idx];
        if f.vis != Vis::Pub || absorbing[i] {
            continue;
        }
        if let Some(why) = &reach[i] {
            out.push(Violation {
                file: ws.files[n.file].rel_path.clone(),
                line: f.line + 1,
                pass: "panicpath",
                message: format!(
                    "pub fn `{}` can panic ({why}); return a typed error, document \
                     `# Panics`, or add `// audit: allow(panicpath) — <reason>`",
                    f.name
                ),
            });
        }
    }
    out
}

/// Pass: the master–worker protocol state machine is total and matches
/// the DESIGN.md §12 protocol table.
///
/// Four-way consistency between the `ToWorker`/`FromWorker` enums, the
/// `match` arms in the driver, the send sites, and the table: every enum
/// variant appears in the table and vice versa; every variant is handled
/// by at least one driver match arm (so no send site can target an
/// ignored variant); table-declared payload fields exist on the variant;
/// and `FromWorker::Done` always carries task identity (`task`). No
/// escape hatch — change the protocol and the table together.
pub fn check_protocol(ws: &Workspace) -> Vec<Violation> {
    let Some(table) = &ws.contracts.protocol else {
        return Vec::new();
    };
    let Some(pfi) = ws.files.iter().position(|f| f.rel_path == PROTOCOL_FILE) else {
        return Vec::new();
    };
    let proto_file = &ws.files[pfi];
    let enums: Vec<_> = ws.parsed[pfi]
        .types
        .iter()
        .filter(|t| t.kind == TypeKind::Enum && table.iter().any(|e| e.enum_name == t.name))
        .collect();
    let mut out = Vec::new();

    // Table rows referencing unknown enums or variants.
    for entry in table {
        let Some(en) = enums.iter().find(|t| t.name == entry.enum_name) else {
            out.push(Violation {
                file: "DESIGN.md".to_owned(),
                line: 1,
                pass: "protocol",
                message: format!(
                    "protocol table references enum `{}` not found in {PROTOCOL_FILE}",
                    entry.enum_name
                ),
            });
            continue;
        };
        let Some(variant) = en.variants.iter().find(|v| v.name == entry.variant) else {
            out.push(Violation {
                file: "DESIGN.md".to_owned(),
                line: 1,
                pass: "protocol",
                message: format!(
                    "protocol table lists `{}::{}` but the enum has no such variant",
                    entry.enum_name, entry.variant
                ),
            });
            continue;
        };
        for field in &entry.fields {
            if !variant.field_names.contains(field) && !variant.idents.contains(field) {
                out.push(Violation {
                    file: proto_file.rel_path.clone(),
                    line: variant.line + 1,
                    pass: "protocol",
                    message: format!(
                        "variant `{}::{}` must carry field `{field}` per the DESIGN.md §12 \
                         protocol table",
                        entry.enum_name, entry.variant
                    ),
                });
            }
        }
    }

    // Task identity is structural, not table-editable: `Done` without a
    // `task` field breaks the scheduler's exactly-once accounting.
    if let Some(done) = enums
        .iter()
        .find(|t| t.name == "FromWorker")
        .and_then(|t| t.variants.iter().find(|v| v.name == "Done"))
    {
        if !done.field_names.iter().any(|f| f == "task") {
            out.push(Violation {
                file: proto_file.rel_path.clone(),
                line: done.line + 1,
                pass: "protocol",
                message: "`FromWorker::Done` must carry task identity in a `task` field".to_owned(),
            });
        }
    }

    // Enum variants absent from the table.
    for en in &enums {
        for v in &en.variants {
            if !table.iter().any(|e| e.enum_name == en.name && e.variant == v.name) {
                out.push(Violation {
                    file: proto_file.rel_path.clone(),
                    line: v.line + 1,
                    pass: "protocol",
                    message: format!(
                        "variant `{}::{}` is not documented in the DESIGN.md §12 protocol \
                         table",
                        en.name, v.name
                    ),
                });
            }
        }
    }

    // Driver totality: every variant must have a match arm; send sites
    // for unhandled variants are reported with the evidence.
    if let Some(dfi) = ws.files.iter().position(|f| f.rel_path == DRIVER_FILE) {
        let driver = &ws.files[dfi];
        for en in &enums {
            for v in &en.variants {
                let needle = format!("{}::{}", en.name, v.name);
                let mut handled = 0usize;
                let mut sends = 0usize;
                for (lno, code) in driver.scan.code_lines.iter().enumerate() {
                    if driver.in_test_span(lno) {
                        continue;
                    }
                    let mut from = 0usize;
                    while let Some(p) = code[from..].find(&needle) {
                        let pos = from + p;
                        let end = pos + needle.len();
                        let boundary = code[end..]
                            .chars()
                            .next()
                            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
                        if boundary {
                            if code[end..].contains("=>") {
                                handled += 1;
                            } else if code[..pos].contains("send(") {
                                sends += 1;
                            }
                        }
                        from = end;
                    }
                }
                if handled == 0 {
                    let evidence = if sends > 0 {
                        format!(" ({sends} send site(s) target it)")
                    } else {
                        String::new()
                    };
                    out.push(Violation {
                        file: proto_file.rel_path.clone(),
                        line: v.line + 1,
                        pass: "protocol",
                        message: format!(
                            "variant `{}::{}` is not handled by any match arm in \
                             {DRIVER_FILE}{evidence}",
                            en.name, v.name
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Pass: no workspace-`pub` item without cross-crate references.
///
/// A `pub` item in a library crate that nothing outside its own crate's
/// library target references is API surface without a consumer: demote
/// it to `pub(crate)`, delete it, or justify keeping it with
/// `// audit: allow(deadpub) — <reason>`. References are counted from
/// any file of a different crate and from the declaring crate's own
/// tests/benches/binaries. Trait-impl and trait-declared methods are
/// exempt (their visibility is the trait's business), as are `main`,
/// the item's own declaration file, and the [`EXEMPT_CRATES`] tool
/// crates.
pub fn check_deadpub(ws: &Workspace) -> Vec<Violation> {
    struct Item<'a> {
        file: usize,
        line: usize,
        name: &'a str,
        kind: &'static str,
    }
    let mut items = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.role != Role::Lib || EXEMPT_CRATES.contains(&ws.crate_key(fi)) {
            continue;
        }
        for pf in &ws.parsed[fi].fns {
            if pf.vis == Vis::Pub
                && !pf.trait_impl
                && !pf.in_trait
                && pf.name != "main"
                && !f.in_test_span(pf.line)
            {
                items.push(Item { file: fi, line: pf.line, name: &pf.name, kind: "fn" });
            }
        }
        for t in &ws.parsed[fi].types {
            if t.vis == Vis::Pub && !f.in_test_span(t.line) {
                let kind = match t.kind {
                    TypeKind::Struct => "struct",
                    TypeKind::Enum => "enum",
                    TypeKind::Trait => "trait",
                };
                items.push(Item { file: fi, line: t.line, name: &t.name, kind });
            }
        }
    }

    let mut out = Vec::new();
    for item in items {
        let my_crate = ws.crate_key(item.file).to_owned();
        let referenced = ws.files.iter().enumerate().any(|(fi, f)| {
            if fi == item.file {
                return false;
            }
            let cross_crate = ws.crate_key(fi) != my_crate;
            if !cross_crate && f.role == Role::Lib {
                return false;
            }
            f.scan.code_lines.iter().any(|line| contains_word(line, item.name))
        });
        if referenced || ws.allowed(item.file, "deadpub", item.line) {
            continue;
        }
        out.push(Violation {
            file: ws.files[item.file].rel_path.clone(),
            line: item.line + 1,
            pass: "deadpub",
            message: format!(
                "pub {} `{}` has no cross-crate references; demote to pub(crate), remove \
                 it, or add `// audit: allow(deadpub) — <reason>`",
                item.kind, item.name
            ),
        });
    }
    out
}

/// Pass: no raw synchronization primitive outside the fcma-sync facade.
///
/// The model checker (`fcma-mc`) can only explore interleavings that
/// route through `fcma_sync`'s choice points; a raw `std::sync::Mutex`,
/// `std::thread::spawn`, `crossbeam_channel`, or `parking_lot` lock in
/// scheduler-adjacent code is invisible to it and silently shrinks the
/// verified state space. `std::sync::Arc`/`Weak` stay allowed (shared
/// ownership, not synchronization). Kernel-local uses with a bounded
/// critical section can justify themselves with
/// `// audit: allow(syncfacade) — <reason>`.
pub fn check_syncfacade(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if !matches!(f.role, Role::Lib | Role::Bin)
            || SYNC_EXEMPT_CRATES.contains(&ws.crate_key(fi))
        {
            continue;
        }
        let flag = |line: usize, what: &str, instead: &str, out: &mut Vec<Violation>| {
            if f.in_test_span(line) || ws.allowed(fi, "syncfacade", line) {
                return;
            }
            out.push(Violation {
                file: f.rel_path.clone(),
                line: line + 1,
                pass: "syncfacade",
                message: format!(
                    "`{what}` bypasses the fcma-sync facade (invisible to the model \
                     checker); use {instead} or add `// audit: allow(syncfacade) — <reason>`"
                ),
            });
        };
        for (lno, code) in f.scan.code_lines.iter().enumerate() {
            if !site_starts_word(code, "crossbeam_channel").is_empty() {
                flag(lno, "crossbeam_channel", "`fcma_sync::channel`", &mut out);
            }
            if !site_starts_word(code, "parking_lot").is_empty() {
                flag(lno, "parking_lot", "`fcma_sync::Mutex`", &mut out);
            }
            if !site_starts_word(code, "std::thread").is_empty() {
                flag(lno, "std::thread", "`fcma_sync::thread`", &mut out);
            }
            for col in site_starts(code, "std::sync::") {
                let after = col + "std::sync::".len();
                for item in std_sync_items(&f.scan.code_lines, lno, after) {
                    if FORBIDDEN_STD_SYNC.contains(&item.as_str()) {
                        flag(
                            lno,
                            &format!("std::sync::{item}"),
                            "the `fcma_sync` equivalent",
                            &mut out,
                        );
                    }
                }
            }
        }
    }
    out
}

/// The item names referenced by a `std::sync::` path starting at char
/// `from` on line `lno`: the single following identifier, or for a
/// grouped import (`std::sync::{Arc, Mutex}`) every top-level ident in
/// the braces, following continuation lines until the group closes.
fn std_sync_items(code_lines: &[String], lno: usize, from: usize) -> Vec<String> {
    let mut items = Vec::new();
    let first: Vec<char> = code_lines[lno].chars().collect();
    if first.get(from) != Some(&'{') {
        let mut name = String::new();
        let mut i = from;
        while i < first.len() && (first[i].is_alphanumeric() || first[i] == '_') {
            name.push(first[i]);
            i += 1;
        }
        if !name.is_empty() {
            items.push(name);
        }
        return items;
    }
    // Grouped import: collect the first ident of each `,`-separated
    // entry at brace depth 1 (so `atomic::AtomicBool` yields `atomic`).
    let mut depth = 0i32;
    let mut expecting = true;
    for (idx, raw) in code_lines.iter().enumerate().skip(lno) {
        let chars: Vec<char> = raw.chars().collect();
        let mut i = if idx == lno { from } else { 0 };
        while i < chars.len() {
            match chars[i] {
                '{' => {
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return items;
                    }
                    i += 1;
                }
                ',' => {
                    if depth == 1 {
                        expecting = true;
                    }
                    i += 1;
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut name = String::new();
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        name.push(chars[i]);
                        i += 1;
                    }
                    if depth == 1 && expecting {
                        items.push(name);
                        expecting = false;
                    }
                }
                _ => i += 1,
            }
        }
    }
    items
}

/// One direct lock-acquisition site in an in-scope function.
pub(crate) struct LockSite {
    /// Receiver ident of the `.lock()` call, if resolvable.
    pub(crate) recv: Option<String>,
    /// 0-based line.
    pub(crate) line: usize,
}

/// Shared scaffolding for the lock-graph passes: the in-scope call
/// graph (library code of non-exempt crates, tests excluded) plus each
/// node's unsuppressed `.lock()` sites for `pass`.
pub(crate) fn lock_graph(ws: &Workspace, pass: &str) -> (CallGraph, Vec<Vec<LockSite>>) {
    let files: Vec<(String, &ParsedFile)> = ws
        .files
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let key = if f.role == Role::Lib { ws.crate_key(fi).to_owned() } else { String::new() };
            (key, &ws.parsed[fi])
        })
        .collect();
    let include = |file: usize, idx: usize| {
        let f = &ws.files[file];
        f.role == Role::Lib
            && !SYNC_EXEMPT_CRATES.contains(&ws.crate_key(file))
            && !f.in_test_span(ws.parsed[file].fns[idx].line)
    };
    let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in &ws.crates.crates {
        visible.insert(m.name.clone(), ws.crates.closure(&m.name));
    }
    let graph = CallGraph::build(&files, &include, &visible);

    let sites: Vec<Vec<LockSite>> = graph
        .nodes
        .iter()
        .map(|n| {
            ws.parsed[n.file].fns[n.idx]
                .calls
                .iter()
                .filter(|c| c.name == "lock" && c.method)
                .filter(|c| !ws.allowed(n.file, pass, c.line))
                .map(|c| LockSite { recv: c.recv.clone(), line: c.line })
                .collect()
        })
        .collect();
    (graph, sites)
}

/// Pass: every `.lock()` receiver is declared in the DESIGN.md §13
/// lock-order table, and locks are acquired in strictly increasing rank.
///
/// Two-level check over the in-scope call graph: within one function, a
/// lock site that follows another must target a strictly higher-ranked
/// lock (the conservative assumption is that the earlier guard is still
/// held); across functions, a call placed after a lock site must not
/// reach — transitively — an acquisition of an equal- or lower-ranked
/// lock. Either direction of a rank inversion is a potential ABBA
/// deadlock the model checker can only find if the schedule happens to
/// interleave both paths; this pass rejects the pattern statically.
/// Scoped guards that provably drop early can justify themselves with
/// `// audit: allow(lockorder) — <reason>` on the acquisition line.
pub fn check_lockorder(ws: &Workspace) -> Vec<Violation> {
    let Some(order) = &ws.contracts.lock_order else {
        return Vec::new();
    };
    let rank: BTreeMap<&str, usize> =
        order.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let (graph, sites) = lock_graph(ws, "lockorder");

    // Transitive lock sets: which declared locks can each node acquire,
    // directly or through calls.
    let mut acquires: Vec<BTreeSet<String>> = sites
        .iter()
        .map(|s| s.iter().filter_map(|l| l.recv.clone()).collect::<BTreeSet<_>>())
        .collect();
    let mut queue: VecDeque<usize> =
        (0..graph.nodes.len()).filter(|&i| !acquires[i].is_empty()).collect();
    while let Some(j) = queue.pop_front() {
        let locks = acquires[j].clone();
        for &i in &graph.callers[j] {
            let before = acquires[i].len();
            acquires[i].extend(locks.iter().cloned());
            if acquires[i].len() > before {
                queue.push_back(i);
            }
        }
    }

    let mut out = Vec::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        let file = &ws.files[n.file];
        for site in &sites[i] {
            let Some(r) = &site.recv else {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: site.line + 1,
                    pass: "lockorder",
                    message: "`.lock()` on an unresolvable receiver: bind the mutex to a \
                              named binding declared in the DESIGN.md §13 lock-order table"
                        .to_owned(),
                });
                continue;
            };
            let Some(&held_rank) = rank.get(r.as_str()) else {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: site.line + 1,
                    pass: "lockorder",
                    message: format!(
                        "lock `{r}` is not declared in the DESIGN.md §13 lock-order table; \
                         add a row (or `// audit: allow(lockorder) — <reason>`)"
                    ),
                });
                continue;
            };
            // Later direct acquisitions in the same function.
            for later in sites[i].iter().filter(|l| l.line > site.line) {
                let Some(lr) = &later.recv else { continue };
                if let Some(&later_rank) = rank.get(lr.as_str()) {
                    if later_rank <= held_rank {
                        out.push(Violation {
                            file: file.rel_path.clone(),
                            line: later.line + 1,
                            pass: "lockorder",
                            message: format!(
                                "lock `{lr}` (rank {}) acquired while `{r}` (rank {}) may \
                                 still be held inverts the DESIGN.md §13 lock order",
                                later_rank + 1,
                                held_rank + 1,
                            ),
                        });
                    }
                }
            }
            // Calls after the acquisition that can lock transitively.
            for &(callee, call_line) in &graph.callees[i] {
                if call_line < site.line || ws.allowed(n.file, "lockorder", call_line) {
                    continue;
                }
                let callee_fn = &ws.parsed[graph.nodes[callee].file].fns[graph.nodes[callee].idx];
                for l2 in &acquires[callee] {
                    if let Some(&r2) = rank.get(l2.as_str()) {
                        if r2 <= held_rank {
                            out.push(Violation {
                                file: file.rel_path.clone(),
                                line: call_line + 1,
                                pass: "lockorder",
                                message: format!(
                                    "call to `{}` can acquire lock `{l2}` (rank {}) while \
                                     `{r}` (rank {}) may still be held, inverting the \
                                     DESIGN.md §13 lock order",
                                    callee_fn.name,
                                    r2 + 1,
                                    held_rank + 1,
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Pass: nothing that can block is reachable while a facade lock is held.
///
/// A thread that parks inside a channel `recv`/`recv_timeout` or a file
/// write while holding a mutex stalls every thread contending for that
/// lock — under the model checker this shows up as an exploding schedule
/// space, and in production as a convoy. From each `.lock()` site, the
/// rest of the enclosing function is conservatively treated as the
/// critical section: any direct blocking call after it, or any call
/// whose transitive closure contains one, is flagged. Escapable with
/// `// audit: allow(blockinlock) — <reason>` when the guard provably
/// drops first.
pub fn check_blockinlock(ws: &Workspace) -> Vec<Violation> {
    let (graph, sites) = lock_graph(ws, "blockinlock");

    // Per-node blocking evidence, propagated callee → caller.
    let mut blocks: Vec<Option<String>> = graph
        .nodes
        .iter()
        .map(|n| {
            ws.parsed[n.file].fns[n.idx]
                .calls
                .iter()
                .find(|c| BLOCKING_CALLS.contains(&c.name.as_str()))
                .map(|c| format!("`.{}()` at {}:{}", c.name, ws.files[n.file].rel_path, c.line + 1))
        })
        .collect();
    let mut queue: VecDeque<usize> =
        (0..graph.nodes.len()).filter(|&i| blocks[i].is_some()).collect();
    while let Some(j) = queue.pop_front() {
        let callee_name = ws.parsed[graph.nodes[j].file].fns[graph.nodes[j].idx].name.clone();
        let why = blocks[j].clone().unwrap_or_default();
        for &i in &graph.callers[j] {
            if blocks[i].is_none() {
                blocks[i] = Some(format!("via `{callee_name}`, {why}"));
                queue.push_back(i);
            }
        }
    }

    let mut out = Vec::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        let file = &ws.files[n.file];
        let f = &ws.parsed[n.file].fns[n.idx];
        for site in &sites[i] {
            let held = site.recv.as_deref().unwrap_or("<unnamed>");
            // Direct blocking calls textually after the acquisition.
            for call in &f.calls {
                if call.line < site.line
                    || !BLOCKING_CALLS.contains(&call.name.as_str())
                    || ws.allowed(n.file, "blockinlock", call.line)
                {
                    continue;
                }
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: call.line + 1,
                    pass: "blockinlock",
                    message: format!(
                        "`.{}()` can block while lock `{held}` may still be held; drop the \
                         guard first or add `// audit: allow(blockinlock) — <reason>`",
                        call.name
                    ),
                });
            }
            // Calls whose transitive closure blocks.
            for &(callee, call_line) in &graph.callees[i] {
                if call_line < site.line || ws.allowed(n.file, "blockinlock", call_line) {
                    continue;
                }
                if let Some(why) = &blocks[callee] {
                    let callee_fn =
                        &ws.parsed[graph.nodes[callee].file].fns[graph.nodes[callee].idx];
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: call_line + 1,
                        pass: "blockinlock",
                        message: format!(
                            "call to `{}` can block ({why}) while lock `{held}` may still \
                             be held",
                            callee_fn.name
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Shared context for the four hot-path passes (DESIGN.md §14): the
/// library-wide call graph, the hot/pure sets, and per-hot-fn CFGs.
///
/// Unlike [`lock_graph`], no crate is exempt — hot-path contracts are
/// opt-in (a fn is in scope only when the §14 table or a marker names
/// it), so scoping by crate would add nothing.
struct HotCtx {
    graph: CallGraph,
    /// Per node: named by the §14 table or carrying a hot marker.
    hot: Vec<bool>,
    /// Per node: carrying a pure marker (trusted leaf).
    pure: Vec<bool>,
    /// Per node: the CFG, built only for hot fns with bodies.
    cfgs: Vec<Option<FnCfg>>,
}

fn hot_ctx(ws: &Workspace) -> HotCtx {
    let files: Vec<(String, &ParsedFile)> = ws
        .files
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let key = if f.role == Role::Lib { ws.crate_key(fi).to_owned() } else { String::new() };
            (key, &ws.parsed[fi])
        })
        .collect();
    let include = |file: usize, idx: usize| {
        let f = &ws.files[file];
        f.role == Role::Lib && !f.in_test_span(ws.parsed[file].fns[idx].line)
    };
    let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in &ws.crates.crates {
        visible.insert(m.name.clone(), ws.crates.closure(&m.name));
    }
    let graph = CallGraph::build(&files, &include, &visible);

    let table: BTreeSet<&str> = ws.contracts.hot_fns.iter().flatten().map(String::as_str).collect();
    let mut hot = Vec::with_capacity(graph.nodes.len());
    let mut pure = Vec::with_capacity(graph.nodes.len());
    let mut cfgs = Vec::with_capacity(graph.nodes.len());
    for n in &graph.nodes {
        let f = &ws.parsed[n.file].fns[n.idx];
        let file = &ws.files[n.file];
        // Table entries match by bare name or `Type::name`.
        let qualified = f.owner.as_ref().map(|o| format!("{o}::{}", f.name));
        let in_table = table.contains(f.name.as_str())
            || qualified.as_deref().is_some_and(|q| table.contains(q));
        let is_hot = in_table || file.fn_marker("hot", f.line);
        hot.push(is_hot);
        pure.push(file.fn_marker("pure", f.line));
        cfgs.push(if is_hot { f.body.map(|b| FnCfg::build(&file.scan, b)) } else { None });
    }
    HotCtx { graph, hot, pure, cfgs }
}

/// Pass: no heap allocation reachable inside a loop of a hot function.
///
/// The paper's kernels win precisely because per-panel scratch is
/// allocated once and reused (§4.4); a `vec!` reintroduced into an
/// inner loop silently forfeits that. Direct allocation sites
/// (`vec!`, `format!`, `Vec::new`-style constructors, `.to_vec()` /
/// `.clone()` / `.collect()` and friends) at loop depth ≥ 1 of a hot
/// fn are flagged, and allocation evidence propagates callee → caller
/// through the call graph with `blockinlock`-style via-chain
/// diagnostics, so a loop-resident call into an allocating helper is
/// caught too. A `pure` marker does not stop the propagation — pure is
/// not an allocation escape.
pub fn check_allocinloop(ws: &Workspace) -> Vec<Violation> {
    let ctx = hot_ctx(ws);
    if !ctx.hot.iter().any(|&h| h) {
        return Vec::new();
    }
    // Per-node allocation evidence, propagated callee → caller.
    let mut allocs: Vec<Option<String>> = ctx
        .graph
        .nodes
        .iter()
        .map(|n| {
            let f = &ws.parsed[n.file].fns[n.idx];
            dataflow::effects(f, &ws.files[n.file].scan)
                .allocs
                .into_iter()
                .find(|s| !ws.allowed(n.file, "allocinloop", s.line))
                .map(|s| format!("{} at {}:{}", s.what, ws.files[n.file].rel_path, s.line + 1))
        })
        .collect();
    let mut queue: VecDeque<usize> =
        (0..ctx.graph.nodes.len()).filter(|&i| allocs[i].is_some()).collect();
    while let Some(j) = queue.pop_front() {
        let callee_name =
            ws.parsed[ctx.graph.nodes[j].file].fns[ctx.graph.nodes[j].idx].name.clone();
        let why = allocs[j].clone().unwrap_or_default();
        for &i in &ctx.graph.callers[j] {
            if allocs[i].is_none() {
                allocs[i] = Some(format!("via `{callee_name}`, {why}"));
                queue.push_back(i);
            }
        }
    }

    let mut out = Vec::new();
    for (i, n) in ctx.graph.nodes.iter().enumerate() {
        if !ctx.hot[i] {
            continue;
        }
        let Some(cfg) = &ctx.cfgs[i] else { continue };
        let file = &ws.files[n.file];
        let f = &ws.parsed[n.file].fns[n.idx];
        // Name-based method resolution can produce duplicate edges for
        // one call site; dedupe on (line, message).
        let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
        for s in dataflow::effects(f, &file.scan).allocs {
            if cfg.loop_depth_at(s.line) == 0 || ws.allowed(n.file, "allocinloop", s.line) {
                continue;
            }
            let message = format!(
                "heap allocation ({}) inside a loop of hot fn `{}`; hoist it into \
                 caller-provided scratch or add `// audit: allow(allocinloop) — <reason>`",
                s.what, f.name
            );
            if seen.insert((s.line, message.clone())) {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: s.line + 1,
                    pass: "allocinloop",
                    message,
                });
            }
        }
        for &(callee, call_line) in &ctx.graph.callees[i] {
            if cfg.loop_depth_at(call_line) == 0 || ws.allowed(n.file, "allocinloop", call_line) {
                continue;
            }
            if let Some(why) = &allocs[callee] {
                let callee_fn =
                    &ws.parsed[ctx.graph.nodes[callee].file].fns[ctx.graph.nodes[callee].idx];
                let message = format!(
                    "call to `{}` allocates ({why}) inside a loop of hot fn `{}`",
                    callee_fn.name, f.name
                );
                if seen.insert((call_line, message.clone())) {
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: call_line + 1,
                        pass: "allocinloop",
                        message,
                    });
                }
            }
        }
    }
    out
}

/// Pass: no `a[i]` induction-variable indexing in an innermost hot loop.
///
/// An element gather indexed by the loop variable carries a bounds
/// check per iteration that an iterator / `zip` / `chunks` /
/// `split_at` formulation elides (and `unsafe get_unchecked` stays
/// forbidden workspace-wide). Only single-identifier indices whose
/// identifier is an induction variable of the *deepest* loop
/// containing the site are flagged — slice-range expressions
/// (`a[i..j]`, `a[..n]`) and computed indices (`a[i * lda + j]`) index
/// once per tile and pass.
pub fn check_boundsinloop(ws: &Workspace) -> Vec<Violation> {
    let ctx = hot_ctx(ws);
    let mut out = Vec::new();
    for (i, n) in ctx.graph.nodes.iter().enumerate() {
        if !ctx.hot[i] {
            continue;
        }
        let Some(cfg) = &ctx.cfgs[i] else { continue };
        let f = &ws.parsed[n.file].fns[n.idx];
        let file = &ws.files[n.file];
        let Some(body) = f.body else { continue };
        // Effect pre-filter: a fn the parser found no panicking `[]`
        // index in has nothing for the token scan to find either.
        if dataflow::effects(f, &file.scan).index_lines.is_empty() {
            continue;
        }
        for site in dataflow::index_sites(&file.scan, body) {
            let Some(lp) = cfg.innermost_loop_at(site.line) else { continue };
            if !lp.induction.iter().any(|v| v == &site.index)
                || ws.allowed(n.file, "boundsinloop", site.line)
            {
                continue;
            }
            out.push(Violation {
                file: file.rel_path.clone(),
                line: site.line + 1,
                pass: "boundsinloop",
                message: format!(
                    "`{}[{}]` indexes by the loop variable in an innermost loop of hot fn \
                     `{}`; restructure with iterators/zip/chunks/split_at to elide the \
                     bounds check, or add `// audit: allow(boundsinloop) — <reason>`",
                    site.base, site.index, f.name
                ),
            });
        }
    }
    out
}

/// Pass: float accumulators in hot loops must use the blessed
/// fcma-linalg accumulation idioms.
///
/// A scalar `s += x` folded serially across a loop pins the summation
/// order to this exact iteration schedule; the coming parallel kernel
/// split would then change results run to run. The blessed idioms —
/// `norms::dot`'s fixed 8-lane partial-sum array, `axpy`,
/// `mean_var_onepass` — fix an explicit reduction shape instead. The
/// reaching-definitions engine keeps the pass honest: only a compound
/// assignment whose accumulator is float-initialized *outside* the
/// containing loop (i.e. genuinely carried across iterations) fires;
/// per-iteration locals and integer counters pass.
pub fn check_accumorder(ws: &Workspace) -> Vec<Violation> {
    let ctx = hot_ctx(ws);
    let mut out = Vec::new();
    for (i, n) in ctx.graph.nodes.iter().enumerate() {
        if !ctx.hot[i] {
            continue;
        }
        let Some(cfg) = &ctx.cfgs[i] else { continue };
        let f = &ws.parsed[n.file].fns[n.idx];
        let file = &ws.files[n.file];
        let Some(body) = f.body else { continue };
        let sites = dataflow::compound_assigns(&file.scan, body);
        if sites.is_empty() {
            continue;
        }
        let defs = dataflow::local_defs(&file.scan, body);
        let rd = dataflow::Reaching::build(cfg, &defs);
        for site in sites {
            let Some(lp) = cfg.innermost_loop_at(site.line) else { continue };
            let carried = rd
                .reaching_at(&site.name, site.line)
                .into_iter()
                .any(|d| (d.line < lp.body.0 || d.line > lp.body.1) && d.is_float());
            if !carried || ws.allowed(n.file, "accumorder", site.line) {
                continue;
            }
            out.push(Violation {
                file: file.rel_path.clone(),
                line: site.line + 1,
                pass: "accumorder",
                message: format!(
                    "float accumulator `{}` is folded serially (`{}=`) across a hot loop; \
                     use a blessed fcma-linalg reduction (dot's lane array, axpy, \
                     mean_var_onepass) so summation order survives the parallel split, or \
                     add `// audit: allow(accumorder) — <reason>`",
                    site.name, site.op
                ),
            });
        }
    }
    out
}

/// Pass: hot functions call only hot or pure functions — no I/O, no
/// tracing-probe construction, no locking.
///
/// Keeps the hot path a closed world: every callee is either itself
/// under the hot-path contracts or a declared-pure leaf accessor.
/// Tracing probes and console I/O are matched textually (macros are
/// not parsed as calls), locking and blocking calls by the same rules
/// as `lockorder`/`blockinlock`, and the transitive facade-lock
/// acquires sets compose in: even a hot/pure callee is flagged if it
/// can reach a `.lock()`.
pub fn check_hotcallout(ws: &Workspace) -> Vec<Violation> {
    let ctx = hot_ctx(ws);
    if !ctx.hot.iter().any(|&h| h) {
        return Vec::new();
    }
    // Transitive facade-lock acquisitions over this graph (same seed
    // rule as lockorder, no allow filtering at the seeds — a lock is a
    // lock for hot-path purposes).
    let mut acquires: Vec<BTreeSet<String>> = ctx
        .graph
        .nodes
        .iter()
        .map(|n| {
            ws.parsed[n.file].fns[n.idx]
                .calls
                .iter()
                .filter(|c| c.name == "lock" && c.method)
                .map(|c| c.recv.clone().unwrap_or_else(|| "<unnamed>".to_owned()))
                .collect::<BTreeSet<_>>()
        })
        .collect();
    let mut queue: VecDeque<usize> =
        (0..ctx.graph.nodes.len()).filter(|&i| !acquires[i].is_empty()).collect();
    while let Some(j) = queue.pop_front() {
        let locks = acquires[j].clone();
        for &i in &ctx.graph.callers[j] {
            let before = acquires[i].len();
            acquires[i].extend(locks.iter().cloned());
            if acquires[i].len() > before {
                queue.push_back(i);
            }
        }
    }

    const IO_MACROS: &[&str] = &["println!(", "eprintln!(", "print!(", "eprint!(", "dbg!("];
    let mut out = Vec::new();
    for (i, n) in ctx.graph.nodes.iter().enumerate() {
        if !ctx.hot[i] {
            continue;
        }
        let f = &ws.parsed[n.file].fns[n.idx];
        let file = &ws.files[n.file];
        let Some(body) = f.body else { continue };
        // Textual probes: tracing-span construction and console I/O.
        for (lineno, code) in file.scan.code_lines.iter().enumerate().take(body.1 + 1).skip(body.0)
        {
            for pat in TRACE_SITES {
                if !site_starts(code, pat).is_empty() && !ws.allowed(n.file, "hotcallout", lineno) {
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: lineno + 1,
                        pass: "hotcallout",
                        message: format!(
                            "hot fn `{}` constructs a tracing probe (`{}`); hoist \
                             instrumentation into a non-hot wrapper or add \
                             `// audit: allow(hotcallout) — <reason>`",
                            f.name,
                            pat.trim_end_matches('(')
                        ),
                    });
                }
            }
            for pat in IO_MACROS {
                if !site_starts(code, pat).is_empty() && !ws.allowed(n.file, "hotcallout", lineno) {
                    out.push(Violation {
                        file: file.rel_path.clone(),
                        line: lineno + 1,
                        pass: "hotcallout",
                        message: format!(
                            "hot fn `{}` performs console I/O (`{}`)",
                            f.name,
                            pat.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        // Direct locking / blocking calls.
        for c in &f.calls {
            if ws.allowed(n.file, "hotcallout", c.line) {
                continue;
            }
            if c.name == "lock" && c.method {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: c.line + 1,
                    pass: "hotcallout",
                    message: format!(
                        "hot fn `{}` acquires lock `{}`; hot code must stay lock-free \
                         (merge outside the hot path)",
                        f.name,
                        c.recv.as_deref().unwrap_or("<unnamed>")
                    ),
                });
            } else if BLOCKING_CALLS.contains(&c.name.as_str()) {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: c.line + 1,
                    pass: "hotcallout",
                    message: format!(
                        "hot fn `{}` makes blocking call `.{}()`; no I/O on the hot path",
                        f.name, c.name
                    ),
                });
            }
        }
        // Resolved workspace callees must be hot or pure, and must not
        // reach a facade lock.
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &(callee, call_line) in &ctx.graph.callees[i] {
            if !seen.insert((callee, call_line)) || ws.allowed(n.file, "hotcallout", call_line) {
                continue;
            }
            let cf = &ws.parsed[ctx.graph.nodes[callee].file].fns[ctx.graph.nodes[callee].idx];
            if !(ctx.hot[callee] || ctx.pure[callee]) {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: call_line + 1,
                    pass: "hotcallout",
                    message: format!(
                        "hot fn `{}` calls `{}`, which is neither hot nor marked pure; \
                         bring the callee under the §14 contracts (table row or fn \
                         marker) or add `// audit: allow(hotcallout) — <reason>`",
                        f.name, cf.name
                    ),
                });
            } else if let Some(lock) = acquires[callee].iter().next() {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: call_line + 1,
                    pass: "hotcallout",
                    message: format!(
                        "hot fn `{}` calls `{}`, which can acquire facade lock `{lock}`; \
                         hot code must stay lock-free",
                        f.name, cf.name
                    ),
                });
            }
        }
    }
    out
}

/// The memory orderings the `atomicorder` pass tracks.
const MEM_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Whether an atomic method reads, writes, or does both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpClass {
    Load,
    Store,
    Rmw,
}

/// Atomic method names an `Ordering::` argument can belong to.
const ATOMIC_OPS: &[(&str, OpClass)] = &[
    ("load", OpClass::Load),
    ("store", OpClass::Store),
    ("swap", OpClass::Rmw),
    ("fetch_add", OpClass::Rmw),
    ("fetch_sub", OpClass::Rmw),
    ("fetch_and", OpClass::Rmw),
    ("fetch_or", OpClass::Rmw),
    ("fetch_xor", OpClass::Rmw),
    ("fetch_update", OpClass::Rmw),
    ("fetch_max", OpClass::Rmw),
    ("fetch_min", OpClass::Rmw),
    ("compare_exchange", OpClass::Rmw),
    ("compare_exchange_weak", OpClass::Rmw),
];

/// `Ordering::<variant>` tokens on one scrubbed code line, as
/// (char position of `Ordering`, variant) pairs. Only the five memory
/// orderings count — `cmp::Ordering::Less` never matches.
pub(crate) fn ordering_tokens(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for col in site_starts(code, "Ordering::") {
        let variant: String = code
            .chars()
            .skip(col + "Ordering::".len())
            .take_while(char::is_ascii_alphanumeric)
            .collect();
        if let Some(&ord) = MEM_ORDERINGS.iter().find(|&&o| o == variant) {
            out.push((col, ord));
        }
    }
    out
}

/// The rightmost `recv.op(` atomic call starting before char `limit`;
/// returns (receiver ident, op, class).
fn last_atomic_call(code: &str, limit: usize) -> Option<(String, &'static str, OpClass)> {
    let chars: Vec<char> = code.chars().collect();
    let mut best: Option<(usize, String, &'static str, OpClass)> = None;
    for &(op, class) in ATOMIC_OPS {
        for s in site_starts_word(code, op) {
            if s >= limit || s == 0 || chars[s - 1] != '.' {
                continue;
            }
            let mut j = s + op.chars().count();
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) != Some(&'(') {
                continue;
            }
            let e = s - 1;
            let mut b = e;
            while b > 0 && (chars[b - 1].is_ascii_alphanumeric() || chars[b - 1] == '_') {
                b -= 1;
            }
            if b == e {
                continue;
            }
            let recv: String = chars[b..e].iter().collect();
            if best.as_ref().is_none_or(|&(p, ..)| s > p) {
                best = Some((s, recv, op, class));
            }
        }
    }
    best.map(|(_, r, o, c)| (r, o, c))
}

/// The atomic call an `Ordering::` token at (`lineno`, `col`) belongs
/// to: the nearest atomic-method call left of the token on its own
/// line, or on one of the three lines above (rustfmt may wrap a
/// `compare_exchange` argument list).
pub(crate) fn atomic_op_at(
    f: &SourceFile,
    lineno: usize,
    col: usize,
) -> Option<(String, &'static str, OpClass)> {
    for back in 0..4 {
        let Some(l) = lineno.checked_sub(back) else {
            break;
        };
        let code = &f.scan.code_lines[l];
        let limit = if back == 0 { col } else { code.chars().count() };
        if let Some(hit) = last_atomic_call(code, limit) {
            return Some(hit);
        }
    }
    None
}

/// Pass: every explicit memory-ordering site is covered by a DESIGN.md
/// §16 "Atomics contracts" row, with the ordering it uses among the
/// row's allowed load/store orderings.
///
/// The §16 table is the review record for every hand-placed fence in
/// the workspace: which atomic, where it lives, which orderings its
/// loads and stores may use, and which release→acquire pairing makes it
/// sound. This pass closes the loop in both directions — an `Ordering::*`
/// site without a row is a violation, and a row without a site is stale.
/// The declared `sites:` count must match the scan exactly, so a new
/// fence cannot land without a contract review. When §16 additionally
/// declares the seqlock shape, the named writer/reader pair is checked
/// against the odd/even publish protocol (see [`check_seqlock_shape`]).
/// Escapable per site with `// audit: allow(atomicorder) — <reason>`.
pub fn check_atomicorder(ws: &Workspace) -> Vec<Violation> {
    let contract = ws.contracts.atomics.as_ref();
    let mut out = Vec::new();
    let mut actual_sites = 0usize;
    let mut matched: BTreeSet<(String, String)> = BTreeSet::new();
    let mut first_site: Option<(String, usize)> = None;
    for (fi, f) in ws.files.iter().enumerate() {
        if f.role != Role::Lib || EXEMPT_CRATES.contains(&ws.crate_key(fi)) {
            continue;
        }
        for (lineno, code) in f.scan.code_lines.iter().enumerate() {
            if f.in_test_span(lineno) {
                continue;
            }
            for (col, ord) in ordering_tokens(code) {
                actual_sites += 1;
                if first_site.is_none() {
                    first_site = Some((f.rel_path.clone(), lineno));
                }
                let Some(c) = contract else {
                    continue;
                };
                if ws.allowed(fi, "atomicorder", lineno) {
                    continue;
                }
                let Some((recv, op, class)) = atomic_op_at(f, lineno, col) else {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: lineno + 1,
                        pass: "atomicorder",
                        message: format!(
                            "cannot associate `Ordering::{ord}` with an atomic operation; \
                             call the atomic through a named binding"
                        ),
                    });
                    continue;
                };
                let Some(e) = c.entry(&recv, &f.rel_path) else {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: lineno + 1,
                        pass: "atomicorder",
                        message: format!(
                            "atomic site `{recv}.{op}` (`Ordering::{ord}`) has no DESIGN.md \
                             §16 row for `{recv}` in this file; add one (or \
                             `// audit: allow(atomicorder) — <reason>`)"
                        ),
                    });
                    continue;
                };
                matched.insert((e.name.clone(), e.file.clone()));
                let ok = match class {
                    OpClass::Load => e.loads.iter().any(|o| o == ord),
                    OpClass::Store => e.stores.iter().any(|o| o == ord),
                    OpClass::Rmw => e.loads.iter().chain(&e.stores).any(|o| o == ord),
                };
                if !ok {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: lineno + 1,
                        pass: "atomicorder",
                        message: format!(
                            "`{recv}.{op}` uses `Ordering::{ord}` but its DESIGN.md §16 row \
                             allows loads [{}] and stores [{}]",
                            e.loads.join(", "),
                            e.stores.join(", "),
                        ),
                    });
                }
            }
        }
    }
    match (contract, first_site) {
        (None, Some((file, line))) => out.push(Violation {
            file,
            line: line + 1,
            pass: "atomicorder",
            message: format!(
                "workspace has {actual_sites} `Ordering::*` site(s) but DESIGN.md has no \
                 §16 \"Atomics contracts\" table"
            ),
        }),
        (Some(c), _) => {
            if let Some(declared) = c.declared_sites {
                if declared != actual_sites {
                    out.push(Violation {
                        file: "DESIGN.md".to_owned(),
                        line: 1,
                        pass: "atomicorder",
                        message: format!(
                            "DESIGN.md §16 declares {declared} `Ordering::*` site(s) but the \
                             workspace has {actual_sites}; update the `sites:` count"
                        ),
                    });
                }
            }
            for e in &c.entries {
                if !matched.contains(&(e.name.clone(), e.file.clone())) {
                    out.push(Violation {
                        file: "DESIGN.md".to_owned(),
                        line: 1,
                        pass: "atomicorder",
                        message: format!(
                            "stale DESIGN.md §16 row: atomic `{}` in `{}` matched no \
                             `Ordering::*` site",
                            e.name, e.file
                        ),
                    });
                }
            }
            if let Some(sl) = &c.seqlock {
                out.extend(check_seqlock_shape(ws, sl));
            }
        }
        (None, None) => {}
    }
    out
}

/// Shape check for the §16-declared per-slot seqlock: the writer must
/// publish the version word twice with `Release` (odd — `+ 1` — before
/// the payload stores, even after), every payload store must be
/// `Relaxed` and sit between the two publishes, and the cursor must be
/// released after the even publish; the reader must load the version
/// with `Acquire` both before and after its `Relaxed` payload loads
/// (the seq-stability re-check).
fn check_seqlock_shape(ws: &Workspace, sl: &SeqlockDecl) -> Vec<Violation> {
    let mut out = Vec::new();
    let design = |message: String| Violation {
        file: "DESIGN.md".to_owned(),
        line: 1,
        pass: "atomicorder",
        message,
    };
    let Some(fi) = ws.files.iter().position(|f| f.rel_path.ends_with(&sl.file)) else {
        return vec![design(format!(
            "§16 seqlock row names `{}`, which is not a workspace file",
            sl.file
        ))];
    };
    let f = &ws.files[fi];
    // All `(line, ordering)` sites of `recv.op(` inside a fn body.
    let sites = |recv: &str, op: &str, span: (usize, usize)| -> Vec<(usize, &'static str)> {
        let pat = format!("{recv}.{op}");
        (span.0..=span.1)
            .filter(|&l| contains_word(&f.scan.code_lines[l], &pat))
            .filter_map(|l| {
                ordering_tokens(&f.scan.code_lines[l]).first().map(|&(_, ord)| (l, ord))
            })
            .collect()
    };
    let body =
        |name: &str| ws.parsed[fi].fns.iter().find(|fun| fun.name == name).and_then(|fun| fun.body);

    let Some(wspan) = body(&sl.writer) else {
        return vec![design(format!(
            "§16 seqlock writer `{}` not found in `{}`",
            sl.writer, sl.file
        ))];
    };
    let vstores = sites(&sl.version, "store", wspan);
    if vstores.len() != 2 {
        out.push(Violation {
            file: f.rel_path.clone(),
            line: wspan.0 + 1,
            pass: "atomicorder",
            message: format!(
                "seqlock writer `{}` must publish `{}` exactly twice (odd sequence before \
                 the payload stores, even after); found {} store(s)",
                sl.writer,
                sl.version,
                vstores.len()
            ),
        });
    } else {
        let (first, second) = (vstores[0], vstores[1]);
        if first.1 != "Release" || second.1 != "Release" {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: first.0 + 1,
                pass: "atomicorder",
                message: format!(
                    "seqlock version publishes of `{}` must both use `Ordering::Release`",
                    sl.version
                ),
            });
        }
        if !f.scan.code_lines[first.0].contains("+ 1") {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: first.0 + 1,
                pass: "atomicorder",
                message: format!(
                    "first publish of `{}` must make the sequence odd (`… + 1`) before the \
                     payload stores",
                    sl.version
                ),
            });
        }
        for p in &sl.payload {
            let ps = sites(p, "store", wspan);
            if ps.is_empty() {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: wspan.0 + 1,
                    pass: "atomicorder",
                    message: format!(
                        "seqlock payload `{p}` is never stored inside writer `{}`",
                        sl.writer
                    ),
                });
                continue;
            }
            for (l, ord) in ps {
                if ord != "Relaxed" || l <= first.0 || l >= second.0 {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: l + 1,
                        pass: "atomicorder",
                        message: format!(
                            "seqlock payload store `{p}` must be `Relaxed` and sit between \
                             the odd and even publishes of `{}`",
                            sl.version
                        ),
                    });
                }
            }
        }
        let cs = sites(&sl.cursor, "store", wspan);
        if !cs.iter().any(|&(l, ord)| ord == "Release" && l > second.0) {
            out.push(Violation {
                file: f.rel_path.clone(),
                line: wspan.0 + 1,
                pass: "atomicorder",
                message: format!(
                    "seqlock cursor `{}` must be published with `Release` after the even \
                     publish of `{}`",
                    sl.cursor, sl.version
                ),
            });
        }
    }

    let Some(rspan) = body(&sl.reader) else {
        out.push(design(format!("§16 seqlock reader `{}` not found in `{}`", sl.reader, sl.file)));
        return out;
    };
    let vloads = sites(&sl.version, "load", rspan);
    if vloads.len() < 2 || vloads.iter().any(|&(_, ord)| ord != "Acquire") {
        out.push(Violation {
            file: f.rel_path.clone(),
            line: rspan.0 + 1,
            pass: "atomicorder",
            message: format!(
                "seqlock reader `{}` must load `{}` with `Acquire` both before and after \
                 the payload loads (stability re-check)",
                sl.reader, sl.version
            ),
        });
    } else {
        let (lo, hi) = (vloads[0].0, vloads[vloads.len() - 1].0);
        for p in &sl.payload {
            let pl = sites(p, "load", rspan);
            if pl.is_empty() {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: rspan.0 + 1,
                    pass: "atomicorder",
                    message: format!(
                        "seqlock payload `{p}` is never loaded inside reader `{}`",
                        sl.reader
                    ),
                });
                continue;
            }
            for (l, ord) in pl {
                if ord != "Relaxed" || l <= lo || l >= hi {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: l + 1,
                        pass: "atomicorder",
                        message: format!(
                            "seqlock payload load `{p}` must be `Relaxed` and bracketed by \
                             the `Acquire` loads of `{}`",
                            sl.version
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Pass: every allow marker must have suppressed something this run.
///
/// Mirrors `#[warn(unused_allow)]`: a marker naming an unknown pass, a
/// marker missing its mandatory reason, a marker for a pass with no
/// escape hatch, and a well-formed marker no pass consumed are all
/// violations. Disjoint-band markers get the same treatment: one that
/// no `threadescape`/`lockset` classification consulted is stale, and
/// `// audit: equivalent(<class>)` mutation-triage markers are checked
/// the same way — the class must be one the mutation engine implements
/// and an enumerated mutant of that class must sit under the marker,
/// so a triage comment cannot outlive the code it excuses. Must run
/// after every other pass (consumption is recorded as they go).
pub fn check_unused_allow(ws: &Workspace) -> Vec<Violation> {
    let used = ws.used_markers.borrow();
    let used_disjoint = ws.used_disjoint.borrow();
    let mut out = Vec::new();
    // Mutant sites only matter when a triage marker exists somewhere;
    // the enumeration is one extra linear scan in that case.
    let mutant_sites: Option<BTreeSet<(usize, &'static str, usize)>> =
        ws.files.iter().any(|f| !f.equivalent_markers().is_empty()).then(|| {
            crate::mutants::enumerate(ws).into_iter().map(|m| (m.file, m.class, m.line)).collect()
        });
    for (fi, f) in ws.files.iter().enumerate() {
        for m in f.equivalent_markers() {
            let covers_site = |sites: &BTreeSet<(usize, &'static str, usize)>| {
                MUTANT_CLASSES_FOR_MARKERS.iter().any(|&c| {
                    c == m.class
                        && (sites.contains(&(fi, c, m.line))
                            || sites.contains(&(fi, c, m.line + 1)))
                })
            };
            let violation = if !MUTANT_CLASSES_FOR_MARKERS.contains(&m.class.as_str()) {
                Some(format!(
                    "equivalent marker names unknown mutant class `{}` (known: {})",
                    m.class,
                    MUTANT_CLASSES_FOR_MARKERS.join(", ")
                ))
            } else if !m.has_reason {
                Some(format!(
                    "equivalent marker for `{}` is missing its mandatory reason \
                     (`// audit: equivalent({}) — <reason>`)",
                    m.class, m.class
                ))
            } else if !mutant_sites.as_ref().is_some_and(covers_site) {
                Some(format!(
                    "stale equivalent marker: no `{}` mutant is enumerated under it; remove it",
                    m.class
                ))
            } else {
                None
            };
            if let Some(message) = violation {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: m.line + 1,
                    pass: "unusedallow",
                    message,
                });
            }
        }
        for m in f.disjoint_markers() {
            let violation = if !m.has_reason {
                Some(format!(
                    "disjoint marker for `{}` is missing its mandatory reason \
                     (`// audit: disjoint({}) — <reason>`)",
                    m.what, m.what
                ))
            } else if !used_disjoint.contains(&(fi, m.line)) {
                Some(format!(
                    "stale disjoint marker: `audit: disjoint({})` classifies nothing; remove it",
                    m.what
                ))
            } else {
                None
            };
            if let Some(message) = violation {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: m.line + 1,
                    pass: "unusedallow",
                    message,
                });
            }
        }
        for m in f.markers() {
            let violation = if !PASS_NAMES.contains(&m.pass.as_str()) {
                Some(format!(
                    "allow marker names unknown pass `{}` (known: {})",
                    m.pass,
                    PASS_NAMES.join(", ")
                ))
            } else if !ESCAPABLE_PASSES.contains(&m.pass.as_str()) {
                Some(format!("pass `{}` has no escape hatch; remove the marker", m.pass))
            } else if !m.has_reason {
                Some(format!(
                    "allow marker for `{}` is missing its mandatory reason \
                     (`// audit: allow({}) — <reason>`)",
                    m.pass, m.pass
                ))
            } else if !used.contains(&(fi, m.line)) {
                Some(format!(
                    "stale allow marker: `audit: allow({})` suppresses nothing; remove it",
                    m.pass
                ))
            } else {
                None
            };
            if let Some(message) = violation {
                out.push(Violation {
                    file: f.rel_path.clone(),
                    line: m.line + 1,
                    pass: "unusedallow",
                    message,
                });
            }
        }
    }
    out
}

/// `snake.dotted`: two or more dot-separated segments, each
/// `[a-z][a-z0-9_]*`.
fn is_snake_dotted(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        let mut ch = seg.chars();
        if !matches!(ch.next(), Some(c) if c.is_ascii_lowercase()) {
            return false;
        }
        if !ch.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
        segments += 1;
    }
    segments >= 2
}

/// Char positions where `pat` occurs in `line` with a non-identifier
/// character (or line start) on its left.
pub(crate) fn site_starts(line: &str, pat: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let pat_chars: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    if chars.len() < pat_chars.len() {
        return out;
    }
    for start in 0..=(chars.len() - pat_chars.len()) {
        if chars[start..start + pat_chars.len()] == pat_chars[..] {
            let left_ok = start == 0 || {
                let p = chars[start - 1];
                !(p.is_ascii_alphanumeric() || p == '_')
            };
            if left_ok {
                out.push(start);
            }
        }
    }
    out
}

/// [`site_starts`] filtered to occurrences that also end at a word
/// boundary, so `std::thread` matches `std::thread::spawn` but not a
/// hypothetical `std::thread_pool`.
fn site_starts_word(line: &str, pat: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let plen = pat.chars().count();
    site_starts(line, pat)
        .into_iter()
        .filter(|&s| match chars.get(s + plen) {
            Some(&c) => !(c.is_ascii_alphanumeric() || c == '_'),
            None => true,
        })
        .collect()
}

/// First `"…"` literal at or after char `from` on line `lno`, searching
/// up to two continuation lines (rustfmt may wrap the name onto the line
/// after the macro's opening paren). Returns (0-based line, contents).
fn extract_name(raw_lines: &[String], lno: usize, from: usize) -> Option<(usize, String)> {
    for (idx, raw) in raw_lines.iter().enumerate().skip(lno).take(3) {
        let chars: Vec<char> = raw.chars().collect();
        let mut i = if idx == lno { from } else { 0 };
        while i < chars.len() && chars[i] != '"' {
            i += 1;
        }
        if i < chars.len() {
            let mut name = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                name.push(chars[i]);
                i += 1;
            }
            return Some((idx, name));
        }
    }
    None
}

/// Word-boundary containment: `name` in `line` not flanked by ident chars.
pub(crate) fn contains_word(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(p) = line[from..].find(name) {
        let start = from + p;
        let end = start + name.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CrateGraph, CrateManifest, ManifestDep};
    use crate::source::SourceFile;

    fn lib_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(&format!("crates/{crate_name}/src/a.rs"), Some(crate_name), Role::Lib, src)
    }

    fn test_file(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(
            &format!("crates/{crate_name}/tests/t.rs"),
            Some(crate_name),
            Role::Test,
            src,
        )
    }

    fn ws_of(files: Vec<SourceFile>) -> Workspace {
        Workspace::new(files, CrateGraph::default(), Contracts::default(), None)
    }

    fn ws_with(files: Vec<SourceFile>, crates: CrateGraph, contracts: Contracts) -> Workspace {
        Workspace::new(files, crates, contracts, None)
    }

    fn manifest(name: &str, deps: &[&str]) -> CrateManifest {
        CrateManifest {
            name: name.to_owned(),
            rel_path: format!("crates/{name}/Cargo.toml"),
            deps: deps
                .iter()
                .enumerate()
                .map(|(i, d)| ManifestDep { name: (*d).to_owned(), line: i + 3 })
                .collect(),
        }
    }

    #[test]
    fn unsafe_fires_everywhere_no_escape() {
        let f = SourceFile::new(
            "crates/x/tests/t.rs",
            Some("x"),
            Role::Test,
            "//! t\nunsafe fn f() {}\n",
        );
        let v = check_unsafe(&ws_of(vec![f]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_quiet_on_clean_file() {
        let f = lib_file("x", "//! m\nfn f() { let safety = \"unsafe\"; }\n");
        assert!(check_unsafe(&ws_of(vec![f])).is_empty());
    }

    #[test]
    fn cast_fires_only_in_kernel_crates() {
        let kernel = lib_file("fcma-linalg", "//! m\nfn f(n: usize) -> f32 {\n    n as f32\n}\n");
        let other = lib_file("fcma-io", "//! m\nfn f(n: usize) -> f32 {\n    n as f32\n}\n");
        let v = check_casts(&ws_of(vec![kernel, other]));
        assert_eq!(v.len(), 1);
        assert!(v[0].file.contains("fcma-linalg"));
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn cast_escaped_by_marker_and_cfg_test() {
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f(n: usize) -> f32 {\n    // audit: allow(cast) — n < 2^24, exact in f32\n    n as f32\n}\n",
        );
        let tested = lib_file(
            "fcma-core",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f(n: usize) -> f32 { n as f32 }\n}\n",
        );
        assert!(check_casts(&ws_of(vec![marked, tested])).is_empty());
    }

    #[test]
    fn cast_marker_without_reason_still_fires() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(n: usize) -> f32 {\n    // audit: allow(cast)\n    n as f32\n}\n",
        );
        assert_eq!(check_casts(&ws_of(vec![f])).len(), 1);
    }

    #[test]
    fn proptest_pass_fires_on_unreferenced_pub_fn() {
        let l = lib_file("fcma-linalg", "//! m\npub fn lonely_kernel() {}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { other(); }\n");
        let v = check_proptest_coverage(&ws_of(vec![l, t]));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("lonely_kernel"));
    }

    #[test]
    fn proptest_pass_quiet_when_referenced_or_marked() {
        let l = lib_file(
            "fcma-linalg",
            "//! m\npub fn covered_kernel() {}\n// audit: allow(proptest) — trivial accessor\npub fn marked_kernel() {}\n",
        );
        let t = test_file("fcma-linalg", "//! t\nfn probe() { covered_kernel(); }\n");
        assert!(check_proptest_coverage(&ws_of(vec![l, t])).is_empty());
    }

    #[test]
    fn proptest_reference_needs_word_boundary() {
        let l = lib_file("fcma-linalg", "//! m\npub fn dot() {}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { syrk_dotty(); }\n");
        assert_eq!(check_proptest_coverage(&ws_of(vec![l, t])).len(), 1);
    }

    #[test]
    fn proptest_skips_impl_methods() {
        let l =
            lib_file("fcma-linalg", "//! m\nstruct M;\nimpl M {\n    pub fn method(&self) {}\n}\n");
        assert!(check_proptest_coverage(&ws_of(vec![l])).is_empty());
    }

    #[test]
    fn moddoc_fires_on_missing_banner() {
        let f = lib_file("x", "fn f() {}\n");
        let v = check_module_docs(&ws_of(vec![f]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pass, "moddoc");
    }

    #[test]
    fn moddoc_quiet_with_banner_and_skips_tests() {
        let l = lib_file("x", "//! Documented.\nfn f() {}\n");
        let t = test_file("x", "fn f() {}\n");
        assert!(check_module_docs(&ws_of(vec![l, t])).is_empty());
    }

    #[test]
    fn run_all_sorts_and_aggregates() {
        let f = lib_file("fcma-linalg", "fn f() {\n    panic!(\"x\");\n}\n");
        let v = ws_of(vec![f]).run_all();
        let passes: Vec<&str> = v.iter().map(|x| x.pass).collect();
        assert!(passes.contains(&"moddoc"));
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
        assert_eq!(v, sorted);
    }

    const DESIGN_FIXTURE: &str = "# Doc\n\n## 10. Other\n`not.this`\n\n\
        ## 11. Observability\nSpans: `stage1.corr`, `cluster.run`.\n\
        Counters: `svm.smo.solves`.\n\n## 12. After\n`not.that`\n";

    fn ws_tax(files: Vec<SourceFile>) -> Workspace {
        Workspace::new(
            files,
            CrateGraph::default(),
            Contracts::default(),
            Taxonomy::from_design_md(DESIGN_FIXTURE),
        )
    }

    #[test]
    fn taxonomy_parses_only_the_observability_section() {
        let t = Taxonomy::from_design_md(DESIGN_FIXTURE).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.contains("stage1.corr"));
        assert!(t.contains("cluster.run"));
        assert!(t.contains("svm.smo.solves"));
        assert!(!t.contains("not.this"));
        assert!(!t.contains("not.that"));
        assert!(Taxonomy::from_design_md("# Doc\nno section\n").is_none());
    }

    #[test]
    fn tracename_accepts_documented_names_and_flags_undocumented() {
        let ok = lib_file(
            "fcma-core",
            "//! m\nfn f() {\n    let _s = span!(\"stage1.corr\", v = 1);\n}\n",
        );
        assert!(check_trace_names(&ws_tax(vec![ok])).is_empty());
        let bad =
            lib_file("fcma-core", "//! m\nfn f() {\n    counter!(\"stage9.rogue\", 1_u64);\n}\n");
        let v = check_trace_names(&ws_tax(vec![bad]));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("stage9.rogue"), "{}", v[0].message);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn tracename_enforces_snake_dotted_shape() {
        assert!(is_snake_dotted("cluster.tasks.total"));
        assert!(is_snake_dotted("a.b_2"));
        assert!(!is_snake_dotted("single"));
        assert!(!is_snake_dotted("Bad.Case"));
        assert!(!is_snake_dotted("has.empty."));
        assert!(!is_snake_dotted("1.leading_digit"));
        assert!(!is_snake_dotted("spa ced.name"));
        // Shape is checked even without a taxonomy.
        let f = lib_file("fcma-core", "//! m\nfn f() {\n    event!(\"NotSnake\");\n}\n");
        assert_eq!(check_trace_names(&ws_of(vec![f])).len(), 1);
    }

    #[test]
    fn tracename_finds_wrapped_multiline_names() {
        let f = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let _s = span!(\n        \"cluster.run\",\n        w = 1\n    );\n}\n",
        );
        assert!(check_trace_names(&ws_tax(vec![f])).is_empty());
        let miss = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let _s = span!(\n        \"cluster.rogue\",\n    );\n}\n",
        );
        let v = check_trace_names(&ws_tax(vec![miss]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4, "violation anchors to the literal's line");
    }

    #[test]
    fn tracename_skips_tests_trace_crate_and_markers() {
        let in_tests = lib_file(
            "fcma-core",
            "//! m\n#[cfg(test)]\nmod tests {\n    fn f() { event!(\"rogue.name\"); }\n}\n",
        );
        let trace_crate =
            lib_file("fcma-trace", "//! m\nfn f() {\n    span!(\"internal.probe\");\n}\n");
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f() {\n    // audit: allow(tracename) — experimental probe\n    event!(\"rogue.name\");\n}\n",
        );
        assert!(check_trace_names(&ws_tax(vec![in_tests, trace_crate, marked])).is_empty());
    }

    #[test]
    fn tracename_requires_inline_literal() {
        let f = lib_file("fcma-core", "//! m\nfn f(n: u64) {\n    counter!(NAME, n);\n}\n");
        let v = check_trace_names(&ws_of(vec![f]));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("inline string literal"));
    }

    fn layer_contracts(rows: &[(&str, &[&str])]) -> Contracts {
        let mut md = String::from("## 12. Architecture contracts\n\n| Crate | Deps |\n|--|--|\n");
        for (c, deps) in rows {
            let cell = if deps.is_empty() {
                "(none)".to_owned()
            } else {
                deps.iter().map(|d| format!("`{d}`")).collect::<Vec<_>>().join(", ")
            };
            md.push_str(&format!("| `{c}` | {cell} |\n"));
        }
        Contracts::from_design_md(&md)
    }

    #[test]
    fn layering_rejects_undeclared_manifest_edge() {
        let crates = CrateGraph { crates: vec![manifest("fcma-linalg", &["fcma-cluster"])] };
        let contracts =
            layer_contracts(&[("fcma-linalg", &[]), ("fcma-cluster", &["fcma-linalg"])]);
        let ws = ws_with(Vec::new(), crates, contracts);
        let v = check_layering(&ws);
        assert_eq!(v.len(), 2, "{v:?}"); // bad edge + stale table row for fcma-cluster
        assert!(v.iter().any(|x| x.message.contains("`fcma-linalg` → `fcma-cluster`")));
    }

    #[test]
    fn layering_rejects_cross_crate_path_reference() {
        let crates = CrateGraph {
            crates: vec![manifest("fcma-linalg", &[]), manifest("fcma-cluster", &[])],
        };
        let contracts =
            layer_contracts(&[("fcma-linalg", &[]), ("fcma-cluster", &["fcma-linalg"])]);
        let f = lib_file("fcma-linalg", "//! m\nfn f() {\n    fcma_cluster::run();\n}\n");
        let ws = ws_with(vec![f], crates, contracts);
        let v = check_layering(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("fcma_cluster"));
    }

    #[test]
    fn layering_allows_declared_edges_and_flags_missing_crates() {
        let crates = CrateGraph {
            crates: vec![manifest("fcma-cluster", &["fcma-linalg"]), manifest("fcma-new", &[])],
        };
        let contracts =
            layer_contracts(&[("fcma-linalg", &[]), ("fcma-cluster", &["fcma-linalg"])]);
        let ws = ws_with(Vec::new(), crates, contracts);
        let v = check_layering(&ws);
        // fcma-new missing from table; fcma-linalg in table but not in
        // the workspace manifest set.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("`fcma-new` is missing")));
        assert!(v.iter().any(|x| x.message.contains("not in the workspace")));
    }

    #[test]
    fn layering_skips_without_table() {
        let crates = CrateGraph { crates: vec![manifest("fcma-linalg", &["fcma-cluster"])] };
        let ws = ws_with(Vec::new(), crates, Contracts::default());
        assert!(check_layering(&ws).is_empty());
    }

    #[test]
    fn panicpath_fires_transitively_on_pub_fn() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\npub fn entry(v: &[f32]) -> f32 {\n    helper(v)\n}\n\
             fn helper(v: &[f32]) -> f32 {\n    v.first().copied().unwrap()\n}\n",
        );
        let v = check_panicpath(&ws_of(vec![f]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("`entry`"));
        assert!(v[0].message.contains("helper"), "{}", v[0].message);
    }

    #[test]
    fn panicpath_excused_by_docs_marker_and_absorbed() {
        let documented = lib_file(
            "fcma-linalg",
            "//! m\n/// # Panics\n/// On empty input.\npub fn entry(v: &[f32]) -> f32 {\n    v[0]\n}\n\
             pub fn caller(v: &[f32]) -> f32 {\n    entry(v)\n}\n",
        );
        assert!(check_panicpath(&ws_of(vec![documented])).is_empty());
        let marked = lib_file(
            "fcma-linalg",
            "//! m\n// audit: allow(panicpath) — index guarded by caller contract\npub fn entry(v: &[f32]) -> f32 {\n    v[0]\n}\n",
        );
        assert!(check_panicpath(&ws_of(vec![marked])).is_empty());
    }

    #[test]
    fn panicpath_source_marker_suppresses_one_source() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\npub fn entry(o: Option<u8>) -> u8 {\n    // audit: allow(panicpath) — set on every path above\n    o.unwrap()\n}\n",
        );
        assert!(check_panicpath(&ws_of(vec![f])).is_empty());
        let two = lib_file(
            "fcma-linalg",
            "//! m\npub fn entry(o: Option<u8>, v: &[u8]) -> u8 {\n    // audit: allow(panicpath) — set on every path above\n    let a = o.unwrap();\n    a + v[0]\n}\n",
        );
        assert_eq!(check_panicpath(&ws_of(vec![two])).len(), 1, "second source still fires");
    }

    #[test]
    fn panicpath_skips_tests_bins_and_private_fns() {
        let t = test_file("fcma-linalg", "//! t\npub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n");
        let b = SourceFile::new(
            "crates/x/src/main.rs",
            Some("x"),
            Role::Bin,
            "//! b\npub fn helper(o: Option<u8>) -> u8 { o.unwrap() }\nfn main() {}\n",
        );
        let private =
            lib_file("fcma-linalg", "//! m\nfn quiet(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n");
        let cfg = lib_file(
            "fcma-linalg",
            "//! m\n#[cfg(test)]\nmod tests {\n    pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n}\n",
        );
        assert!(check_panicpath(&ws_of(vec![t, b, private, cfg])).is_empty());
    }

    const PROTO_DESIGN: &str = "## 12. Architecture contracts\n\n\
        | Message | Fields |\n|--|--|\n\
        | `ToWorker::Task` | `VoxelTask` |\n\
        | `ToWorker::Shutdown` | (none) |\n\
        | `FromWorker::Ready` | `worker` |\n\
        | `FromWorker::Done` | `worker`, `task`, `scores` |\n\
        | `FromWorker::Failed` | `worker`, `task` |\n";

    const PROTO_SRC: &str = "//! p\n\
        pub enum ToWorker {\n    Task(VoxelTask),\n    Shutdown,\n}\n\
        pub enum FromWorker {\n    Ready { worker: usize },\n    Done { worker: usize, task: VoxelTask, scores: Vec<f64> },\n    Failed { worker: usize, task: VoxelTask },\n}\n";

    const DRIVER_SRC: &str = "//! d\nfn master(m: FromWorker, w: ToWorker) {\n\
        match m {\n        FromWorker::Ready { .. } => {}\n        FromWorker::Done { worker, task, scores } => {}\n        FromWorker::Failed { worker, task } => {}\n    }\n\
        match w {\n        ToWorker::Task(t) => {}\n        ToWorker::Shutdown => {}\n    }\n}\n\
        fn sends(tx: Sender<ToWorker>) {\n    tx.send(ToWorker::Task(t));\n    tx.send(ToWorker::Shutdown);\n}\n";

    fn proto_files(proto: &str, driver: &str) -> Vec<SourceFile> {
        vec![
            SourceFile::new(PROTOCOL_FILE, Some("fcma-cluster"), Role::Lib, proto),
            SourceFile::new(DRIVER_FILE, Some("fcma-cluster"), Role::Lib, driver),
        ]
    }

    #[test]
    fn protocol_clean_on_conforming_state_machine() {
        let ws = ws_with(
            proto_files(PROTO_SRC, DRIVER_SRC),
            CrateGraph::default(),
            Contracts::from_design_md(PROTO_DESIGN),
        );
        let v = check_protocol(&ws);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn protocol_flags_undocumented_variant_and_missing_arm() {
        let proto = PROTO_SRC.replace("    Shutdown,\n", "    Shutdown,\n    Poison,\n");
        let ws = ws_with(
            proto_files(&proto, DRIVER_SRC),
            CrateGraph::default(),
            Contracts::from_design_md(PROTO_DESIGN),
        );
        let v = check_protocol(&ws);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("not documented")));
        assert!(v.iter().any(|x| x.message.contains("not handled by any match arm")));
    }

    #[test]
    fn protocol_flags_done_without_task_identity() {
        let proto = PROTO_SRC.replace(
            "    Done { worker: usize, task: VoxelTask, scores: Vec<f64> },\n",
            "    Done { worker: usize, scores: Vec<f64> },\n",
        );
        let driver = DRIVER_SRC.replace(
            "FromWorker::Done { worker, task, scores }",
            "FromWorker::Done { worker, scores }",
        );
        let ws = ws_with(
            proto_files(&proto, &driver),
            CrateGraph::default(),
            Contracts::from_design_md(PROTO_DESIGN),
        );
        let v = check_protocol(&ws);
        assert!(v.iter().any(|x| x.message.contains("task identity")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("must carry field `task`")), "{v:?}");
    }

    #[test]
    fn protocol_flags_stale_table_row() {
        let design = format!("{PROTO_DESIGN}| `FromWorker::Retired` | (none) |\n");
        let ws = ws_with(
            proto_files(PROTO_SRC, DRIVER_SRC),
            CrateGraph::default(),
            Contracts::from_design_md(&design),
        );
        let v = check_protocol(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no such variant"));
    }

    #[test]
    fn protocol_skips_without_table_or_file() {
        let ws = ws_with(
            proto_files(PROTO_SRC, DRIVER_SRC),
            CrateGraph::default(),
            Contracts::default(),
        );
        assert!(check_protocol(&ws).is_empty());
        let ws2 =
            ws_with(Vec::new(), CrateGraph::default(), Contracts::from_design_md(PROTO_DESIGN));
        assert!(check_protocol(&ws2).is_empty());
    }

    #[test]
    fn exempt_tool_crates_skip_panicpath_and_deadpub() {
        let audit = lib_file(
            "fcma-audit",
            "//! m\npub fn tool_entry(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n",
        );
        let bench =
            lib_file("fcma-bench", "//! m\npub fn harness_entry(v: &[u8]) -> u8 {\n    v[0]\n}\n");
        let ws = ws_of(vec![audit, bench]);
        assert!(check_panicpath(&ws).is_empty());
        assert!(check_deadpub(&ws).is_empty());
    }

    #[test]
    fn deadpub_flags_unreferenced_pub_item() {
        let a =
            lib_file("fcma-linalg", "//! m\npub fn orphan_kernel() {}\npub struct OrphanType;\n");
        let b = lib_file("fcma-core", "//! m\nfn unrelated() {}\n");
        let v = check_deadpub(&ws_of(vec![a, b]));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("orphan_kernel")));
        assert!(v.iter().any(|x| x.message.contains("OrphanType")));
    }

    #[test]
    fn deadpub_quiet_on_cross_crate_or_own_test_reference() {
        let a = lib_file("fcma-linalg", "//! m\npub fn used_kernel() {}\npub fn test_only() {}\n");
        let b = lib_file("fcma-core", "//! m\nfn f() {\n    used_kernel();\n}\n");
        let t = test_file("fcma-linalg", "//! t\nfn probe() { test_only(); }\n");
        assert!(check_deadpub(&ws_of(vec![a, b, t])).is_empty());
    }

    #[test]
    fn deadpub_ignores_scoped_trait_impls_and_markers() {
        let a = lib_file(
            "fcma-linalg",
            "//! m\npub(crate) fn scoped() {}\n\
             pub trait Referenced {}\n\
             impl std::fmt::Display for M {\n    pub fn fmt(&self) {}\n}\n\
             // audit: allow(deadpub) — staged API for the next PR\npub fn staged() {}\n",
        );
        let b = lib_file("fcma-core", "//! m\nfn f(_: impl Referenced) {}\n");
        let v = check_deadpub(&ws_of(vec![a, b]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn syncfacade_flags_raw_primitives_and_grouped_imports() {
        let f = lib_file(
            "fcma-cluster",
            "//! m\nuse std::sync::Mutex;\n\
             use std::sync::{\n    Arc,\n    mpsc,\n};\n\
             use crossbeam_channel::unbounded;\n\
             fn f() {\n    std::thread::spawn(|| {});\n}\n",
        );
        let v = check_syncfacade(&ws_of(vec![f]));
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("std::sync::Mutex")));
        assert!(v.iter().any(|x| x.message.contains("std::sync::mpsc")));
        assert!(v.iter().any(|x| x.message.contains("crossbeam_channel")));
        assert!(v.iter().any(|x| x.message.contains("std::thread")));
        assert!(v.iter().all(|x| x.pass == "syncfacade"));
    }

    #[test]
    fn syncfacade_allows_arc_exempt_crates_tests_and_markers() {
        let arc_only = lib_file("fcma-cluster", "//! m\nuse std::sync::Arc;\nfn f() {}\n");
        let facade_itself = lib_file("fcma-sync", "//! m\nuse std::sync::Mutex;\nfn f() {}\n");
        let in_tests = lib_file(
            "fcma-cluster",
            "//! m\n#[cfg(test)]\nmod tests {\n    use std::sync::mpsc;\n}\n",
        );
        let marked = lib_file(
            "fcma-linalg",
            "//! m\n// audit: allow(syncfacade) — kernel-local reduction lock\nuse parking_lot::Mutex;\n",
        );
        let v = check_syncfacade(&ws_of(vec![arc_only, facade_itself, in_tests, marked]));
        assert!(v.is_empty(), "{v:?}");
    }

    fn lock_contract() -> Contracts {
        Contracts {
            lock_order: Some(vec!["shared".to_owned(), "attempts".to_owned()]),
            ..Contracts::default()
        }
    }

    #[test]
    fn lockorder_silent_without_a_contract_table() {
        let f = lib_file("fcma-cluster", "//! m\nfn f() {\n    let g = rogue.lock();\n}\n");
        assert!(check_lockorder(&ws_of(vec![f])).is_empty());
    }

    #[test]
    fn lockorder_flags_inversion_undeclared_and_unresolvable() {
        let f = lib_file(
            "fcma-cluster",
            "//! m\nfn inverted() {\n    let a = attempts.lock();\n    let s = shared.lock();\n}\n\
             fn undeclared() {\n    let g = rogue.lock();\n}\n\
             fn unresolvable() {\n    let g = make().lock();\n}\n",
        );
        let v = check_lockorder(&ws_with(vec![f], CrateGraph::default(), lock_contract()));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|x| x.line == 4 && x.message.contains("inverts")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("`rogue` is not declared")));
        assert!(v.iter().any(|x| x.message.contains("unresolvable receiver")));
    }

    #[test]
    fn lockorder_flags_transitive_inversion_through_a_callee() {
        let f = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let g = attempts.lock();\n    helper();\n}\n\
             fn helper() {\n    let s = shared.lock();\n}\n",
        );
        let v = check_lockorder(&ws_with(vec![f], CrateGraph::default(), lock_contract()));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("can acquire lock `shared`"), "{}", v[0].message);
    }

    #[test]
    fn lockorder_quiet_on_increasing_rank_and_markers() {
        let ordered = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let s = shared.lock();\n    helper();\n}\n\
             fn helper() {\n    let a = attempts.lock();\n}\n",
        );
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f() {\n    // audit: allow(lockorder) — guard drops on the previous line\n    let g = scratch.lock();\n}\n",
        );
        let v = check_lockorder(&ws_with(
            vec![ordered, marked],
            CrateGraph::default(),
            lock_contract(),
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn blockinlock_flags_direct_and_transitive_blocking() {
        let f = lib_file(
            "fcma-cluster",
            "//! m\nfn direct() {\n    let g = state.lock();\n    let m = rx.recv();\n}\n\
             fn indirect() {\n    let g = state.lock();\n    helper();\n}\n\
             fn helper() {\n    let m = rx.recv();\n}\n",
        );
        let v = check_blockinlock(&ws_of(vec![f]));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.line == 4 && x.message.contains("`.recv()` can block")));
        assert!(
            v.iter().any(|x| x.line == 8 && x.message.contains("call to `helper` can block")),
            "{v:?}"
        );
    }

    #[test]
    fn blockinlock_quiet_before_lock_outside_lib_and_with_marker() {
        let before = lib_file(
            "fcma-cluster",
            "//! m\nfn f() {\n    let m = rx.recv();\n    let g = state.lock();\n}\n",
        );
        let bin = SourceFile::new(
            "crates/fcma-cli/src/main.rs",
            Some("fcma-cli"),
            Role::Bin,
            "//! m\nfn f() {\n    let g = io::stdout().lock();\n    out.flush();\n}\n",
        );
        let marked = lib_file(
            "fcma-core",
            "//! m\nfn f() {\n    let g = state.lock();\n    // audit: allow(blockinlock) — guard dropped on the line above\n    let m = rx.recv();\n}\n",
        );
        let v = check_blockinlock(&ws_of(vec![before, bin, marked]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unusedallow_flags_stale_unknown_and_reasonless() {
        let f = lib_file(
            "fcma-core",
            "//! m\n// audit: allow(cast) — nothing below casts\nfn f() {}\n\
             // audit: allow(frobnicate) — no such pass\nfn g() {}\n\
             fn h(n: usize) -> f32 {\n    // audit: allow(cast)\n    n as f32\n}\n",
        );
        let ws = ws_of(vec![f]);
        let _ = check_casts(&ws); // consume nothing: marker has no reason
        let v = check_unused_allow(&ws);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("suppresses nothing")));
        assert!(v.iter().any(|x| x.message.contains("unknown pass `frobnicate`")));
        assert!(v.iter().any(|x| x.message.contains("missing its mandatory reason")));
    }

    #[test]
    fn unusedallow_validates_equivalent_markers() {
        // A live triage marker: an arith-swap mutant is enumerated on
        // the line below it. A stale one: the marked line has no mutant
        // of that class. And an unknown class is always flagged.
        let f = lib_file(
            "fcma-core",
            "//! m\npub fn f(a: usize, b: usize) -> usize {\n    \
             // audit: equivalent(arith-swap) — a and b are both zero here\n    a + b\n}\n\
             // audit: equivalent(arith-swap) — nothing below\nfn g() {}\n\
             // audit: equivalent(no-such-class) — bad\nfn h() {}\n\
             // audit: equivalent(cmp-flip)\nfn i(x: usize) -> bool {\n    x < 1\n}\n",
        );
        let ws = ws_of(vec![f]);
        let v = check_unused_allow(&ws);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("no `arith-swap` mutant is enumerated")));
        assert!(v.iter().any(|x| x.message.contains("unknown mutant class `no-such-class`")));
        assert!(
            v.iter().any(|x| x.message.contains("equivalent marker for `cmp-flip` is missing")),
            "{v:?}"
        );
        assert!(
            !v.iter().any(|x| x.line == 3),
            "the live marker on line 3 must not be flagged: {v:?}"
        );
    }

    #[test]
    fn unusedallow_quiet_when_marker_consumed() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(n: usize) -> f32 {\n    // audit: allow(cast) — exact below 2^24\n    n as f32\n}\n",
        );
        let ws = ws_of(vec![f]);
        assert!(check_casts(&ws).is_empty());
        assert!(check_unused_allow(&ws).is_empty());
    }

    #[test]
    fn unusedallow_flags_marker_for_unescapable_pass() {
        let f = lib_file("fcma-core", "//! m\n// audit: allow(unsafe) — nice try\nfn f() {}\n");
        let ws = ws_of(vec![f]);
        let v = check_unused_allow(&ws);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no escape hatch"));
    }

    #[test]
    fn run_all_consumes_markers_before_unusedallow() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: allow(proptest) — internal helper surfaced for benches\npub fn bench_hook() {}\n",
        );
        let b = lib_file("fcma-core", "//! m\nfn f() {\n    bench_hook();\n}\n");
        let v = ws_of(vec![f, b]).run_all();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allocinloop_flags_direct_and_transitive_allocation() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn direct(n: usize) {\n    for _i in 0..n {\n        let v = vec![0.0f32; 4];\n        drop(v);\n    }\n}\n\
             // audit: hot\nfn indirect(n: usize) {\n    for _i in 0..n {\n        helper();\n    }\n}\n\
             fn helper() {\n    let v = Vec::new();\n    drop(v);\n}\n",
        );
        let v = check_allocinloop(&ws_of(vec![f]));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("heap allocation (`vec!`)")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("call to `helper` allocates")), "{v:?}");
    }

    #[test]
    fn allocinloop_quiet_outside_loops_and_with_marker() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn f(n: usize) {\n    let v = vec![0.0f32; n];\n    for _i in 0..n {\n        // audit: allow(allocinloop) — grows rarely, amortised\n        scratch.push(0.0);\n    }\n    drop(v);\n}\n",
        );
        let ws = ws_of(vec![f]);
        let v = check_allocinloop(&ws);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn boundsinloop_flags_induction_indexing_in_hot_loop() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn f(a: &[f32], out: &mut [f32]) {\n    for i in 0..a.len() {\n        out[i] = a[i];\n    }\n}\n",
        );
        let v = check_boundsinloop(&ws_of(vec![f]));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("indexes by the loop variable"), "{v:?}");
    }

    #[test]
    fn boundsinloop_quiet_for_nonhot_and_noninduction_index() {
        let cold = lib_file(
            "fcma-core",
            "//! m\nfn f(a: &[f32], out: &mut [f32]) {\n    for i in 0..a.len() {\n        out[i] = a[i];\n    }\n}\n",
        );
        let fixed = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn g(a: &[f32], k: usize, n: usize) -> f32 {\n    let mut last = 0.0;\n    for _i in 0..n {\n        last = a[k];\n    }\n    last\n}\n",
        );
        let v = check_boundsinloop(&ws_of(vec![cold, fixed]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn accumorder_flags_serial_float_fold_across_hot_loop() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn sum(xs: &[f32]) -> f32 {\n    let mut s = 0.0f32;\n    for x in xs {\n        s += *x;\n    }\n    s\n}\n",
        );
        let v = check_accumorder(&ws_of(vec![f]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("float accumulator `s`"), "{v:?}");
    }

    #[test]
    fn accumorder_quiet_for_integer_and_loop_local_accumulators() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn f(xs: &[f32], n: usize) -> usize {\n    let mut count = 0usize;\n    for _x in xs {\n        count += 1;\n    }\n    for _i in 0..n {\n        let mut t = 0.0f32;\n        t += 1.0;\n        consume(t);\n    }\n    count\n}\n",
        );
        let v = check_accumorder(&ws_of(vec![f]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hotcallout_flags_io_locks_and_unmarked_callees() {
        let f = lib_file(
            "fcma-linalg",
            "//! m\n// audit: hot\nfn f(state: &Shared) {\n    println!(\"progress\");\n    let g = state.lock();\n    helper();\n    drop(g);\n}\n\
             fn helper() {}\n",
        );
        let v = check_hotcallout(&ws_of(vec![f]));
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("console I/O")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("acquires lock `state`")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("neither hot nor marked pure")), "{v:?}");
    }

    #[test]
    fn hotcallout_quiet_for_pure_and_table_hot_callees() {
        let contracts =
            Contracts { hot_fns: Some(vec!["table_hot".to_owned()]), ..Contracts::default() };
        let f = lib_file(
            "fcma-linalg",
            "//! m\nfn table_hot(xs: &[f32]) {\n    leaf(xs);\n}\n\
             // audit: pure\nfn leaf(_xs: &[f32]) {}\n",
        );
        let v = check_hotcallout(&ws_with(vec![f], CrateGraph::default(), contracts));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn run_selected_gates_unusedallow_on_full_escapable_set() {
        let f =
            lib_file("fcma-core", "//! m\n// audit: allow(frobnicate) — no such pass\nfn f() {}\n");
        let ws = ws_of(vec![f]);
        assert!(ws.run_selected(&["unsafe", "cast"]).is_empty());
        let v = ws.run_selected(PASS_NAMES);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].pass, "unusedallow");
    }

    fn atomics_contracts(md: &str) -> Contracts {
        Contracts::from_design_md(&format!("## 16. Atomics contracts\n\n{md}"))
    }

    const FLAG_ROW: &str = "sites: 2\n\n\
        | Atomic | File | Role | Loads | Stores | Pairing |\n|---|---|---|---|---|---|\n\
        | `flag` | `fcma-core/src/a.rs` | cancel | `Acquire` | `Release` | `flag` |\n";

    #[test]
    fn atomicorder_sites_without_section_fire_once() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(flag: &AtomicBool) {\n    flag.store(true, Ordering::Release);\n}\n",
        );
        let v = check_atomicorder(&ws_of(vec![f]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no \u{a7}16"), "{v:?}");
    }

    #[test]
    fn atomicorder_row_covers_matching_sites() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(flag: &AtomicBool) -> bool {\n    flag.store(true, Ordering::Release);\n    flag.load(Ordering::Acquire)\n}\n",
        );
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts(FLAG_ROW),
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn atomicorder_flags_disallowed_ordering_and_missing_row() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(flag: &AtomicBool, other: &AtomicUsize) -> bool {\n    other.store(1, Ordering::SeqCst);\n    flag.store(true, Ordering::Relaxed);\n    flag.load(Ordering::Acquire)\n}\n",
        );
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts(&FLAG_ROW.replace("sites: 2", "sites: 3")),
        ));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("no DESIGN.md \u{a7}16 row")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("allows loads [Acquire]")), "{v:?}");
    }

    #[test]
    fn atomicorder_checks_site_count_and_stale_rows() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(flag: &AtomicBool) {\n    flag.store(true, Ordering::Release);\n}\n",
        );
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts(FLAG_ROW),
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("declares 2"), "{v:?}");

        let stale = "sites: 0\n\n\
            | Atomic | File | Role | Loads | Stores | Pairing |\n|---|---|---|---|---|---|\n\
            | `gone` | `fcma-core/src/a.rs` | nothing | `Relaxed` | `Relaxed` | none |\n";
        let empty = lib_file("fcma-core", "//! m\nfn f() {}\n");
        let v = check_atomicorder(&ws_with(
            vec![empty],
            CrateGraph::default(),
            atomics_contracts(stale),
        ));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("stale"), "{v:?}");
    }

    #[test]
    fn atomicorder_allow_marker_escapes_a_site() {
        let f = lib_file(
            "fcma-core",
            "//! m\nfn f(x: &AtomicUsize) {\n    // audit: allow(atomicorder) — bench-only knob\n    x.store(1, Ordering::SeqCst);\n}\n",
        );
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts("sites: 1\n"),
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    const SEQLOCK_MD: &str = "sites: 8\n\n\
        | Atomic | File | Role | Loads | Stores | Pairing |\n|---|---|---|---|---|---|\n\
        | `head` | `fcma-core/src/a.rs` | cursor | `Relaxed` | `Release` | via `ver` |\n\
        | `ver` | `fcma-core/src/a.rs` | version | `Acquire` | `Release` | `ver` |\n\
        | `w_ts` | `fcma-core/src/a.rs` | payload | `Relaxed` | `Relaxed` | via `ver` |\n\n\
        ### Seqlock shape\n\n\
        | File | Writer | Reader | Version | Payload | Cursor |\n|---|---|---|---|---|---|\n\
        | `fcma-core/src/a.rs` | `push` | `snapshot` | `ver` | `w_ts` | `head` |\n";

    const SEQLOCK_WRITER_OK: &str = "    let seq = self.head.load(Ordering::Relaxed);\n    \
        self.ver.store(2 * seq + 1, Ordering::Release);\n    \
        self.w_ts.store(7, Ordering::Relaxed);\n    \
        self.ver.store(2 * seq, Ordering::Release);\n    \
        self.head.store(seq + 1, Ordering::Release);\n";

    const SEQLOCK_READER_OK: &str = "fn snapshot(&self) -> u64 {\n    \
        let _a = self.ver.load(Ordering::Acquire);\n    \
        let ts = self.w_ts.load(Ordering::Relaxed);\n    \
        let _b = self.ver.load(Ordering::Acquire);\n    ts\n}\n";

    #[test]
    fn atomicorder_seqlock_shape_accepts_the_protocol() {
        let src = format!("//! m\nfn push(&self) {{\n{SEQLOCK_WRITER_OK}}}\n{SEQLOCK_READER_OK}");
        let f = lib_file("fcma-core", &src);
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts(SEQLOCK_MD),
        ));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn atomicorder_seqlock_mutant_dropped_second_publish_is_caught() {
        let mutant_writer =
            SEQLOCK_WRITER_OK.replace("    self.ver.store(2 * seq, Ordering::Release);\n", "");
        let src = format!("//! m\nfn push(&self) {{\n{mutant_writer}}}\n{SEQLOCK_READER_OK}");
        let f = lib_file("fcma-core", &src);
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts(&SEQLOCK_MD.replace("sites: 8", "sites: 7")),
        ));
        assert!(
            v.iter().any(|x| x.message.contains("exactly twice")),
            "mutant must trip the shape check: {v:?}"
        );
    }

    #[test]
    fn atomicorder_seqlock_payload_outside_publish_window_fires() {
        let bad_writer = "    let seq = self.head.load(Ordering::Relaxed);\n    \
            self.w_ts.store(7, Ordering::Relaxed);\n    \
            self.ver.store(2 * seq + 1, Ordering::Release);\n    \
            self.ver.store(2 * seq, Ordering::Release);\n    \
            self.head.store(seq + 1, Ordering::Release);\n";
        let src = format!("//! m\nfn push(&self) {{\n{bad_writer}}}\n{SEQLOCK_READER_OK}");
        let f = lib_file("fcma-core", &src);
        let v = check_atomicorder(&ws_with(
            vec![f],
            CrateGraph::default(),
            atomics_contracts(SEQLOCK_MD),
        ));
        assert!(
            v.iter().any(|x| x.message.contains("sit between")),
            "early payload store must fire: {v:?}"
        );
    }
}
