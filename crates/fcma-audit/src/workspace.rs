//! Workspace discovery: find every Rust source file that belongs to the
//! FCMA workspace (crates plus the root package), classify its target
//! role, and load it into a [`SourceFile`].
//!
//! `vendor/` is deliberately excluded — those are offline stand-ins for
//! external crates, not FCMA code — as is `target/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::{Role, SourceFile};

/// Load and analyze every workspace source file under `root`.
///
/// Returns files sorted by path so diagnostics are deterministic.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let mut files = Vec::new();

    // The root package.
    collect_package(root, None, &mut files)?;

    // Every crate under crates/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for dir in entries {
            if dir.is_dir() && dir.join("Cargo.toml").is_file() {
                let name = dir.file_name().and_then(|n| n.to_str()).map(str::to_owned).ok_or_else(
                    || io::Error::new(io::ErrorKind::InvalidData, "non-utf8 crate dir name"),
                )?;
                collect_package(&dir, Some(&name), &mut files)?;
            }
        }
    }

    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Collect the source files of one package rooted at `pkg`.
fn collect_package(
    pkg: &Path,
    crate_name: Option<&str>,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let src = pkg.join("src");
    if src.is_dir() {
        // A package with no lib.rs is binary-only: all of src/ is Bin.
        let has_lib = src.join("lib.rs").is_file();
        collect_tree(
            &src,
            pkg,
            crate_name,
            move |path| {
                if !has_lib || is_bin_path(path) {
                    Role::Bin
                } else {
                    Role::Lib
                }
            },
            out,
        )?;
    }
    for (sub, role) in
        [("tests", Role::Test), ("benches", Role::Bench), ("examples", Role::Example)]
    {
        let dir = pkg.join(sub);
        if dir.is_dir() {
            collect_tree(&dir, pkg, crate_name, move |_| role, out)?;
        }
    }
    Ok(())
}

/// Is this src/ path part of a binary target (`main.rs` or `src/bin/`)?
fn is_bin_path(path: &Path) -> bool {
    path.file_name().and_then(|n| n.to_str()) == Some("main.rs")
        || path.components().any(|c| c.as_os_str() == "bin")
}

/// Recursively collect `.rs` files under `dir`, assigning roles via `role_of`.
fn collect_tree(
    dir: &Path,
    pkg: &Path,
    crate_name: Option<&str>,
    role_of: impl Fn(&Path) -> Role + Copy,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_tree(&path, pkg, crate_name, role_of, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let source = fs::read_to_string(&path)?;
            let rel = rel_display(&path, pkg, crate_name);
            out.push(SourceFile::new(&rel, crate_name, role_of(&path), &source));
        }
    }
    Ok(())
}

/// Workspace-relative display path with `/` separators.
fn rel_display(path: &Path, pkg: &Path, crate_name: Option<&str>) -> String {
    let tail = path.strip_prefix(pkg).unwrap_or(path);
    let tail =
        tail.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
    match crate_name {
        Some(name) => format!("crates/{name}/{tail}"),
        None => tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("discovery should succeed");
        // The audit crate itself must be found...
        assert!(files.iter().any(|f| f.rel_path == "crates/fcma-audit/src/lexer.rs"));
        // ...the root package too...
        assert!(files.iter().any(|f| f.rel_path == "src/lib.rs"));
        // ...and nothing from vendor/ or target/.
        assert!(files.iter().all(|f| !f.rel_path.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("target/")));
    }

    #[test]
    fn bin_only_crates_are_all_bin_role() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("discovery should succeed");
        for f in files.iter().filter(|f| f.crate_name.as_deref() == Some("fcma-cli")) {
            if f.rel_path.contains("/src/") {
                assert_eq!(f.role, Role::Bin, "{}", f.rel_path);
            }
        }
    }

    #[test]
    fn roles_follow_directory_layout() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("discovery should succeed");
        for f in &files {
            if f.rel_path.contains("/tests/") || f.rel_path.starts_with("tests/") {
                assert_eq!(f.role, Role::Test, "{}", f.rel_path);
            }
            if f.rel_path.contains("/benches/") {
                assert_eq!(f.role, Role::Bench, "{}", f.rel_path);
            }
        }
    }
}
