//! A minimal line-preserving Rust lexer: separates code from comments and
//! blanks out string/char literal contents.
//!
//! The audit passes work on *scrubbed* source — the original text with
//! every comment and every literal body replaced by spaces — so a
//! `.unwrap()` inside a panic message or a `cast` inside a doc comment
//! can never trigger (or suppress) a diagnostic. Comments are collected
//! separately per line for the allow-marker and doc-section checks. Line
//! numbers and column positions are preserved exactly, which keeps
//! diagnostics clickable.
//!
//! Handled: line and block comments (nested), doc comments, string
//! literals with escapes, raw strings (`r#".."#`, any hash depth), byte
//! and byte-raw strings, char literals, and the char-vs-lifetime
//! ambiguity. This is not a full Rust lexer, but it is exact for the
//! constructs that matter to text-level analysis.

/// One file split into parallel per-line views.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// Original lines (without trailing newline).
    pub raw_lines: Vec<String>,
    /// Lines with comments and literal bodies replaced by spaces.
    pub code_lines: Vec<String>,
    /// Comment text found on each line (joined if several), else empty.
    pub comment_lines: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
    CharLit,
}

/// Scan `source` into per-line code/comment views.
pub fn scan(source: &str) -> Scanned {
    let mut raw_lines = Vec::new();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();

    let mut state = State::Code;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;

        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Code;
        }

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&raw[byte_pos(&chars, i)..]);
                        // Blank the rest of the line in the code view.
                        for _ in i..chars.len() {
                            code.push(' ');
                        }
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment { depth: 1 };
                        comment.push_str("/*");
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let mut hashes = 0u32;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        state = State::RawStr { hashes };
                        for _ in i..=j {
                            code.push(' ');
                        }
                        i = j + 1;
                    }
                    'b' if next == Some('"') => {
                        state = State::Str;
                        code.push_str("  ");
                        i += 2;
                    }
                    'b' if next == Some('r') && is_raw_string_start(&chars, i + 1) => {
                        let mut hashes = 0u32;
                        let mut j = i + 2;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        state = State::RawStr { hashes };
                        for _ in i..=j {
                            code.push(' ');
                        }
                        i = j + 1;
                    }
                    '\'' => {
                        if is_lifetime(&chars, i) {
                            code.push(c);
                            i += 1;
                        } else {
                            state = State::CharLit;
                            code.push(' ');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => unreachable!("consumed whole line above"),
                State::BlockComment { depth } => {
                    if c == '*' && next == Some('/') {
                        comment.push_str("*/");
                        code.push_str("  ");
                        i += 2;
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment { depth: depth - 1 };
                        }
                    } else if c == '/' && next == Some('*') {
                        comment.push_str("/*");
                        code.push_str("  ");
                        i += 2;
                        state = State::BlockComment { depth: depth + 1 };
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Code;
                        code.push(' ');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr { hashes } => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::CharLit => match c {
                    '\\' => {
                        code.push_str("  ");
                        i += 2;
                    }
                    '\'' => {
                        state = State::Code;
                        code.push(' ');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }

        // An unterminated escape at end of line may have pushed one space
        // too many; trim the code view to the raw length in chars.
        while code.chars().count() > chars.len() {
            code.pop();
        }

        raw_lines.push(raw.to_owned());
        code_lines.push(code);
        comment_lines.push(comment);
    }

    Scanned { raw_lines, code_lines, comment_lines }
}

/// Byte offset of char index `i` (lines are short; linear is fine).
fn byte_pos(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// Is `chars[i]` (= 'r') the start of a raw string literal `r"`/`r#`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier like `number`.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at `chars[i]` close a raw string with `hashes` hashes?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Is the `'` at `chars[i]` a lifetime rather than a char literal?
fn is_lifetime(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(&c1) if c1.is_alphabetic() || c1 == '_' => {
            // 'x' is a char literal; 'xy (no closing quote) is a lifetime.
            chars.get(i + 2) != Some(&'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_stripped_from_code() {
        let s = scan("let x = 1; // unwrap() here is fine\n");
        assert!(!s.code_lines[0].contains("unwrap"));
        assert!(s.comment_lines[0].contains("unwrap() here is fine"));
        assert!(s.code_lines[0].contains("let x = 1;"));
    }

    #[test]
    fn string_bodies_are_blanked() {
        let s = scan(r#"let m = "call .unwrap() as usize";"#);
        assert!(!s.code_lines[0].contains("unwrap"));
        assert!(!s.code_lines[0].contains("as usize"));
        assert!(s.code_lines[0].starts_with("let m = "));
        assert!(s.code_lines[0].trim_end().ends_with(';'));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = scan(r#"let m = "a \" as u32 b"; let y = 2 as u32;"#);
        let code = &s.code_lines[0];
        assert_eq!(code.matches("as u32").count(), 1, "{code:?}");
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = scan("let m = r#\"body \" as f32 \"#; let k = 1 as f32;");
        assert_eq!(s.code_lines[0].matches("as f32").count(), 1);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = scan("a /* one /* two */ still */ b\n/* open\nunwrap()\n*/ c");
        assert!(s.code_lines[0].contains('a') && s.code_lines[0].contains('b'));
        assert!(!s.code_lines[0].contains("still"));
        assert!(!s.code_lines[2].contains("unwrap"));
        assert!(s.code_lines[3].contains('c'));
    }

    #[test]
    fn lifetimes_survive_char_literals_dont() {
        let s = scan("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\''; }");
        let code = &s.code_lines[0];
        assert!(code.contains("<'a>"));
        assert!(code.contains("&'a str"));
        assert!(!code.contains('x') || !code.contains("'x'"));
    }

    #[test]
    fn doc_comments_collected() {
        let s = scan("/// # Panics\n/// on bad input\nfn f() {}");
        assert!(s.comment_lines[0].contains("# Panics"));
        assert!(s.code_lines[2].contains("fn f()"));
    }

    #[test]
    fn code_line_lengths_match_raw() {
        let src = "let s = \"ab\\\"c\"; // tail\nlet t = 'q';";
        let s = scan(src);
        for (raw, code) in s.raw_lines.iter().zip(&s.code_lines) {
            assert_eq!(raw.chars().count(), code.chars().count());
        }
    }
}
