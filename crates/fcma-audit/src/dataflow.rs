//! Intraprocedural dataflow facts for the hot-path passes.
//!
//! Three families of facts, all computed from the scrubbed token
//! stream so string literals and comments can never fake a hit:
//!
//! * **Local definitions + reaching definitions** over the block graph
//!   of [`crate::cfg::FnCfg`] — `accumorder` asks whether a float
//!   definition from *outside* a loop reaches a `+=` site inside it.
//! * **Effect summaries** — which lines of a function allocate on the
//!   heap and which lines contain a panicking `[]` index. Allocation
//!   effects are propagated interprocedurally by the `allocinloop`
//!   pass through the existing call graph.
//! * **Site scans** — compound assignments (`x += …`) and single-ident
//!   index expressions (`a[i]`), the raw material of `accumorder` and
//!   `boundsinloop`.
//!
//! Everything here is heuristic in the same deliberate way the parser
//! is: destructuring `let` bindings are not tracked, and an init
//! expression counts as "float-valued" only on positive evidence (an
//! `f32`/`f64` suffix or a decimal literal). The passes built on top
//! only ever *flag* with an escape hatch, so over- and
//! under-approximation both degrade gracefully.

use std::collections::BTreeSet;

use crate::cfg::FnCfg;
use crate::lexer::Scanned;
use crate::parser::{tokenize, FnItem, SourceKind, Tok};

/// One definition of a local variable.
#[derive(Debug, Clone)]
pub struct Def {
    /// The bound identifier.
    pub name: String,
    /// 0-based line of the binding.
    pub line: usize,
    /// Scrubbed source text to the right of the `=`.
    pub init: String,
}

impl Def {
    /// Positive evidence that the initializer is a float expression:
    /// an `f32`/`f64` suffix/type or a decimal literal (`0.0`, `1.`).
    pub fn is_float(&self) -> bool {
        if contains_word(&self.init, "f32") || contains_word(&self.init, "f64") {
            return true;
        }
        let chars: Vec<char> = self.init.chars().collect();
        chars.windows(2).any(|w| w[0].is_ascii_digit() && w[1] == '.') && !self.init.contains("..")
    }
}

/// A compound assignment `name op= …` to a plain (non-indexed,
/// non-field) local.
#[derive(Debug, Clone)]
pub struct CompoundAssign {
    /// The assigned identifier.
    pub name: String,
    /// 0-based line.
    pub line: usize,
    /// The operator character (`+`, `-`, `*`, `/`).
    pub op: char,
}

/// A `base[index]` expression whose index is a single identifier.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// 0-based line.
    pub line: usize,
    /// The indexed identifier.
    pub base: String,
    /// The index identifier.
    pub index: String,
}

/// One heap-allocation site inside a function body.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 0-based line.
    pub line: usize,
    /// Human label for diagnostics, e.g. `` `vec!` `` or `` `.to_vec()` ``.
    pub what: String,
}

/// Per-function effect summary consumed by the hot-path passes.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Heap-allocation sites, sorted by line.
    pub allocs: Vec<AllocSite>,
    /// Lines with a panicking `[]` index (from the parser's panic
    /// sources) — a cheap pre-filter for `boundsinloop`.
    pub index_lines: Vec<usize>,
}

/// Method-call names that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "clone", "collect", "to_owned", "to_string"];
/// `Owner::name` qualified calls that allocate.
const ALLOC_OWNERS: &[&str] = &["Vec", "Box", "String", "VecDeque", "BTreeMap", "HashMap"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
/// Macros that allocate, matched textually (the parser does not record
/// macro invocations as calls).
const ALLOC_MACROS: &[&str] = &["vec!", "format!"];

/// Collect the allocation and panic-index effect summary for `f`.
pub fn effects(f: &FnItem, scan: &Scanned) -> Effects {
    let Some(body) = f.body else { return Effects::default() };
    let mut allocs: Vec<AllocSite> = Vec::new();
    for c in &f.calls {
        if c.method && ALLOC_METHODS.contains(&c.name.as_str()) {
            allocs.push(AllocSite { line: c.line, what: format!("`.{}()`", c.name) });
        } else if let Some(owner) = &c.owner {
            if ALLOC_OWNERS.contains(&owner.as_str()) && ALLOC_CTORS.contains(&c.name.as_str()) {
                allocs.push(AllocSite { line: c.line, what: format!("`{}::{}`", owner, c.name) });
            }
        }
    }
    for (line, code) in scan.code_lines.iter().enumerate().take(body.1 + 1).skip(body.0) {
        for mac in ALLOC_MACROS {
            if has_macro(code, mac) {
                allocs.push(AllocSite { line, what: format!("`{mac}`") });
            }
        }
    }
    allocs.sort_by_key(|a| (a.line, a.what.clone()));
    allocs.dedup_by(|a, b| a.line == b.line && a.what == b.what);
    let mut index_lines: Vec<usize> =
        f.sources.iter().filter(|s| s.kind == SourceKind::Index).map(|s| s.line).collect();
    index_lines.dedup();
    Effects { allocs, index_lines }
}

/// Does `code` invoke macro `mac` (e.g. `"vec!"`) at a word boundary?
fn has_macro(code: &str, mac: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(mac) {
        let at = from + p;
        let ok_left = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        if ok_left {
            return true;
        }
        from = at + mac.len();
    }
    false
}

fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(word) {
        let at = from + p;
        let ok_left = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        let end = at + word.len();
        let ok_right = end >= hay.len() || {
            let c = bytes[end] as char;
            !(c.is_ascii_alphanumeric() || c == '_')
        };
        if ok_left && ok_right {
            return true;
        }
        from = end;
    }
    false
}

/// Tokens of the body span, as `(token, line)` pairs.
fn body_tokens(scan: &Scanned, body: (usize, usize)) -> Vec<(Tok, usize)> {
    tokenize(scan).into_iter().filter(|(_, l)| body.0 <= *l && *l <= body.1).collect()
}

/// Punctuation that, directly before an `Ident '=' …` sequence, marks a
/// comparison or compound operator rather than a plain assignment.
const NOT_ASSIGN_PREFIX: &[char] =
    &['=', '<', '>', '!', '+', '-', '*', '/', '%', '&', '|', '^', '.', ':'];

/// Collect local definitions (simple `let` bindings and plain
/// reassignments) inside `body`. Destructuring patterns are skipped.
pub fn local_defs(scan: &Scanned, body: (usize, usize)) -> Vec<Def> {
    let toks = body_tokens(scan, body);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].0 {
            Tok::Ident(w) if w == "let" => {
                let mut j = i + 1;
                if matches!(&toks.get(j), Some((Tok::Ident(m), _)) if m == "mut") {
                    j += 1;
                }
                if let (Some((Tok::Ident(name), line)), Some((Tok::P('=') | Tok::P(':'), _))) =
                    (toks.get(j), toks.get(j + 1))
                {
                    // `let x = …` or `let x: T = …`.
                    out.push(Def {
                        name: name.clone(),
                        line: *line,
                        init: init_text(&scan.code_lines[*line]),
                    });
                    i = j + 1;
                    continue;
                }
            }
            Tok::Ident(name) => {
                // Plain reassignment `x = …` (not `==`, `=>`, `x op= …`).
                let prev_ok = i == 0
                    || match &toks[i - 1].0 {
                        Tok::Ident(w) => w != "let" && w != "mut",
                        Tok::P(c) => !NOT_ASSIGN_PREFIX.contains(c),
                    };
                let is_assign = matches!(toks.get(i + 1), Some((Tok::P('='), _)))
                    && !matches!(toks.get(i + 2), Some((Tok::P('=') | Tok::P('>'), _)));
                if prev_ok && is_assign && !is_keyword(name) {
                    out.push(Def {
                        name: name.clone(),
                        line: toks[i].1,
                        init: init_text(&scan.code_lines[toks[i].1]),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "let"
            | "mut"
            | "if"
            | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "in"
            | "ref"
            | "move"
            | "const"
            | "static"
    )
}

/// The source text after the first plain `=` on `code` (skipping
/// `==`, `<=`, `>=`, `!=`, `=>`, and compound `op=` operators).
fn init_text(code: &str) -> String {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '=' {
            continue;
        }
        let prev = if i > 0 { chars[i - 1] } else { ' ' };
        let next = chars.get(i + 1).copied().unwrap_or(' ');
        if NOT_ASSIGN_PREFIX.contains(&prev) || next == '=' || next == '>' {
            continue;
        }
        return chars[i + 1..].iter().collect();
    }
    String::new()
}

/// Collect compound assignments to plain locals inside `body`.
/// Indexed (`a[i] += …`) and field (`s.x += …`) targets are skipped —
/// they are element updates, not scalar accumulators.
pub fn compound_assigns(scan: &Scanned, body: (usize, usize)) -> Vec<CompoundAssign> {
    let toks = body_tokens(scan, body);
    let mut out = Vec::new();
    for i in 1..toks.len().saturating_sub(1) {
        let op = match &toks[i].0 {
            Tok::P(c @ ('+' | '-' | '*' | '/')) => *c,
            _ => continue,
        };
        if !matches!(&toks[i + 1].0, Tok::P('=')) {
            continue;
        }
        if matches!(toks.get(i + 2), Some((Tok::P('='), _))) {
            continue;
        }
        let Tok::Ident(name) = &toks[i - 1].0 else { continue };
        if is_keyword(name) {
            continue;
        }
        // `s.x += …` is a field update; `*s += …` (a &mut deref) is a
        // scalar accumulator and is kept.
        if i >= 2 && matches!(&toks[i - 2].0, Tok::P('.')) {
            continue;
        }
        out.push(CompoundAssign { name: name.clone(), line: toks[i].1, op });
    }
    out
}

/// Collect `base[index]` sites where the index is one identifier.
pub fn index_sites(scan: &Scanned, body: (usize, usize)) -> Vec<IndexSite> {
    let toks = body_tokens(scan, body);
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        let (Tok::Ident(base), line) = (&toks[i].0, toks[i].1) else { continue };
        if !matches!(&toks[i + 1].0, Tok::P('[')) {
            continue;
        }
        let Tok::Ident(index) = &toks[i + 2].0 else { continue };
        if !matches!(&toks[i + 3].0, Tok::P(']')) {
            continue;
        }
        if is_keyword(base) || is_keyword(index) {
            continue;
        }
        out.push(IndexSite { line, base: base.clone(), index: index.clone() });
    }
    out
}

/// Reaching definitions over a [`FnCfg`] block graph.
pub struct Reaching<'a> {
    defs: &'a [Def],
    cfg: &'a FnCfg,
    /// Per-block set of def indices reaching the block's entry.
    in_sets: Vec<BTreeSet<usize>>,
    /// Block index each def lives in.
    def_block: Vec<usize>,
}

impl<'a> Reaching<'a> {
    /// Run the classic gen/kill fixpoint. Block counts are tiny (one
    /// per brace region), so a naive iterate-until-stable is plenty.
    pub fn build(cfg: &'a FnCfg, defs: &'a [Def]) -> Reaching<'a> {
        let nb = cfg.blocks.len();
        let def_block: Vec<usize> = defs.iter().map(|d| cfg.block_at(d.line)).collect();
        // gen[b]: per name, the last def of that name in the block.
        let mut gen: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nb];
        let mut kills_name: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); nb];
        for b in 0..nb {
            let mut last: std::collections::BTreeMap<&str, usize> = Default::default();
            for (di, d) in defs.iter().enumerate() {
                if def_block[di] == b {
                    last.insert(d.name.as_str(), di);
                    kills_name[b].insert(d.name.as_str());
                }
            }
            gen[b].extend(last.values().copied());
        }
        let mut in_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nb];
        let mut out_sets: Vec<BTreeSet<usize>> = gen.clone();
        loop {
            let mut changed = false;
            for b in 0..nb {
                let mut inc: BTreeSet<usize> = BTreeSet::new();
                for (p, blk) in cfg.blocks.iter().enumerate() {
                    if blk.succs.contains(&b) {
                        inc.extend(out_sets[p].iter().copied());
                    }
                }
                if inc != in_sets[b] {
                    in_sets[b] = inc;
                    changed = true;
                }
                let mut out: BTreeSet<usize> = gen[b].clone();
                out.extend(
                    in_sets[b]
                        .iter()
                        .copied()
                        .filter(|&d| !kills_name[b].contains(defs[d].name.as_str())),
                );
                if out != out_sets[b] {
                    out_sets[b] = out;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Reaching { defs, cfg, in_sets, def_block }
    }

    /// Definitions of `name` that can reach a use at `line`: the latest
    /// same-block def at or before the line if one exists, otherwise
    /// every def of the name flowing into the block.
    pub fn reaching_at(&self, name: &str, line: usize) -> Vec<&Def> {
        let b = self.cfg.block_at(line);
        let local = self
            .defs
            .iter()
            .enumerate()
            .filter(|(di, d)| self.def_block[*di] == b && d.name == name && d.line <= line)
            .max_by_key(|(_, d)| d.line);
        if let Some((_, d)) = local {
            return vec![d];
        }
        self.in_sets[b].iter().map(|&di| &self.defs[di]).filter(|d| d.name == name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse;

    fn first_fn(src: &str) -> (Scanned, (usize, usize), FnItem) {
        let scanned = scan(src);
        let parsed = parse(&scanned);
        let f = parsed.fns.first().expect("fixture has a fn").clone();
        let body = f.body.expect("fixture fn has a body");
        (scanned, body, f)
    }

    #[test]
    fn let_bindings_and_reassignments_are_defs() {
        let (scanned, body, _) = first_fn(
            "fn f() {\n    let mut s = 0.0f32;\n    let n: usize = 3;\n    s = 1.0;\n    let _ = (s, n);\n}\n",
        );
        let defs = local_defs(&scanned, body);
        let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"s"), "{defs:?}");
        assert!(names.contains(&"n"), "{defs:?}");
        assert_eq!(defs.iter().filter(|d| d.name == "s").count(), 2, "let + reassign");
    }

    #[test]
    fn float_initializers_are_recognized() {
        let (scanned, body, _) = first_fn(
            "fn f(k: usize) {\n    let a = 0.0f32;\n    let b = 1.5;\n    let c = k;\n    let d = 0..k;\n    let _ = (a, b, c, d);\n}\n",
        );
        let defs = local_defs(&scanned, body);
        let by = |n: &str| defs.iter().find(|d| d.name == n).expect("def exists");
        assert!(by("a").is_float());
        assert!(by("b").is_float());
        assert!(!by("c").is_float(), "plain ident init has no float evidence");
        assert!(!by("d").is_float(), "a range is not a float literal");
    }

    #[test]
    fn comparisons_and_arrows_are_not_defs() {
        let (scanned, body, _) = first_fn(
            "fn f(x: usize) -> usize {\n    if x == 3 { return 0; }\n    let y = match x { 0 => 1, _ => 2 };\n    y\n}\n",
        );
        let defs = local_defs(&scanned, body);
        assert_eq!(defs.len(), 1, "{defs:?}");
        assert_eq!(defs[0].name, "y");
    }

    #[test]
    fn compound_assigns_skip_indexed_and_field_targets() {
        let (scanned, body, _) = first_fn(
            "fn f(a: &mut [f32], s: &mut St) {\n    let mut t = 0.0;\n    t += 1.0;\n    a[0] += 1.0;\n    s.x += 1.0;\n    *best -= 2.0;\n}\n",
        );
        let sites = compound_assigns(&scanned, body);
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["t", "best"], "{sites:?}");
    }

    #[test]
    fn index_sites_match_single_ident_indices_only() {
        let (scanned, body, _) = first_fn(
            "fn f(a: &[f32], d: &mut [f32], i: usize, n: usize) {\n    let x = a[i];\n    d[i + 1] = x;\n    let y = &a[..n];\n    let _ = y;\n}\n",
        );
        let sites = index_sites(&scanned, body);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].base, "a");
        assert_eq!(sites[0].index, "i");
    }

    #[test]
    fn alloc_effects_cover_macros_methods_and_ctors() {
        let (scanned, _, f) = first_fn(
            "fn f(xs: &[f32]) -> Vec<f32> {\n    let v = vec![0.0f32; 4];\n    let w = xs.to_vec();\n    let b = Box::new(1);\n    let _ = (w, b);\n    v\n}\n",
        );
        let e = effects(&f, &scanned);
        let whats: Vec<&str> = e.allocs.iter().map(|a| a.what.as_str()).collect();
        assert!(whats.contains(&"`vec!`"), "{whats:?}");
        assert!(whats.contains(&"`.to_vec()`"), "{whats:?}");
        assert!(whats.contains(&"`Box::new`"), "{whats:?}");
    }

    #[test]
    fn alloc_macros_in_strings_or_comments_do_not_count() {
        let (scanned, _, f) = first_fn(
            "fn f() {\n    // vec! here is commentary\n    let s = \"vec![1]\";\n    let _ = s;\n}\n",
        );
        let e = effects(&f, &scanned);
        assert!(e.allocs.is_empty(), "{:?}", e.allocs);
    }

    #[test]
    fn reaching_defs_cross_loop_boundary() {
        let (scanned, body, _) = first_fn(
            "fn f(xs: &[f32]) -> f32 {\n    let mut s = 0.0f32;\n    for x in xs {\n        s += *x;\n    }\n    s\n}\n",
        );
        let cfg = FnCfg::build(&scanned, body);
        let defs = local_defs(&scanned, body);
        let rd = Reaching::build(&cfg, &defs);
        let reach = rd.reaching_at("s", 3);
        assert!(!reach.is_empty(), "outer def must reach the += site");
        assert!(reach.iter().any(|d| d.line == 1 && d.is_float()), "{reach:?}");
    }

    #[test]
    fn per_iteration_def_shadows_outer_def() {
        let (scanned, body, _) = first_fn(
            "fn f(xs: &[f32]) {\n    let mut s = 0.0f32;\n    for x in xs {\n        let mut s = 0.0f32;\n        s += *x;\n        let _ = s;\n    }\n    let _ = s;\n}\n",
        );
        let cfg = FnCfg::build(&scanned, body);
        let defs = local_defs(&scanned, body);
        let rd = Reaching::build(&cfg, &defs);
        let reach = rd.reaching_at("s", 4);
        assert!(
            reach.iter().all(|d| d.line == 3),
            "same-block def must shadow the outer one: {reach:?}"
        );
    }
}
