//! Mutant enumeration: typed, line-preserving semantic mutations over
//! the analyzed workspace, driven by the same lexer/parser/CFG/graph
//! layers the audit passes use.
//!
//! Each [`Mutant`] is a single-line textual patch that changes program
//! semantics without changing the line count, so every diagnostic a
//! pass raises against the mutated file stays comparable to the clean
//! baseline line-for-line. The classes are chosen to probe a specific
//! oracle each:
//!
//! | class              | seeded fault                                   | expected killer |
//! |--------------------|------------------------------------------------|-----------------|
//! | `arith-swap`       | `+`↔`-`, `*`→`+`, `/`→`*` (and compound forms) | tests           |
//! | `cmp-flip`         | `<`↔`<=`, `>`↔`>=`, `==`↔`!=`                  | tests           |
//! | `off-by-one`       | for-loop `a..b` → `a..=b`                      | tests           |
//! | `accum-reorder`    | float-accumulating `for` loop reversed          | tests           |
//! | `ordering-weaken`  | `Ordering::{Acquire,Release,AcqRel,SeqCst}` → `Relaxed` | `atomicorder` |
//! | `lock-delete`      | a declared `.lock()` acquisition removed        | `lockset` / model check |
//! | `band-shift`       | `split_at_mut(e)` → `split_at_mut(e + 1)`       | tests           |
//! | `match-arm-delete` | a driver protocol arm retargeted off its variant | `protocol`     |
//!
//! Enumeration is deliberately conservative: operator sites come from
//! scrubbed code lines (never strings or comments) inside function
//! bodies, loop mutations from the [`crate::cfg`] loop forest, ordering
//! sites from the same receiver attribution the `atomicorder` pass
//! uses, and sites the DESIGN.md contracts already permit to be weak
//! (or that an allow marker covers) are skipped — those are not faults.
//! `fcma-mut` applies the patches through an in-memory overlay and
//! classifies each mutant against the audit passes, the model checker,
//! and call-graph test reachability.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::{FnCfg, LoopKind};
use crate::dataflow;
use crate::graph::CallGraph;
use crate::parser::ParsedFile;
use crate::passes::{self, Workspace};
use crate::source::Role;

/// Every mutant-class name, in report order. §17 mutation-contract rows
/// and `// audit: equivalent(<class>)` markers must name one of these.
pub const MUTANT_CLASSES: &[&str] = &[
    "accum-reorder",
    "arith-swap",
    "band-shift",
    "cmp-flip",
    "lock-delete",
    "match-arm-delete",
    "off-by-one",
    "ordering-weaken",
];

/// Crates never mutated: the analysis tools themselves (mutating the
/// auditor and then asking it whether it noticed proves nothing), the
/// bench harness, and the model checker whose scheduler is the model
/// under test, not the system.
pub const MUTATION_EXEMPT: &[&str] = &["fcma-audit", "fcma-bench", "fcma-mc", "fcma-mut"];

/// The driver file whose protocol match arms `match-arm-delete` targets.
const DRIVER_FILE: &str = "crates/fcma-cluster/src/driver.rs";

/// One enumerated mutant: a single-line patch plus the metadata the
/// classifier needs (site, enclosing fn, human description).
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Mutant class (one of [`MUTANT_CLASSES`]).
    pub class: &'static str,
    /// Index of the mutated file in [`Workspace::files`].
    pub file: usize,
    /// Workspace-relative path of that file.
    pub rel_path: String,
    /// 0-based line of the patch.
    pub line: usize,
    /// 0-based char column of the mutation site within the line.
    pub col: usize,
    /// Name of the enclosing fn, when the site is inside one.
    pub fn_name: Option<String>,
    /// Human description of the seeded fault.
    pub description: String,
    /// The full replacement for the raw source line.
    pub patched: String,
}

impl Mutant {
    /// Stable identifier: `class:path:1-based-line:col`.
    pub fn id(&self) -> String {
        format!("{}:{}:{}:{}", self.class, self.rel_path, self.line + 1, self.col)
    }
}

/// Binary-operator swaps probed by `arith-swap`, as
/// (needle, replacement, description) over rustfmt-spaced code.
const ARITH_SWAPS: &[(&str, &str, &str)] = &[
    (" + ", " - ", "replace `+` with `-`"),
    (" - ", " + ", "replace `-` with `+`"),
    (" * ", " + ", "replace `*` with `+`"),
    (" / ", " * ", "replace `/` with `*`"),
    (" += ", " -= ", "replace `+=` with `-=`"),
    (" -= ", " += ", "replace `-=` with `+=`"),
    (" *= ", " += ", "replace `*=` with `+=`"),
    (" /= ", " *= ", "replace `/=` with `*=`"),
];

/// Comparison flips probed by `cmp-flip`.
const CMP_FLIPS: &[(&str, &str, &str)] = &[
    (" < ", " <= ", "replace `<` with `<=`"),
    (" <= ", " < ", "replace `<=` with `<`"),
    (" > ", " >= ", "replace `>` with `>=`"),
    (" >= ", " > ", "replace `>=` with `>`"),
    (" == ", " != ", "replace `==` with `!=`"),
    (" != ", " == ", "replace `!=` with `==`"),
];

/// Is `file` in mutation scope: a library file of a non-exempt crate?
pub fn in_scope(ws: &Workspace, file: usize) -> bool {
    ws.files[file].role == Role::Lib && !MUTATION_EXEMPT.contains(&ws.crate_key(file))
}

/// Enumerate every mutant over the workspace, sorted by
/// (class, file, line, col). Deterministic: no randomness, no ambient
/// state — the same tree always yields the same list, which is what
/// makes the committed `mutation-baseline.json` reproducible.
pub fn enumerate(ws: &Workspace) -> Vec<Mutant> {
    let mut out = Vec::new();
    for fi in 0..ws.files.len() {
        if !in_scope(ws, fi) {
            continue;
        }
        operator_mutants(ws, fi, &mut out);
        loop_mutants(ws, fi, &mut out);
        ordering_mutants(ws, fi, &mut out);
        lock_mutants(ws, fi, &mut out);
        band_mutants(ws, fi, &mut out);
        arm_mutants(ws, fi, &mut out);
    }
    out.sort_by(|a, b| {
        (a.class, &a.rel_path, a.line, a.col).cmp(&(b.class, &b.rel_path, b.line, b.col))
    });
    out
}

/// The enclosing fn of a 0-based line, if any.
fn enclosing_fn(parsed: &ParsedFile, line: usize) -> Option<&crate::parser::FnItem> {
    parsed
        .fns
        .iter()
        .filter(|f| f.body.is_some_and(|(a, b)| (a..=b).contains(&line)))
        .min_by_key(|f| f.body.map_or(usize::MAX, |(a, b)| b - a))
}

/// Patch the raw line: replace `len` chars at char position `col` with
/// `with`. Returns `None` when the raw text at that position differs
/// from the scrubbed view (a site inside a literal — never a code site).
fn splice(raw: &str, col: usize, len: usize, with: &str, expect: &str) -> Option<String> {
    let chars: Vec<char> = raw.chars().collect();
    if col + len > chars.len() {
        return None;
    }
    let window: String = chars[col..col + len].iter().collect();
    if window != expect {
        return None;
    }
    let mut out: String = chars[..col].iter().collect();
    out.push_str(with);
    out.extend(chars[col + len..].iter());
    Some(out)
}

/// Token immediately left/right of a char span, for type-context
/// filtering: `Clone + Send` bounds and `'a + 'b` lifetime sums must
/// not become arithmetic mutants.
fn flanking_tokens(code: &str, start: usize, end: usize) -> (String, String) {
    let chars: Vec<char> = code.chars().collect();
    let mut l = String::new();
    let mut i = start;
    while i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_') {
        i -= 1;
    }
    l.extend(chars[i..start].iter());
    let mut r = String::new();
    let mut j = end;
    if chars.get(j) == Some(&'\'') {
        r.push('\'');
        j += 1;
    }
    while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
        r.push(chars[j]);
        j += 1;
    }
    (l, r)
}

/// `arith-swap` and `cmp-flip`: spaced binary-operator sites inside fn
/// bodies. The tree is rustfmt-formatted, so binary operators are
/// always space-flanked while unary minus, deref, generics, shifts, and
/// `=>` arrows never are — the spaced needle is the disambiguator.
fn operator_mutants(ws: &Workspace, fi: usize, out: &mut Vec<Mutant>) {
    let f = &ws.files[fi];
    let parsed = &ws.parsed[fi];
    for func in &parsed.fns {
        let Some((b0, b1)) = func.body else { continue };
        if f.in_test_span(func.line) {
            continue;
        }
        for line in b0..=b1.min(f.scan.code_lines.len().saturating_sub(1)) {
            if f.in_test_span(line) {
                continue;
            }
            let code = &f.scan.code_lines[line];
            for (class, table) in [("arith-swap", ARITH_SWAPS), ("cmp-flip", CMP_FLIPS)] {
                for &(needle, with, desc) in table {
                    for col in find_all(code, needle) {
                        let op_start = col + 1;
                        let op_end = col + needle.chars().count() - 1;
                        let (l, r) = flanking_tokens(code, col, col + needle.chars().count());
                        // Type/bound context — `dyn Fn() + Send`,
                        // `T: Clone + Default`, `'a + 'b`: a `+` whose
                        // right side is a capitalized ident or lifetime
                        // and whose left side is a capitalized ident or
                        // a closing `)`/`>` is a bound, not arithmetic.
                        let upper = |s: &str| s.chars().next().is_some_and(char::is_uppercase);
                        let left_ty = upper(&l)
                            || l.is_empty()
                                && col > 0
                                && matches!(code.chars().nth(col - 1), Some(')') | Some('>'));
                        if needle == " + " && left_ty && (upper(&r) || r.starts_with('\'')) {
                            continue;
                        }
                        let op: String = {
                            let cs: Vec<char> = needle.chars().collect();
                            cs[1..cs.len() - 1].iter().collect()
                        };
                        let with_op: String = {
                            let cs: Vec<char> = with.chars().collect();
                            cs[1..cs.len() - 1].iter().collect()
                        };
                        let Some(patched) = splice(
                            &f.scan.raw_lines[line],
                            op_start,
                            op_end - op_start,
                            &with_op,
                            &op,
                        ) else {
                            continue;
                        };
                        out.push(Mutant {
                            class,
                            file: fi,
                            rel_path: f.rel_path.clone(),
                            line,
                            col: op_start,
                            fn_name: Some(func.name.clone()),
                            description: format!("{desc} in `{}`", func.name),
                            patched,
                        });
                    }
                }
            }
        }
    }
}

/// Every char position where `needle` occurs in `code`. Operator
/// needles are space-flanked (` + `), so a shorter operator can never
/// match inside a longer one — ` + ` has `=` where ` += ` has a space.
fn find_all(code: &str, needle: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let pat: Vec<char> = needle.chars().collect();
    let mut cols = Vec::new();
    if chars.len() < pat.len() {
        return cols;
    }
    for s in 0..=(chars.len() - pat.len()) {
        if chars[s..s + pat.len()] == pat[..] {
            cols.push(s);
        }
    }
    cols
}

/// `off-by-one` and `accum-reorder`: loop-level mutations from the CFG
/// loop forest. `off-by-one` widens a for-loop's exclusive range bound;
/// `accum-reorder` reverses a for loop that carries a float compound
/// accumulation across iterations (per the reaching-definitions
/// analysis), changing the rounding order the §15 bit-identity
/// contract pins.
fn loop_mutants(ws: &Workspace, fi: usize, out: &mut Vec<Mutant>) {
    let f = &ws.files[fi];
    let parsed = &ws.parsed[fi];
    for func in &parsed.fns {
        let Some(body) = func.body else { continue };
        if f.in_test_span(func.line) {
            continue;
        }
        let cfg = FnCfg::build(&f.scan, body);
        if cfg.loops.is_empty() {
            continue;
        }
        let sites = dataflow::compound_assigns(&f.scan, body);
        let defs = dataflow::local_defs(&f.scan, body);
        let rd = dataflow::Reaching::build(&cfg, &defs);
        for lp in &cfg.loops {
            if lp.kind != LoopKind::For || f.in_test_span(lp.head_line) {
                continue;
            }
            let head = lp.head_line;
            let code = &f.scan.code_lines[head];
            let Some(range_col) = exclusive_range_col(code) else { continue };
            if let Some(patched) = splice(&f.scan.raw_lines[head], range_col, 2, "..=", "..") {
                out.push(Mutant {
                    class: "off-by-one",
                    file: fi,
                    rel_path: f.rel_path.clone(),
                    line: head,
                    col: range_col,
                    fn_name: Some(func.name.clone()),
                    description: format!(
                        "widen loop bound `..` to `..=` in `{}` (one extra iteration)",
                        func.name
                    ),
                    patched,
                });
            }
            // Reversal only matters when a float accumulation is carried
            // across this loop's iterations: integer loops reversed are
            // equivalent, float sums are not (association order).
            let carries_float = sites.iter().any(|site| {
                (lp.body.0..=lp.body.1).contains(&site.line)
                    && matches!(site.op, '+' | '-' | '*')
                    && rd
                        .reaching_at(&site.name, site.line)
                        .into_iter()
                        .any(|d| (d.line < lp.body.0 || d.line > lp.body.1) && d.is_float())
            });
            if !carries_float {
                continue;
            }
            if let Some(patched) = reverse_range(&f.scan.raw_lines[head], code) {
                out.push(Mutant {
                    class: "accum-reorder",
                    file: fi,
                    rel_path: f.rel_path.clone(),
                    line: head,
                    col: range_col,
                    fn_name: Some(func.name.clone()),
                    description: format!(
                        "reverse float-accumulating loop in `{}` (summation order flips)",
                        func.name
                    ),
                    patched,
                });
            }
        }
    }
}

/// Char position of the first exclusive `..` range operator on a
/// for-loop head line: not `..=`, not `...`, not a method-chain dot.
fn exclusive_range_col(code: &str) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    for s in 0..chars.len().saturating_sub(1) {
        if chars[s] != '.' || chars[s + 1] != '.' {
            continue;
        }
        if s > 0 && chars[s - 1] == '.' {
            continue;
        }
        if matches!(chars.get(s + 2), Some(&'=') | Some(&'.')) {
            continue;
        }
        return Some(s);
    }
    None
}

/// Rewrite `for x in <range> {` as `for x in (<range>).rev() {`,
/// line-preserving. Only fires on range expressions (`..` present) that
/// are not already reversed.
fn reverse_range(raw: &str, code: &str) -> Option<String> {
    if code.contains(".rev()") {
        return None;
    }
    let in_pos = passes::site_starts(code, "in").into_iter().find(|&s| {
        let chars: Vec<char> = code.chars().collect();
        chars.get(s + 2) == Some(&' ') && s > 0 && chars[s - 1] == ' '
    })?;
    let chars: Vec<char> = raw.chars().collect();
    // The range spans from after `in ` to before the trailing ` {`.
    let code_chars: Vec<char> = code.chars().collect();
    let mut open = code_chars.len();
    for i in (0..code_chars.len()).rev() {
        if code_chars[i] == '{' {
            open = i;
            break;
        }
    }
    if open == code_chars.len() {
        return None;
    }
    let expr_start = in_pos + 3;
    let mut expr_end = open;
    while expr_end > expr_start && code_chars[expr_end - 1] == ' ' {
        expr_end -= 1;
    }
    if expr_end <= expr_start {
        return None;
    }
    let range_text: String = chars.get(expr_start..expr_end)?.iter().collect();
    if !range_text.contains("..") {
        return None;
    }
    let mut out: String = chars[..expr_start].iter().collect();
    out.push('(');
    out.push_str(&range_text);
    out.push_str(").rev()");
    out.extend(chars[expr_end..].iter());
    Some(out)
}

/// `ordering-weaken`: every `Ordering::{Acquire,Release,AcqRel,SeqCst}`
/// site whose §16 row does *not* already allow `Relaxed` for that
/// access class becomes a Relaxed-weakening mutant. Contract-permitted
/// weak sites and allow-marked sites are skipped — weakening them is
/// not a fault, so no oracle should fire.
fn ordering_mutants(ws: &Workspace, fi: usize, out: &mut Vec<Mutant>) {
    let f = &ws.files[fi];
    let Some(contract) = ws.contracts.atomics.as_ref() else {
        return;
    };
    for (line, code) in f.scan.code_lines.iter().enumerate() {
        if f.in_test_span(line) {
            continue;
        }
        for (col, variant) in passes::ordering_tokens(code) {
            if variant == "Relaxed" {
                continue;
            }
            let Some((recv, op, class)) = passes::atomic_op_at(f, line, col) else {
                continue;
            };
            let Some(entry) = contract.entry(&recv, &f.rel_path) else {
                continue;
            };
            let relaxed = |orderings: &[String]| orderings.iter().any(|o| o == "Relaxed");
            let permitted = match class {
                passes::OpClass::Load => relaxed(&entry.loads),
                passes::OpClass::Store => relaxed(&entry.stores),
                passes::OpClass::Rmw => relaxed(&entry.loads) && relaxed(&entry.stores),
            };
            if permitted || f.allow_marker("atomicorder", line) {
                continue;
            }
            let needle = format!("Ordering::{variant}");
            let Some(patched) = splice(
                &f.scan.raw_lines[line],
                col,
                needle.chars().count(),
                "Ordering::Relaxed",
                &needle,
            ) else {
                continue;
            };
            out.push(Mutant {
                class: "ordering-weaken",
                file: fi,
                rel_path: f.rel_path.clone(),
                line,
                col,
                fn_name: enclosing_fn(&ws.parsed[fi], line).map(|x| x.name.clone()),
                description: format!("weaken `{recv}.{op}` from `{variant}` to `Relaxed`"),
                patched,
            });
        }
    }
}

/// `lock-delete`: remove a `.lock()` acquisition whose receiver the
/// DESIGN.md §13 lock-order table declares. The facade's own pool locks
/// are invisible to the static lock passes (the facade is their
/// implementation), so those mutants fall to the model checker's
/// lock-elision attempt — which is exactly the division of labor §17
/// documents.
fn lock_mutants(ws: &Workspace, fi: usize, out: &mut Vec<Mutant>) {
    let f = &ws.files[fi];
    let Some(order) = ws.contracts.lock_order.as_ref() else {
        return;
    };
    for (line, code) in f.scan.code_lines.iter().enumerate() {
        if f.in_test_span(line) {
            continue;
        }
        let chars: Vec<char> = code.chars().collect();
        for col in find_all(code, ".lock()") {
            let mut b = col;
            while b > 0 && (chars[b - 1].is_ascii_alphanumeric() || chars[b - 1] == '_') {
                b -= 1;
            }
            if b == col {
                continue;
            }
            let recv: String = chars[b..col].iter().collect();
            if !order.contains(&recv) {
                continue;
            }
            let Some(patched) = splice(&f.scan.raw_lines[line], col, 7, "", ".lock()") else {
                continue;
            };
            out.push(Mutant {
                class: "lock-delete",
                file: fi,
                rel_path: f.rel_path.clone(),
                line,
                col,
                fn_name: enclosing_fn(&ws.parsed[fi], line).map(|x| x.name.clone()),
                description: format!("delete `.lock()` on declared lock `{recv}`"),
                patched,
            });
        }
    }
}

/// `band-shift`: move a `split_at_mut` band boundary by one element,
/// breaking the §15 disjoint-banding alignment the parallel kernels'
/// bit-identity rests on.
fn band_mutants(ws: &Workspace, fi: usize, out: &mut Vec<Mutant>) {
    let f = &ws.files[fi];
    for func in &ws.parsed[fi].fns {
        let Some((b0, b1)) = func.body else { continue };
        if f.in_test_span(func.line) {
            continue;
        }
        for line in b0..=b1.min(f.scan.code_lines.len().saturating_sub(1)) {
            if f.in_test_span(line) {
                continue;
            }
            let code = &f.scan.code_lines[line];
            let chars: Vec<char> = code.chars().collect();
            for col in find_all(code, "split_at_mut(") {
                let open = col + "split_at_mut(".chars().count() - 1;
                let mut depth = 0i32;
                let mut close = None;
                for (i, &c) in chars.iter().enumerate().skip(open) {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                close = Some(i);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let Some(close) = close else { continue };
                if close == open + 1 {
                    continue;
                }
                let Some(patched) = splice(&f.scan.raw_lines[line], close, 1, " + 1)", ")") else {
                    continue;
                };
                out.push(Mutant {
                    class: "band-shift",
                    file: fi,
                    rel_path: f.rel_path.clone(),
                    line,
                    col,
                    fn_name: Some(func.name.clone()),
                    description: format!(
                        "shift `split_at_mut` band boundary by one in `{}`",
                        func.name
                    ),
                    patched,
                });
            }
        }
    }
}

/// `match-arm-delete`: retarget a driver match arm off its protocol
/// variant, leaving that variant unhandled — the totality fault the
/// `protocol` pass exists to catch.
fn arm_mutants(ws: &Workspace, fi: usize, out: &mut Vec<Mutant>) {
    let f = &ws.files[fi];
    if f.rel_path != DRIVER_FILE {
        return;
    }
    let Some(table) = ws.contracts.protocol.as_ref() else {
        return;
    };
    for entry in table {
        let needle = format!("{}::{}", entry.enum_name, entry.variant);
        for (line, code) in f.scan.code_lines.iter().enumerate() {
            if f.in_test_span(line) {
                continue;
            }
            for col in find_all(code, &needle) {
                let end = col + needle.chars().count();
                let boundary =
                    code.chars().nth(end).is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
                let is_arm = boundary && code.chars().skip(end).collect::<String>().contains("=>");
                if !is_arm {
                    continue;
                }
                let with = format!("{}::DeletedArm", entry.enum_name);
                let Some(patched) =
                    splice(&f.scan.raw_lines[line], col, needle.chars().count(), &with, &needle)
                else {
                    continue;
                };
                out.push(Mutant {
                    class: "match-arm-delete",
                    file: fi,
                    rel_path: f.rel_path.clone(),
                    line,
                    col,
                    fn_name: enclosing_fn(&ws.parsed[fi], line).map(|x| x.name.clone()),
                    description: format!("delete driver match arm for `{needle}`"),
                    patched,
                });
            }
        }
    }
}

/// The set of (file, fn index) nodes reachable from any test function
/// through the conservative workspace call graph — the static
/// prediction behind `killed-by-test`: a targeted tier-1 subset (every
/// test that transitively calls the mutated fn) would exercise the
/// mutated code. Deterministic classes whose enclosing fn is in this
/// set are predicted test-killed; concurrency classes never are (a
/// deterministic test cannot reliably observe a race).
pub fn test_reachable(ws: &Workspace) -> BTreeSet<(usize, usize)> {
    let files: Vec<(String, &ParsedFile)> = ws
        .files
        .iter()
        .enumerate()
        .map(|(fi, _)| (ws.crate_key(fi).to_owned(), &ws.parsed[fi]))
        .collect();
    let include = |_file: usize, _idx: usize| true;
    let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in &ws.crates.crates {
        visible.insert(m.name.clone(), ws.crates.closure(&m.name));
    }
    let graph = CallGraph::build(&files, &include, &visible);
    let is_test = |file: usize, line: usize| {
        ws.files[file].role == Role::Test || ws.files[file].in_test_span(line)
    };
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        let fn_line = ws.parsed[n.file].fns[n.idx].line;
        if is_test(n.file, fn_line) && reached.insert(i) {
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &(j, _) in &graph.callees[i] {
            if reached.insert(j) {
                queue.push_back(j);
            }
        }
    }
    reached.into_iter().map(|i| (graph.nodes[i].file, graph.nodes[i].idx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Contracts, CrateGraph};
    use crate::source::SourceFile;

    fn ws_of(files: Vec<SourceFile>, contracts: Contracts) -> Workspace {
        Workspace::new(files, CrateGraph::default(), contracts, None)
    }

    fn lib(crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(&format!("crates/{crate_name}/src/a.rs"), Some(crate_name), Role::Lib, src)
    }

    #[test]
    fn arith_and_cmp_sites_enumerate_inside_bodies_only() {
        let ws = ws_of(
            vec![lib(
                "fcma-linalg",
                "pub fn f(a: f32, b: f32) -> f32 {\n    let c = a + b;\n    if c < 1.0 {\n        return c * 2.0;\n    }\n    c\n}\n\
                 #[cfg(test)]\nmod tests {\n    fn t() {\n        let x = 1 + 2;\n    }\n}\n",
            )],
            Contracts::default(),
        );
        let ms = enumerate(&ws);
        let arith: Vec<_> = ms.iter().filter(|m| m.class == "arith-swap").collect();
        let cmp: Vec<_> = ms.iter().filter(|m| m.class == "cmp-flip").collect();
        assert_eq!(arith.len(), 2, "a + b and c * 2.0: {arith:?}");
        assert_eq!(cmp.len(), 1, "c < 1.0: {cmp:?}");
        assert_eq!(arith[0].patched.trim(), "let c = a - b;");
        assert_eq!(cmp[0].patched.trim(), "if c <= 1.0 {");
        assert!(!ms.iter().any(|m| m.line >= 8), "cfg(test) code must not be mutated: {ms:?}");
    }

    #[test]
    fn trait_bounds_are_not_arith_sites() {
        let ws = ws_of(
            vec![lib("fcma-core", "pub fn f(g: Box<dyn Fn() + Send>) {\n    g();\n}\n")],
            Contracts::default(),
        );
        assert!(
            enumerate(&ws).iter().all(|m| m.class != "arith-swap"),
            "`Fn() + Send` is a bound, not arithmetic"
        );
    }

    #[test]
    fn off_by_one_widens_for_ranges() {
        let ws = ws_of(
            vec![lib(
                "fcma-linalg",
                "pub fn f(n: usize) -> usize {\n    let mut s = 0;\n    for i in 0..n {\n        s = s.wrapping_add(i);\n    }\n    s\n}\n",
            )],
            Contracts::default(),
        );
        let ms = enumerate(&ws);
        let off: Vec<_> = ms.iter().filter(|m| m.class == "off-by-one").collect();
        assert_eq!(off.len(), 1, "{ms:?}");
        assert_eq!(off[0].patched.trim(), "for i in 0..=n {");
    }

    #[test]
    fn accum_reorder_requires_carried_float() {
        let float_src = "pub fn f(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for i in 0..xs.len() {\n        acc += xs[i];\n    }\n    acc\n}\n";
        let int_src = "pub fn f(n: usize) -> usize {\n    let mut acc = 0;\n    for i in 0..n {\n        acc += i;\n    }\n    acc\n}\n";
        let ws = ws_of(vec![lib("fcma-linalg", float_src)], Contracts::default());
        let ms = enumerate(&ws);
        let rev: Vec<_> = ms.iter().filter(|m| m.class == "accum-reorder").collect();
        assert_eq!(rev.len(), 1, "{ms:?}");
        assert_eq!(rev[0].patched.trim(), "for i in (0..xs.len()).rev() {");
        let ws2 = ws_of(vec![lib("fcma-linalg", int_src)], Contracts::default());
        assert!(
            enumerate(&ws2).iter().all(|m| m.class != "accum-reorder"),
            "integer accumulation reversed is equivalent — no mutant"
        );
    }

    #[test]
    fn ordering_weaken_respects_contract_permitted_relaxed() {
        let md = "## 16. Atomics contracts\n\n\
                  | Atomic | File | Role | Loads | Stores | Pairing |\n|---|---|---|---|---|---|\n\
                  | `flag` | `fcma-core/src/a.rs` | latch | `Acquire` | `Release` | `flag` |\n\
                  | `soft` | `fcma-core/src/a.rs` | knob | `Relaxed` | `Relaxed`, `Release` | none |\n";
        let contracts = Contracts::from_design_md(md);
        let ws = ws_of(
            vec![lib(
                "fcma-core",
                "pub fn f(flag: &AtomicBool, soft: &AtomicBool) {\n    flag.store(true, Ordering::Release);\n    soft.store(true, Ordering::Release);\n    let _ = flag.load(Ordering::Acquire);\n}\n",
            )],
            contracts,
        );
        let ms = enumerate(&ws);
        let weaken: Vec<_> = ms.iter().filter(|m| m.class == "ordering-weaken").collect();
        assert_eq!(weaken.len(), 2, "flag store + flag load only: {weaken:?}");
        assert!(weaken.iter().all(|m| m.description.contains("`flag.")));
        assert!(weaken[0].patched.contains("Ordering::Relaxed"));
    }

    #[test]
    fn lock_delete_targets_declared_locks_only() {
        let md = "### Lock order\n\n\
                  | Rank | Lock | Protects |\n|---|---|---|\n\
                  | 1 | `shared` | data |\n";
        let contracts = Contracts::from_design_md(md);
        let ws = ws_of(
            vec![lib(
                "fcma-core",
                "pub fn f(s: &S) {\n    let g = s.shared.lock();\n    let h = s.other.lock();\n    drop((g, h));\n}\n",
            )],
            contracts,
        );
        let ms = enumerate(&ws);
        let locks: Vec<_> = ms.iter().filter(|m| m.class == "lock-delete").collect();
        assert_eq!(locks.len(), 1, "{locks:?}");
        assert_eq!(locks[0].patched.trim(), "let g = s.shared;");
    }

    #[test]
    fn band_shift_patches_the_boundary_expression() {
        let ws = ws_of(
            vec![lib(
                "fcma-linalg",
                "pub fn f(xs: &mut [f32], mid: usize) {\n    let (a, b) = xs.split_at_mut(mid.min(4));\n    a[0] = b[0];\n}\n",
            )],
            Contracts::default(),
        );
        let ms = enumerate(&ws);
        let bands: Vec<_> = ms.iter().filter(|m| m.class == "band-shift").collect();
        assert_eq!(bands.len(), 1, "{ms:?}");
        assert_eq!(bands[0].patched.trim(), "let (a, b) = xs.split_at_mut(mid.min(4) + 1);");
    }

    #[test]
    fn exempt_crates_and_non_lib_roles_are_not_mutated() {
        let mut test_file = lib("fcma-linalg", "pub fn f(a: f32, b: f32) -> f32 {\n    a + b\n}\n");
        test_file.role = Role::Test;
        let ws = ws_of(
            vec![lib("fcma-audit", "pub fn f(a: f32, b: f32) -> f32 {\n    a + b\n}\n"), test_file],
            Contracts::default(),
        );
        assert!(enumerate(&ws).is_empty());
    }

    #[test]
    fn test_reachability_walks_the_call_graph() {
        let lib_f = lib(
            "fcma-linalg",
            "pub fn covered() -> f32 {\n    helper()\n}\nfn helper() -> f32 {\n    1.0\n}\npub fn orphan() -> f32 {\n    2.0\n}\n",
        );
        let tst = SourceFile::new(
            "crates/fcma-linalg/tests/t.rs",
            Some("fcma-linalg"),
            Role::Test,
            "#[test]\nfn t() {\n    covered();\n}\n",
        );
        let ws = ws_of(vec![lib_f, tst], Contracts::default());
        let reach = test_reachable(&ws);
        let names: Vec<&str> = reach
            .iter()
            .filter(|&&(f, _)| f == 0)
            .map(|&(f, i)| ws.parsed[f].fns[i].name.as_str())
            .collect();
        assert!(names.contains(&"covered"), "{names:?}");
        assert!(names.contains(&"helper"), "transitive: {names:?}");
        assert!(!names.contains(&"orphan"), "{names:?}");
    }
}
