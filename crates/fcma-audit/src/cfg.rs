//! Control-flow structure for a single function body.
//!
//! Built on the same token stream as [`crate::parser`], this module
//! recovers the two facts the hot-path passes need: the **loop forest**
//! (which lines sit inside which `for`/`while`/`loop`, how deeply, and
//! what the induction variables are) and a conservative **basic-block
//! graph** for the reaching-definitions engine in [`crate::dataflow`].
//!
//! The block graph is deliberately over-approximate: every non-loop
//! brace region (an `if` arm, a `match` arm, a closure body, a struct
//! literal) is treated as an *optional* region with a bypass edge
//! around it, so a definition inside a branch never kills one outside
//! it. Loops get a back edge from the body's end to its head and an
//! exit edge from the head, `break`/`continue` edges target the
//! matching (possibly labeled) loop, and `return` ends its block
//! without successors. That is exactly as much precision as the
//! `accumorder` pass needs — "does a float definition from *outside*
//! this loop reach this `+=` site?" — while staying robust to every
//! token shape the tolerant parser accepts.

use crate::lexer::Scanned;
use crate::parser::{tokenize, Tok};

/// Which looping construct introduced a [`LoopInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for <pat> in <iter> { ... }`
    For,
    /// `while <cond> { ... }` (including `while let`)
    While,
    /// `loop { ... }`
    Loop,
}

/// One loop in the function's loop forest.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The construct that opened the loop.
    pub kind: LoopKind,
    /// Label, if the loop was written as `'name: for ...`.
    pub label: Option<String>,
    /// 0-based line of the `for`/`while`/`loop` keyword.
    pub head_line: usize,
    /// 0-based inclusive line span of the braced body (open `{` line to
    /// close `}` line). The header line is included when it shares the
    /// open-brace line, which over-approximates "inside the loop" for
    /// iterator-expression code on the header — acceptable for passes
    /// that only ever *flag* loop-resident work.
    pub body: (usize, usize),
    /// Nesting depth: 1 for an outermost loop of the function.
    pub depth: usize,
    /// Whether another loop nests anywhere inside this one.
    pub has_inner: bool,
    /// For `for` loops: the identifiers bound by the loop pattern
    /// (e.g. `i`, or `a`/`b` for `for (a, b) in ...`). Empty for
    /// `while`/`loop`.
    pub induction: Vec<String>,
}

/// One conservative basic block.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// 0-based first line a token of this block appeared on.
    pub first_line: usize,
    /// 0-based last line a token of this block appeared on.
    pub last_line: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Number of loops open when the block started.
    pub loop_depth: usize,
}

/// Loop forest plus block graph for one function body.
#[derive(Debug, Clone, Default)]
pub struct FnCfg {
    /// Blocks in creation (roughly source) order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Loops in source order of their opening keyword.
    pub loops: Vec<LoopInfo>,
}

impl FnCfg {
    /// Build the CFG for the function whose body spans `body`
    /// (0-based inclusive line numbers of the opening and closing
    /// braces, as recorded by [`crate::parser::FnItem::body`]).
    pub fn build(scan: &Scanned, body: (usize, usize)) -> FnCfg {
        let toks = tokenize(scan);
        Builder::new(&toks, body).run()
    }

    /// How many loops contain `line` (0 = not inside any loop).
    pub fn loop_depth_at(&self, line: usize) -> usize {
        self.loops.iter().filter(|l| l.body.0 <= line && line <= l.body.1).count()
    }

    /// The deepest loop whose body contains `line`.
    pub fn innermost_loop_at(&self, line: usize) -> Option<&LoopInfo> {
        self.loops.iter().filter(|l| l.body.0 <= line && line <= l.body.1).max_by_key(|l| l.depth)
    }

    /// Index of the block whose line span best matches `line`: among
    /// blocks containing the line, the one opened last. Falls back to
    /// the entry block.
    pub fn block_at(&self, line: usize) -> usize {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.first_line <= line && line <= b.last_line)
            .map(|(i, _)| i)
            .next_back()
            .unwrap_or(0)
    }
}

/// Stack frame for one open brace region.
enum Frame {
    /// A loop body: remembers its `loops` index, head block, and any
    /// `break` blocks waiting for the loop's exit block.
    Loop { loop_idx: usize, head_block: usize, breaks: Vec<usize> },
    /// Any other brace region (branch arm, closure, struct literal):
    /// remembers the predecessor block for the bypass edge.
    Plain { pred: usize },
}

/// A `for`/`while`/`loop` keyword seen, body brace not yet reached.
struct Pending {
    kind: LoopKind,
    label: Option<String>,
    head_line: usize,
    /// Paren/bracket depth inside the loop header.
    depth: i32,
    /// For `for` loops: have we passed the top-level `in` yet?
    seen_in: bool,
    induction: Vec<String>,
}

struct Builder<'a> {
    toks: &'a [(Tok, usize)],
    body: (usize, usize),
    blocks: Vec<BasicBlock>,
    loops: Vec<LoopInfo>,
    frames: Vec<Frame>,
    cur: usize,
    pending: Option<Pending>,
}

impl<'a> Builder<'a> {
    fn new(toks: &'a [(Tok, usize)], body: (usize, usize)) -> Builder<'a> {
        Builder {
            toks,
            body,
            blocks: Vec::new(),
            loops: Vec::new(),
            frames: Vec::new(),
            cur: 0,
            pending: None,
        }
    }

    fn open_loops(&self) -> usize {
        self.frames.iter().filter(|f| matches!(f, Frame::Loop { .. })).count()
    }

    fn new_block(&mut self, line: usize) -> usize {
        let depth = self.open_loops();
        self.blocks.push(BasicBlock {
            first_line: line,
            last_line: line,
            succs: Vec::new(),
            loop_depth: depth,
        });
        self.blocks.len() - 1
    }

    fn link(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn touch(&mut self, line: usize) {
        let b = &mut self.blocks[self.cur];
        b.last_line = b.last_line.max(line);
    }

    fn run(mut self) -> FnCfg {
        // Find the opening brace of the body: the first `{` at or after
        // the body's first line (header tokens on earlier lines belong
        // to the signature).
        let Some(start) =
            self.toks.iter().position(|(t, l)| *l >= self.body.0 && matches!(t, Tok::P('{')))
        else {
            return FnCfg::default();
        };
        self.cur = self.new_block(self.toks[start].1);
        let mut depth = 1i32;
        let mut i = start + 1;
        while i < self.toks.len() && depth > 0 {
            let (tok, line) = &self.toks[i];
            let line = *line;
            self.touch(line);
            if let Some(p) = self.pending.as_mut() {
                match tok {
                    Tok::P('(') | Tok::P('[') => p.depth += 1,
                    Tok::P(')') | Tok::P(']') => p.depth -= 1,
                    Tok::P('{') if p.depth == 0 => {
                        depth += 1;
                        self.open_loop(line);
                        i += 1;
                        continue;
                    }
                    Tok::P(';') if p.depth == 0 => {
                        // Malformed header (macro soup); give up on it.
                        self.pending = None;
                    }
                    Tok::Ident(w) if p.kind == LoopKind::For && !p.seen_in => {
                        if w == "in" && p.depth == 0 {
                            p.seen_in = true;
                        } else if w != "mut" && w != "ref" && w != "_" {
                            p.induction.push(w.clone());
                        }
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            match tok {
                Tok::Ident(w) if w == "for" || w == "while" || w == "loop" => {
                    let kind = match w.as_str() {
                        "for" => LoopKind::For,
                        "while" => LoopKind::While,
                        _ => LoopKind::Loop,
                    };
                    // A label reads `'name : for` — three tokens back.
                    let label = if i >= 3 {
                        match (&self.toks[i - 3].0, &self.toks[i - 2].0, &self.toks[i - 1].0) {
                            (Tok::P('\''), Tok::Ident(l), Tok::P(':')) => Some(l.clone()),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if kind == LoopKind::Loop {
                        // `loop` has no header: its `{` follows directly.
                        self.pending = Some(Pending {
                            kind,
                            label,
                            head_line: line,
                            depth: 0,
                            seen_in: true,
                            induction: Vec::new(),
                        });
                    } else {
                        self.pending = Some(Pending {
                            kind,
                            label,
                            head_line: line,
                            depth: 0,
                            seen_in: false,
                            induction: Vec::new(),
                        });
                    }
                }
                Tok::Ident(w) if w == "break" => self.on_break(i, line),
                Tok::Ident(w) if w == "continue" => self.on_continue(i, line),
                Tok::Ident(w) if w == "return" => {
                    // End the block with no successors; code after is a
                    // fresh (possibly unreachable) block.
                    self.cur = self.new_block(line);
                }
                Tok::P('{') => {
                    depth += 1;
                    let pred = self.cur;
                    let inner = self.new_block(line);
                    self.link(pred, inner);
                    self.frames.push(Frame::Plain { pred });
                    self.cur = inner;
                }
                Tok::P('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    match self.frames.pop() {
                        Some(Frame::Plain { pred }) => {
                            let after = self.new_block(line);
                            self.link(self.cur, after);
                            // Bypass edge: the region may not execute.
                            self.link(pred, after);
                            self.cur = after;
                        }
                        Some(Frame::Loop { loop_idx, head_block, breaks }) => {
                            self.loops[loop_idx].body.1 = line;
                            // Back edge, then the loop's exit block.
                            self.link(self.cur, head_block);
                            let after = self.new_block(line);
                            self.link(head_block, after);
                            for b in breaks {
                                self.link(b, after);
                            }
                            self.cur = after;
                        }
                        None => {}
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Close any loops left open by malformed input.
        let last_line = self.body.1;
        while let Some(frame) = self.frames.pop() {
            if let Frame::Loop { loop_idx, .. } = frame {
                if self.loops[loop_idx].body.1 == usize::MAX {
                    self.loops[loop_idx].body.1 = last_line;
                }
            }
        }
        FnCfg { blocks: self.blocks, loops: self.loops }
    }

    fn open_loop(&mut self, brace_line: usize) {
        let p = self.pending.take().expect("open_loop only with a pending loop");
        let depth = self.open_loops() + 1;
        // Any enclosing loop now has an inner loop.
        for f in &self.frames {
            if let Frame::Loop { loop_idx, .. } = f {
                self.loops[*loop_idx].has_inner = true;
            }
        }
        self.loops.push(LoopInfo {
            kind: p.kind,
            label: p.label,
            head_line: p.head_line,
            body: (brace_line, usize::MAX),
            depth,
            has_inner: false,
            induction: p.induction,
        });
        let loop_idx = self.loops.len() - 1;
        let pred = self.cur;
        let head = self.new_block(p.head_line.min(brace_line));
        // The frame is pushed below, so count this block as inside.
        self.blocks[head].loop_depth = depth;
        self.link(pred, head);
        self.frames.push(Frame::Loop { loop_idx, head_block: head, breaks: Vec::new() });
        self.cur = head;
    }

    /// Frame-stack index of the loop a `break`/`continue` at token `i`
    /// targets: the labeled loop if `'label` follows, else the innermost.
    fn target_loop(&self, i: usize) -> Option<usize> {
        let label = match (self.toks.get(i + 1), self.toks.get(i + 2)) {
            (Some((Tok::P('\''), _)), Some((Tok::Ident(l), _))) => Some(l.as_str()),
            _ => None,
        };
        self.frames.iter().rposition(|f| match f {
            Frame::Loop { loop_idx, .. } => match label {
                Some(l) => self.loops[*loop_idx].label.as_deref() == Some(l),
                None => true,
            },
            Frame::Plain { .. } => false,
        })
    }

    fn on_break(&mut self, i: usize, line: usize) {
        if let Some(fi) = self.target_loop(i) {
            let cur = self.cur;
            if let Frame::Loop { breaks, .. } = &mut self.frames[fi] {
                breaks.push(cur);
            }
            self.cur = self.new_block(line);
        }
    }

    fn on_continue(&mut self, i: usize, line: usize) {
        if let Some(fi) = self.target_loop(i) {
            let head = match &self.frames[fi] {
                Frame::Loop { head_block, .. } => *head_block,
                Frame::Plain { .. } => unreachable!("target_loop only returns loops"),
            };
            let cur = self.cur;
            self.link(cur, head);
            self.cur = self.new_block(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse;

    /// Parse `src`, return the CFG of its sole top-level fn.
    fn cfg_of(src: &str) -> FnCfg {
        let scanned = scan(src);
        let parsed = parse(&scanned);
        let f = parsed.fns.first().expect("fixture has a fn");
        FnCfg::build(&scanned, f.body.expect("fixture fn has a body"))
    }

    #[test]
    fn simple_for_loop_depth_and_induction() {
        let cfg = cfg_of(
            "fn f(v: &[f32]) {\n    let mut s = 0.0;\n    for i in 0..v.len() {\n        s += 1.0;\n    }\n    let _ = s;\n}\n",
        );
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.kind, LoopKind::For);
        assert_eq!(l.induction, vec!["i".to_owned()]);
        assert_eq!(l.depth, 1);
        assert!(!l.has_inner);
        assert_eq!(cfg.loop_depth_at(1), 0, "pre-loop line");
        assert_eq!(cfg.loop_depth_at(3), 1, "loop body line");
        assert_eq!(cfg.loop_depth_at(5), 0, "post-loop line");
    }

    #[test]
    fn nested_loops_report_depth_and_has_inner() {
        let cfg = cfg_of(
            "fn f() {\n    for i in 0..4 {\n        while go() {\n            loop {\n                work(i);\n            }\n        }\n    }\n}\n",
        );
        assert_eq!(cfg.loops.len(), 3);
        assert_eq!(cfg.loops[0].depth, 1);
        assert_eq!(cfg.loops[1].depth, 2);
        assert_eq!(cfg.loops[2].depth, 3);
        assert!(cfg.loops[0].has_inner);
        assert!(cfg.loops[1].has_inner);
        assert!(!cfg.loops[2].has_inner);
        assert_eq!(cfg.loop_depth_at(4), 3);
        let inner = cfg.innermost_loop_at(4).expect("line 4 is in the loop");
        assert_eq!(inner.kind, LoopKind::Loop);
    }

    #[test]
    fn destructuring_for_pattern_binds_all_idents() {
        let cfg = cfg_of(
            "fn f(xs: &[(usize, f32)]) {\n    for (n, x) in xs.iter().enumerate() {\n        let _ = (n, x);\n    }\n}\n",
        );
        assert_eq!(cfg.loops[0].induction, vec!["n".to_owned(), "x".to_owned()]);
    }

    #[test]
    fn labeled_break_targets_outer_loop() {
        let cfg = cfg_of(
            "fn f() {\n    'outer: for i in 0..8 {\n        for j in 0..8 {\n            if i + j > 9 {\n                break 'outer;\n            }\n        }\n    }\n}\n",
        );
        assert_eq!(cfg.loops.len(), 2);
        assert_eq!(cfg.loops[0].label.as_deref(), Some("outer"));
        assert_eq!(cfg.loops[1].label, None);
        assert_eq!(cfg.loops[0].depth, 1);
        assert_eq!(cfg.loops[1].depth, 2);
        // The `break 'outer` line is inside both loop bodies.
        assert_eq!(cfg.loop_depth_at(4), 2);
        // The outer loop's exit block must be reachable from the break's
        // block: find a block ending on the break line with a successor
        // whose loop_depth is 0.
        let escaped = cfg.blocks.iter().any(|b| {
            b.first_line <= 4
                && 4 <= b.last_line
                && b.succs.iter().any(|&s| cfg.blocks[s].loop_depth == 0)
        });
        assert!(escaped, "labeled break must reach a depth-0 block: {:?}", cfg.blocks);
    }

    #[test]
    fn loop_with_match_and_break() {
        let cfg = cfg_of(
            "fn f(rx: Rx) {\n    loop {\n        match rx.recv() {\n            Ok(v) => {\n                handle(v);\n            }\n            Err(_) => {\n                break;\n            }\n        }\n    }\n    done();\n}\n",
        );
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].kind, LoopKind::Loop);
        assert_eq!(cfg.loops[0].body, (1, 10));
        assert_eq!(cfg.loop_depth_at(4), 1, "match arm body is inside the loop");
        assert_eq!(cfg.loop_depth_at(11), 0, "after the loop");
    }

    #[test]
    fn closure_bodies_are_transparent_for_loop_depth() {
        let cfg = cfg_of(
            "fn f(xs: &[f32]) {\n    let g = |v: &[f32]| {\n        for x in v {\n            use_it(x);\n        }\n    };\n    for y in xs {\n        g(&[*y]);\n    }\n}\n",
        );
        // Two loops total: one inside the closure, one in the fn body.
        assert_eq!(cfg.loops.len(), 2);
        assert_eq!(cfg.loops[0].depth, 1, "closure loop is not nested in an outer loop");
        assert_eq!(cfg.loops[1].depth, 1);
        assert_eq!(cfg.loop_depth_at(3), 1, "inside the closure's loop");
        assert_eq!(cfg.loop_depth_at(7), 1, "inside the fn-body loop");
        assert_eq!(cfg.loop_depth_at(5), 0, "between the loops");
    }

    #[test]
    fn while_let_parses_as_while() {
        let cfg = cfg_of(
            "fn f(mut it: It) {\n    while let Some(v) = it.next() {\n        sink(v);\n    }\n}\n",
        );
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].kind, LoopKind::While);
        assert!(cfg.loops[0].induction.is_empty());
    }

    #[test]
    fn loop_header_line_counts_as_inside() {
        // Documented over-approximation: code on the open-brace line is
        // treated as loop-resident.
        let cfg =
            cfg_of("fn f(n: usize) {\n    for p in (0..n).step_by(8) {\n        w(p);\n    }\n}\n");
        assert_eq!(cfg.loop_depth_at(1), 1);
    }

    #[test]
    fn blocks_form_a_graph_with_loop_back_edge() {
        let cfg =
            cfg_of("fn f() {\n    a();\n    for i in 0..2 {\n        b(i);\n    }\n    c();\n}\n");
        // Entry block must lead (transitively) to a depth-1 block and a
        // depth-1 block must have an edge back to the loop head.
        let head =
            cfg.blocks.iter().position(|b| b.loop_depth == 1).expect("loop head block exists");
        // With no inner braces the loop body IS the head block, so the
        // back edge shows up as a self-edge.
        let has_back_edge = cfg.blocks.iter().any(|b| b.loop_depth >= 1 && b.succs.contains(&head));
        assert!(has_back_edge, "loop body must loop back to its head: {:?}", cfg.blocks);
    }

    #[test]
    fn fn_without_body_yields_empty_cfg() {
        let scanned = scan("trait T {\n    fn sig(&self);\n}\n");
        let parsed = parse(&scanned);
        let f = parsed.fns.first().expect("trait method parsed");
        assert!(f.body.is_none());
    }
}
