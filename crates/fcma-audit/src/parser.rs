//! Token-tree parser: turns the lexer's scrubbed code view into a
//! per-file item model — functions (with owner type, visibility,
//! `# Panics` docs, call sites, and panic sources), type items (structs,
//! enums with their variants, traits), and cross-crate path references.
//!
//! This is deliberately not a full Rust grammar. It is a single linear
//! walk over a token stream with a context stack (module / impl / trait
//! / fn bodies), exact for the constructs the semantic passes need:
//! who defines what, who calls whom, and where a panic can start. String
//! and comment contents were already blanked by [`crate::lexer`], so no
//! literal can fake a token here.

use crate::lexer::Scanned;

/// Item visibility, as far as the passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the workspace-wide API surface.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    Scoped,
    /// No visibility keyword.
    Private,
}

/// Where a panic can start inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `panic!`, `unreachable!`, `todo!`, or `unimplemented!`.
    PanicMacro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `expr[…]` slice/array indexing (out-of-bounds panics).
    Index,
}

impl SourceKind {
    /// Human label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::PanicMacro => "panic-family macro",
            SourceKind::Unwrap => "`.unwrap()`",
            SourceKind::Expect => "`.expect()`",
            SourceKind::Index => "`[…]` indexing",
        }
    }
}

/// One panic source site.
#[derive(Debug, Clone, Copy)]
pub struct PanicSource {
    /// What kind of source.
    pub kind: SourceKind,
    /// 0-based line.
    pub line: usize,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called function or method name.
    pub name: String,
    /// `Some(Type)` for `Type::name(…)` qualified calls.
    pub owner: Option<String>,
    /// `true` for `.name(…)` method-syntax calls (receiver type unknown).
    pub method: bool,
    /// For method calls, the identifier directly left of the `.`
    /// (`attempts` in `self.attempts.lock()`); `None` when the receiver
    /// is a call result or other non-ident expression.
    pub recv: Option<String>,
    /// 0-based line.
    pub line: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` block's type name, if any.
    pub owner: Option<String>,
    /// Whether the enclosing impl is `impl Trait for Type`.
    pub trait_impl: bool,
    /// Declared inside a `trait { … }` body.
    pub in_trait: bool,
    /// Visibility.
    pub vis: Vis,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based inclusive body line span (`None` for bodyless decls).
    pub body: Option<(usize, usize)>,
    /// Whether the doc comment has a `# Panics` section.
    pub doc_panics: bool,
    /// Declared at file scope (not in a mod/impl/trait/fn).
    pub top_level: bool,
    /// Call sites in the body.
    pub calls: Vec<Call>,
    /// Panic sources in the body.
    pub sources: Vec<PanicSource>,
}

/// Kinds of type items tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
    /// Field names of a struct variant (`Done { worker, task, … }`).
    pub field_names: Vec<String>,
    /// Every identifier in the variant declaration (field names + types).
    pub idents: Vec<String>,
}

/// One `struct` / `enum` / `trait` item.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Which kind of item.
    pub kind: TypeKind,
    /// Type name.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 0-based declaration line.
    pub line: usize,
    /// Enum variants (empty for structs/traits).
    pub variants: Vec<Variant>,
}

/// The parsed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in declaration order.
    pub fns: Vec<FnItem>,
    /// Every `struct`/`enum`/`trait` item.
    pub types: Vec<TypeItem>,
    /// `fcma_*` crate path references: (crate ident, 0-based line).
    pub crate_refs: Vec<(String, usize)>,
}

/// Macros whose invocation is a panic source.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can be followed by `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "where", "fn", "pub", "use", "mod", "struct", "enum", "trait",
    "impl", "type", "const", "static", "crate", "super", "self", "Self", "dyn", "unsafe", "box",
    "true", "false", "await", "async", "yield",
];

/// One lexical token: an identifier or a punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    P(char),
}

/// Tokenize the scrubbed code view; returns (token, 0-based line) pairs.
pub(crate) fn tokenize(scan: &Scanned) -> Vec<(Tok, usize)> {
    let mut out = Vec::new();
    for (lineno, code) in scan.code_lines.iter().enumerate() {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_alphabetic() || c == '_' {
                let mut w = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    w.push(chars[i]);
                    i += 1;
                }
                out.push((Tok::Ident(w), lineno));
            } else if c.is_ascii_digit() {
                // Consume numeric literals (so `1f32` never yields `f32`).
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
            } else if c.is_whitespace() {
                i += 1;
            } else {
                out.push((Tok::P(c), lineno));
                i += 1;
            }
        }
    }
    out
}

/// What an opening `{` is about to introduce.
#[derive(Debug, Clone)]
enum Ctx {
    Mod,
    Impl { type_name: Option<String>, trait_impl: bool },
    Trait,
    Fn { fn_idx: usize },
    Block,
}

/// Parser state machine modes for item headers.
#[derive(Debug, Clone)]
enum Mode {
    Normal,
    /// Between `fn name` and its body `{` / terminating `;`.
    FnHeader {
        fn_idx: usize,
        parens: i32,
        brackets: i32,
    },
    /// Between `impl` and its body `{`.
    ImplHeader {
        angle: i32,
        type_name: Option<String>,
        trait_impl: bool,
    },
    /// Between `trait Name` and its `{`.
    TraitHeader,
}

struct Parser<'a> {
    toks: &'a [(Tok, usize)],
    i: usize,
    scan: &'a Scanned,
    out: ParsedFile,
    /// Context per open brace.
    stack: Vec<Ctx>,
    /// Indices into `out.fns` for every open fn body, innermost last.
    fn_stack: Vec<usize>,
    mode: Mode,
    pending_vis: Vis,
}

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.i + off).map(|(t, _)| t)
    }

    fn peek_line(&self, off: usize) -> usize {
        self.toks.get(self.i + off).map_or(0, |&(_, l)| l)
    }

    /// Innermost enclosing impl context, if the direct item parent is one.
    fn impl_ctx(&self) -> Option<(Option<String>, bool)> {
        match self.stack.last() {
            Some(Ctx::Impl { type_name, trait_impl }) => Some((type_name.clone(), *trait_impl)),
            _ => None,
        }
    }

    fn in_trait_body(&self) -> bool {
        matches!(self.stack.last(), Some(Ctx::Trait))
    }

    /// Does the doc comment block directly above 0-based `line` contain a
    /// `# Panics` section? Attribute lines and plain `//` comments
    /// between docs and item are skipped — rustc attaches doc comments
    /// across both, so the audit must too (this is what lets an
    /// `// audit: allow(...)` marker sit between the docs and the decl
    /// without severing the `# Panics` contract).
    fn doc_has_panics(&self, line: usize) -> bool {
        let mut l = line;
        while l > 0 {
            l -= 1;
            let t = self.scan.raw_lines[l].trim_start();
            if t.starts_with("#[") || t.starts_with("#![") {
                continue;
            }
            if let Some(rest) = t.strip_prefix("///") {
                if rest.trim().starts_with("# Panics") {
                    return true;
                }
                continue;
            }
            if t.starts_with("//") && !t.starts_with("//!") {
                continue;
            }
            return false;
        }
        false
    }

    fn take_vis(&mut self) -> Vis {
        std::mem::replace(&mut self.pending_vis, Vis::Private)
    }

    /// Skip a balanced token group starting at the opening delimiter at
    /// `self.i` (one of `(`/`[`/`{`); leaves `self.i` past the closer.
    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert_eq!(self.peek(0), Some(&Tok::P(open)));
        let mut depth = 0i32;
        while self.i < self.toks.len() {
            match &self.toks[self.i].0 {
                Tok::P(c) if *c == open => depth += 1,
                Tok::P(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Skip a generic parameter list `<…>` if one starts at `self.i`.
    fn skip_generics(&mut self) {
        if self.peek(0) != Some(&Tok::P('<')) {
            return;
        }
        let mut depth = 0i32;
        while self.i < self.toks.len() {
            match &self.toks[self.i].0 {
                Tok::P('<') => depth += 1,
                Tok::P('>') => {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Record a call or panic source in the innermost open fn, if any.
    fn in_fn(&mut self) -> Option<&mut FnItem> {
        let idx = *self.fn_stack.last()?;
        self.out.fns.get_mut(idx)
    }

    fn run(mut self) -> ParsedFile {
        while self.i < self.toks.len() {
            match &self.mode {
                Mode::Normal => self.step_normal(),
                Mode::FnHeader { .. } => self.step_fn_header(),
                Mode::ImplHeader { .. } => self.step_impl_header(),
                Mode::TraitHeader => self.step_trait_header(),
            }
        }
        self.out
    }

    fn step_fn_header(&mut self) {
        let Mode::FnHeader { fn_idx, mut parens, mut brackets } = self.mode.clone() else {
            return;
        };
        let (tok, line) = &self.toks[self.i];
        match tok {
            Tok::P('(') => parens += 1,
            Tok::P(')') => parens -= 1,
            Tok::P('[') => brackets += 1,
            Tok::P(']') => brackets -= 1,
            Tok::P('{') if parens == 0 && brackets == 0 => {
                self.out.fns[fn_idx].body = Some((*line, *line));
                self.stack.push(Ctx::Fn { fn_idx });
                self.fn_stack.push(fn_idx);
                self.mode = Mode::Normal;
                self.i += 1;
                return;
            }
            Tok::P(';') if parens == 0 && brackets == 0 => {
                self.mode = Mode::Normal;
                self.i += 1;
                return;
            }
            Tok::Ident(w) => self.note_crate_ref(w, *line),
            _ => {}
        }
        self.mode = Mode::FnHeader { fn_idx, parens, brackets };
        self.i += 1;
    }

    fn step_impl_header(&mut self) {
        let Mode::ImplHeader { mut angle, mut type_name, mut trait_impl } = self.mode.clone()
        else {
            return;
        };
        let (tok, line) = &self.toks[self.i];
        match tok {
            Tok::P('<') => angle += 1,
            Tok::P('>') => angle = (angle - 1).max(0), // `->` in `impl Fn() -> T`
            Tok::P('{') => {
                self.stack.push(Ctx::Impl { type_name, trait_impl });
                self.mode = Mode::Normal;
                self.i += 1;
                return;
            }
            Tok::Ident(w) if angle == 0 => {
                self.note_crate_ref(w, *line);
                if w == "for" {
                    trait_impl = true;
                    type_name = None;
                } else if type_name.is_none() && w != "dyn" {
                    type_name = Some(w.clone());
                }
            }
            Tok::Ident(w) => self.note_crate_ref(w, *line),
            _ => {}
        }
        self.mode = Mode::ImplHeader { angle, type_name, trait_impl };
        self.i += 1;
    }

    fn step_trait_header(&mut self) {
        match &self.toks[self.i].0 {
            Tok::P('{') => {
                self.stack.push(Ctx::Trait);
                self.mode = Mode::Normal;
            }
            Tok::P(';') => self.mode = Mode::Normal, // `trait Alias = …;`
            _ => {}
        }
        self.i += 1;
    }

    /// Record `fcma_*` crate references (`fcma_x::…` paths and
    /// `use fcma_x…`).
    fn note_crate_ref(&mut self, w: &str, line: usize) {
        if w.starts_with("fcma_") && self.peek(1) == Some(&Tok::P(':')) {
            self.out.crate_refs.push((w.to_owned(), line));
        }
    }

    fn step_normal(&mut self) {
        let (tok, line) = self.toks[self.i].clone();
        match tok {
            Tok::Ident(w) => {
                self.note_crate_ref(&w, line);
                match w.as_str() {
                    "pub" => {
                        self.i += 1;
                        if self.peek(0) == Some(&Tok::P('(')) {
                            self.skip_balanced('(', ')');
                            self.pending_vis = Vis::Scoped;
                        } else {
                            self.pending_vis = Vis::Pub;
                        }
                    }
                    "use" => {
                        self.pending_vis = Vis::Private;
                        // `use fcma_x;` has no `::`, so catch it here.
                        if let Some(Tok::Ident(n)) = self.peek(1) {
                            if n.starts_with("fcma_") {
                                self.out.crate_refs.push((n.clone(), self.peek_line(1)));
                            }
                        }
                        while self.i < self.toks.len() && self.toks[self.i].0 != Tok::P(';') {
                            self.i += 1;
                        }
                        self.i += 1;
                    }
                    "fn" => self.start_fn(line),
                    "struct" => self.start_struct(line),
                    "enum" => self.start_enum(line),
                    "trait" => self.start_trait(line),
                    "mod" => {
                        self.pending_vis = Vis::Private;
                        self.i += 1; // name, then `{` pushes Mod or `;` ends
                        if let Some(Tok::Ident(_)) = self.peek(0) {
                            self.i += 1;
                        }
                        if self.peek(0) == Some(&Tok::P('{')) {
                            self.stack.push(Ctx::Mod);
                            self.i += 1;
                        }
                    }
                    "impl" => {
                        self.pending_vis = Vis::Private;
                        self.mode =
                            Mode::ImplHeader { angle: 0, type_name: None, trait_impl: false };
                        self.i += 1;
                        self.skip_generics();
                    }
                    "macro_rules" => {
                        // `macro_rules! name { … }`: skip the body wholesale.
                        self.pending_vis = Vis::Private;
                        self.i += 1; // `!`
                        if self.peek(0) == Some(&Tok::P('!')) {
                            self.i += 1;
                        }
                        if let Some(Tok::Ident(_)) = self.peek(0) {
                            self.i += 1;
                        }
                        if self.peek(0) == Some(&Tok::P('{')) {
                            self.skip_balanced('{', '}');
                        }
                    }
                    "const" | "static" | "type" => {
                        self.pending_vis = Vis::Private;
                        self.i += 1;
                    }
                    _ => self.expression_ident(&w, line),
                }
            }
            Tok::P('{') => {
                self.stack.push(Ctx::Block);
                self.i += 1;
            }
            Tok::P('}') => {
                if let Some(Ctx::Fn { fn_idx }) = self.stack.pop() {
                    if let Some((start, _)) = self.out.fns[fn_idx].body {
                        self.out.fns[fn_idx].body = Some((start, line));
                    }
                    self.fn_stack.pop();
                }
                self.i += 1;
            }
            Tok::P('[') => {
                // Indexing: `[` directly after an expression tail.
                if self.fn_stack.last().is_some() && self.prev_is_expression_tail() {
                    let src = PanicSource { kind: SourceKind::Index, line };
                    if let Some(f) = self.in_fn() {
                        f.sources.push(src);
                    }
                }
                self.i += 1;
            }
            Tok::P(_) => self.i += 1,
        }
    }

    /// Is the token before `self.i` something an index expression can
    /// follow: a non-keyword identifier, `)`, or `]`?
    fn prev_is_expression_tail(&self) -> bool {
        let Some((tok, _)) = self.toks.get(self.i.wrapping_sub(1)) else {
            return false;
        };
        match tok {
            Tok::Ident(w) => !NON_CALL_KEYWORDS.contains(&w.as_str()),
            Tok::P(')') | Tok::P(']') => true,
            _ => false,
        }
    }

    /// Handle an ordinary identifier inside expressions: calls, method
    /// calls, and panic-macro sources.
    fn expression_ident(&mut self, w: &str, line: usize) {
        if self.fn_stack.is_empty() {
            self.i += 1;
            return;
        }
        let prev = if self.i > 0 { Some(&self.toks[self.i - 1].0) } else { None };
        let after_dot = prev == Some(&Tok::P('.'));
        // Qualifier: the identifier before a leading `::`.
        let qualifier = if self.i >= 2
            && prev == Some(&Tok::P(':'))
            && self.toks[self.i - 2].0 == Tok::P(':')
        {
            match self.toks.get(self.i.wrapping_sub(3)).map(|(t, _)| t) {
                Some(Tok::Ident(q)) => Some(q.clone()),
                _ => None,
            }
        } else {
            None
        };

        // Macro invocation?
        if self.peek(1) == Some(&Tok::P('!')) {
            if PANIC_MACROS.contains(&w) {
                let src = PanicSource { kind: SourceKind::PanicMacro, line };
                if let Some(f) = self.in_fn() {
                    f.sources.push(src);
                }
            }
            self.i += 2;
            return;
        }

        // Look past a turbofish: `ident::<…>(…)`.
        let mut call_off = 1usize;
        if self.peek(1) == Some(&Tok::P(':'))
            && self.peek(2) == Some(&Tok::P(':'))
            && self.peek(3) == Some(&Tok::P('<'))
        {
            let mut depth = 0i32;
            let mut j = self.i + 3;
            while j < self.toks.len() {
                match &self.toks[j].0 {
                    Tok::P('<') => depth += 1,
                    Tok::P('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            call_off = j + 1 - self.i;
        }

        if self.toks.get(self.i + call_off).map(|(t, _)| t) == Some(&Tok::P('(')) {
            if after_dot {
                let src_kind = match w {
                    "unwrap" => Some(SourceKind::Unwrap),
                    "expect" => Some(SourceKind::Expect),
                    _ => None,
                };
                let recv = match self.toks.get(self.i.wrapping_sub(2)).map(|(t, _)| t) {
                    Some(Tok::Ident(r)) => Some(r.clone()),
                    _ => None,
                };
                if let Some(kind) = src_kind {
                    if let Some(f) = self.in_fn() {
                        f.sources.push(PanicSource { kind, line });
                    }
                } else if let Some(f) = self.in_fn() {
                    f.calls.push(Call {
                        name: w.to_owned(),
                        owner: None,
                        method: true,
                        recv,
                        line,
                    });
                }
            } else if !NON_CALL_KEYWORDS.contains(&w) {
                // Free or qualified call. An uppercase qualifier is a type
                // (`Mat::zeros`, `Self::helper`); a lowercase one is a
                // module path.
                let owner = qualifier.filter(|q| q.chars().next().is_some_and(char::is_uppercase));
                let call = Call { name: w.to_owned(), owner, method: false, recv: None, line };
                if let Some(f) = self.in_fn() {
                    f.calls.push(call);
                }
            }
        }
        self.i += 1;
    }

    fn start_fn(&mut self, line: usize) {
        let vis = self.take_vis();
        self.i += 1;
        let name = match self.peek(0) {
            Some(Tok::Ident(n)) => n.clone(),
            _ => {
                return;
            }
        };
        self.i += 1;
        let (owner, trait_impl) = self.impl_ctx().unwrap_or((None, false));
        let item = FnItem {
            name,
            owner,
            trait_impl,
            in_trait: self.in_trait_body(),
            vis,
            line,
            body: None,
            doc_panics: self.doc_has_panics(line),
            top_level: self.stack.is_empty(),
            calls: Vec::new(),
            sources: Vec::new(),
        };
        self.out.fns.push(item);
        let fn_idx = self.out.fns.len() - 1;
        self.mode = Mode::FnHeader { fn_idx, parens: 0, brackets: 0 };
    }

    fn start_struct(&mut self, line: usize) {
        let vis = self.take_vis();
        self.i += 1;
        let Some(Tok::Ident(name)) = self.peek(0).cloned() else {
            return;
        };
        self.i += 1;
        self.out.types.push(TypeItem {
            kind: TypeKind::Struct,
            name,
            vis,
            line,
            variants: Vec::new(),
        });
        self.skip_generics();
        // Skip the body: `{…}`, `(…);`, or a bare `;`.
        loop {
            match self.peek(0) {
                Some(Tok::P('{')) => {
                    self.skip_balanced('{', '}');
                    return;
                }
                Some(Tok::P('(')) => self.skip_balanced('(', ')'),
                Some(Tok::P(';')) => {
                    self.i += 1;
                    return;
                }
                Some(_) => self.i += 1,
                None => return,
            }
        }
    }

    fn start_trait(&mut self, line: usize) {
        let vis = self.take_vis();
        self.i += 1;
        let Some(Tok::Ident(name)) = self.peek(0).cloned() else {
            return;
        };
        self.i += 1;
        self.out.types.push(TypeItem {
            kind: TypeKind::Trait,
            name,
            vis,
            line,
            variants: Vec::new(),
        });
        self.mode = Mode::TraitHeader;
    }

    fn start_enum(&mut self, line: usize) {
        let vis = self.take_vis();
        self.i += 1;
        let Some(Tok::Ident(name)) = self.peek(0).cloned() else {
            return;
        };
        self.i += 1;
        self.skip_generics();
        // Skip `where` clauses up to the body.
        while self.i < self.toks.len() && self.peek(0) != Some(&Tok::P('{')) {
            self.i += 1;
        }
        let body_start = self.i;
        if self.peek(0) == Some(&Tok::P('{')) {
            self.skip_balanced('{', '}');
        }
        let variants = parse_variants(&self.toks[body_start..self.i]);
        self.out.types.push(TypeItem { kind: TypeKind::Enum, name, vis, line, variants });
    }
}

/// Parse the variants out of an enum body token slice (`{ … }`
/// inclusive).
fn parse_variants(toks: &[(Tok, usize)]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].0 {
            Tok::P('{') | Tok::P('(') | Tok::P('[') => depth += 1,
            Tok::P('}') | Tok::P(')') | Tok::P(']') => depth -= 1,
            Tok::Ident(w) if depth == 1 => {
                // A variant name at body depth. Collect its payload.
                let mut v = Variant {
                    name: w.clone(),
                    line: toks[i].1,
                    field_names: Vec::new(),
                    idents: Vec::new(),
                };
                let mut j = i + 1;
                let mut payload_depth = 0i32;
                while j < toks.len() {
                    match &toks[j].0 {
                        Tok::P('{') | Tok::P('(') | Tok::P('[') | Tok::P('<') => {
                            payload_depth += 1;
                        }
                        Tok::P('}') | Tok::P(')') | Tok::P(']') | Tok::P('>') => {
                            if payload_depth == 0 {
                                break; // end of enum body
                            }
                            payload_depth -= 1;
                        }
                        Tok::P(',') if payload_depth == 0 => break,
                        Tok::Ident(id) => {
                            v.idents.push(id.clone());
                            // `name:` at struct-variant field depth.
                            if payload_depth == 1
                                && toks.get(j + 1).map(|(t, _)| t) == Some(&Tok::P(':'))
                                && toks.get(j + 2).map(|(t, _)| t) != Some(&Tok::P(':'))
                            {
                                v.field_names.push(id.clone());
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                variants.push(v);
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// Parse one scrubbed file into its item model.
pub fn parse(scan: &Scanned) -> ParsedFile {
    let toks = tokenize(scan);
    Parser {
        toks: &toks,
        i: 0,
        scan,
        out: ParsedFile::default(),
        stack: Vec::new(),
        fn_stack: Vec::new(),
        mode: Mode::Normal,
        pending_vis: Vis::Private,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parsed(src: &str) -> ParsedFile {
        parse(&scan(src))
    }

    #[test]
    fn free_fns_with_visibility_and_docs() {
        let p = parsed(
            "/// Frobs.\n///\n/// # Panics\n/// When sad.\npub fn frob() {}\n\
             pub(crate) fn scoped() {}\nfn private() {}\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "frob");
        assert_eq!(p.fns[0].vis, Vis::Pub);
        assert!(p.fns[0].doc_panics);
        assert!(p.fns[0].top_level);
        assert_eq!(p.fns[1].vis, Vis::Scoped);
        assert!(!p.fns[1].doc_panics);
        assert_eq!(p.fns[2].vis, Vis::Private);
    }

    #[test]
    fn panics_doc_survives_attrs_and_plain_comments_but_not_module_docs() {
        // rustc attaches doc comments to the next item across attributes
        // and plain `//` trivia — in particular an audit allow marker
        // between the docs and the decl must not sever the `# Panics`
        // contract.
        let p = parsed(
            "/// # Panics\n/// Always.\n#[inline]\n// audit: allow(deadpub) — kept\npub fn a() {}\n",
        );
        assert!(p.fns[0].doc_panics, "attrs + plain comment must not sever the doc");

        let q = parsed("/// # Panics\n//! stray module doc\npub fn b() {}\n");
        assert!(!q.fns[0].doc_panics, "`//!` is not trivia; the doc block is severed");
    }

    #[test]
    fn impl_methods_carry_owner_and_trait_flag() {
        let p = parsed(
            "struct Mat;\nimpl Mat {\n    pub fn zeros() {}\n}\n\
             impl std::fmt::Display for Mat {\n    fn fmt(&self) {}\n}\n\
             impl<'a, T: Clone> Wrapper<'a, T> {\n    fn tick(&self) {}\n}\n",
        );
        let zeros = p.fns.iter().find(|f| f.name == "zeros").unwrap();
        assert_eq!(zeros.owner.as_deref(), Some("Mat"));
        assert!(!zeros.trait_impl);
        assert!(!zeros.top_level);
        let fmt = p.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.owner.as_deref(), Some("Mat"));
        assert!(fmt.trait_impl);
        let tick = p.fns.iter().find(|f| f.name == "tick").unwrap();
        assert_eq!(tick.owner.as_deref(), Some("Wrapper"));
        assert!(!tick.trait_impl);
    }

    #[test]
    fn trait_decl_fns_are_marked() {
        let p = parsed("pub trait Exec {\n    fn run(&self);\n    fn helper(&self) {}\n}\n");
        assert_eq!(p.types.len(), 1);
        assert_eq!(p.types[0].kind, TypeKind::Trait);
        let run = p.fns.iter().find(|f| f.name == "run").unwrap();
        assert!(run.in_trait);
        assert!(run.body.is_none());
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_trait);
        assert!(helper.body.is_some());
    }

    #[test]
    fn calls_free_qualified_and_method() {
        let p = parsed(
            "fn f() {\n    helper();\n    Mat::zeros(3);\n    module::free_fn();\n    \
             x.normalize();\n    v.iter().collect::<Vec<_>>();\n}\n",
        );
        let f = &p.fns[0];
        let call = |n: &str| f.calls.iter().find(|c| c.name == n).unwrap();
        assert!(call("helper").owner.is_none() && !call("helper").method);
        assert_eq!(call("zeros").owner.as_deref(), Some("Mat"));
        assert!(call("free_fn").owner.is_none(), "module path is not a type owner");
        assert!(call("normalize").method);
        assert!(call("collect").method, "turbofish method call is still a call");
    }

    #[test]
    fn method_calls_record_their_receiver_ident() {
        let p = parsed(
            "fn f(s: &S) {\n    let _a = s.attempts.lock();\n    let _b = shared.lock();\n    \
             let _c = make().lock();\n    helper();\n}\n",
        );
        let f = &p.fns[0];
        let locks: Vec<Option<&str>> =
            f.calls.iter().filter(|c| c.name == "lock").map(|c| c.recv.as_deref()).collect();
        assert_eq!(locks, vec![Some("attempts"), Some("shared"), None]);
        let helper = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(helper.recv.is_none(), "free calls carry no receiver");
    }

    #[test]
    fn panic_sources_detected() {
        let p = parsed(
            "fn f(o: Option<u8>, v: &[u8], i: usize) -> u8 {\n    if i > 9 { panic!(\"no\"); }\n    \
             let a = v[i];\n    let b = o.unwrap();\n    let c = o.expect(\"set\");\n    \
             a + b + c\n}\n",
        );
        let kinds: Vec<SourceKind> = p.fns[0].sources.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SourceKind::PanicMacro, SourceKind::Index, SourceKind::Unwrap, SourceKind::Expect]
        );
    }

    #[test]
    fn indexing_is_not_confused_with_attrs_macros_or_types() {
        let p = parsed(
            "#[derive(Debug)]\nstruct S;\nfn f(n: usize) -> Vec<u8> {\n    let v = vec![0u8; n];\n    \
             let t: [u8; 2] = [1, 2];\n    let _ = t;\n    v\n}\n",
        );
        assert!(p.fns[0].sources.is_empty(), "{:?}", p.fns[0].sources);
        let q = parsed("fn g(v: &[u8]) -> u8 {\n    (v)[0] + v[1]\n}\n");
        assert_eq!(q.fns[0].sources.len(), 2);
    }

    #[test]
    fn unwrap_or_variants_are_calls_not_sources() {
        let p = parsed("fn f(o: Option<u8>) -> u8 {\n    o.unwrap_or(3)\n}\n");
        assert!(p.fns[0].sources.is_empty());
        assert!(p.fns[0].calls.iter().any(|c| c.name == "unwrap_or"));
    }

    #[test]
    fn assert_macros_are_not_panic_sources() {
        let p = parsed("fn f(a: u8) {\n    assert!(a > 0);\n    debug_assert_eq!(a, a);\n}\n");
        assert!(p.fns[0].sources.is_empty());
    }

    #[test]
    fn enum_variants_with_fields() {
        let p = parsed(
            "pub enum FromWorker {\n    Ready { worker: usize },\n    \
             Done { worker: usize, task: VoxelTask, scores: Vec<VoxelScore> },\n    \
             Task(VoxelTask),\n    Shutdown,\n}\n",
        );
        let e = &p.types[0];
        assert_eq!(e.kind, TypeKind::Enum);
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Ready", "Done", "Task", "Shutdown"]);
        let done = &e.variants[1];
        assert_eq!(done.field_names, vec!["worker", "task", "scores"]);
        assert!(done.idents.contains(&"VoxelScore".to_owned()));
        let task = &e.variants[2];
        assert!(task.field_names.is_empty());
        assert!(task.idents.contains(&"VoxelTask".to_owned()));
    }

    #[test]
    fn crate_refs_found_in_use_and_inline_paths() {
        let p = parsed(
            "use fcma_core::TaskContext;\nuse fcma_trace;\n\
             fn f() {\n    let _ = fcma_linalg::Mat::zeros(1, 1);\n}\n",
        );
        let crates: Vec<&str> = p.crate_refs.iter().map(|(c, _)| c.as_str()).collect();
        assert!(crates.contains(&"fcma_core"));
        assert!(crates.contains(&"fcma_trace"));
        assert!(crates.contains(&"fcma_linalg"));
    }

    #[test]
    fn fn_body_spans_and_nesting() {
        let p = parsed(
            "pub fn outer() {\n    inner();\n    fn inner() {\n        helper();\n    }\n}\n",
        );
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.body, Some((0, 5)));
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.calls.iter().any(|c| c.name == "helper"));
        assert!(!outer.calls.iter().any(|c| c.name == "helper"), "nested body not merged");
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let p = parsed(
            "macro_rules! m {\n    ($x:expr) => { $x.unwrap() };\n}\n\
             fn f() {\n    clean();\n}\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].sources.is_empty());
    }

    #[test]
    fn struct_bodies_do_not_leak_items() {
        let p = parsed(
            "pub struct Config {\n    pub retry: usize,\n    pub deadline: Option<Duration>,\n}\n\
             pub struct Tuple(pub usize);\nfn after() {}\n",
        );
        assert_eq!(p.types.len(), 2);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
        assert!(p.fns[0].top_level);
    }

    #[test]
    fn multiline_signatures_and_where_clauses() {
        let p = parsed(
            "pub fn long<T>(\n    a: usize,\n    b: [u8; 4],\n) -> Option<T>\nwhere\n    \
             T: Clone,\n{\n    None\n}\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "long");
        assert_eq!(p.fns[0].body, Some((6, 8)));
        assert!(p.fns[0].sources.is_empty(), "array type in signature is not indexing");
    }
}
