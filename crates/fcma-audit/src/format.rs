//! Violation rendering: the human `file:line: pass: message` format and
//! a line-delimited JSON format for CI and editor consumption. Both are
//! golden-tested so the shapes stay stable.

use crate::passes::Violation;

/// Output format for `fcma-audit check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: pass: message`, one per line.
    Human,
    /// One JSON object per line: `{"file":…,"line":…,"pass":…,"message":…}`.
    Json,
}

impl Format {
    /// Parse a `--format` argument value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "human" => Some(Format::Human),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// Render violations in the given format, one per line, with a trailing
/// newline when non-empty.
pub fn render(violations: &[Violation], format: Format) -> String {
    let mut out = String::new();
    for v in violations {
        match format {
            Format::Human => {
                out.push_str(&v.to_string());
            }
            Format::Json => {
                out.push_str(&format!(
                    "{{\"file\":{},\"line\":{},\"pass\":{},\"message\":{}}}",
                    json_str(&v.file),
                    v.line,
                    json_str(v.pass),
                    json_str(&v.message)
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Render per-pass statistics as a deterministic pretty-printed JSON
/// object (pass run order), for `fcma-audit stats` and the committed
/// `audit-baseline.json` that CI diffs against byte for byte.
pub fn render_stats(stats: &[(&'static str, usize, usize)]) -> String {
    let mut out = String::from("{\n");
    for (i, (pass, violations, allows)) in stats.iter().enumerate() {
        out.push_str(&format!(
            "  {}: {{\"violations\": {violations}, \"allows\": {allows}}}",
            json_str(pass)
        ));
        out.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Parse a stats document previously emitted by [`render_stats`] (the
/// committed `audit-baseline.json`). Accepts only that exact shape —
/// one `"pass": {"violations": N, "allows": M}` entry per line — and
/// returns `None` on anything else, so a hand-mangled baseline fails
/// loudly instead of comparing as empty.
pub fn parse_stats(json: &str) -> Option<Vec<(String, usize, usize)>> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let rest = line.strip_prefix('"')?;
        let (pass, rest) = rest.split_once('"')?;
        let body = rest.trim_start().strip_prefix(':')?.trim_start();
        let body = body.strip_prefix('{')?.strip_suffix('}')?;
        let (mut violations, mut allows) = (None, None);
        for field in body.split(',') {
            let (k, v) = field.split_once(':')?;
            let n: usize = v.trim().parse().ok()?;
            match k.trim().trim_matches('"') {
                "violations" => violations = Some(n),
                "allows" => allows = Some(n),
                _ => return None,
            }
        }
        out.push((pass.to_owned(), violations?, allows?));
    }
    Some(out)
}

/// Render the per-pass drift between a parsed baseline and the current
/// stats — the reviewable replacement for diffing two JSON blobs.
/// Passes whose counts match are omitted; identical stats render as the
/// empty string. Unchanged columns print a single number, changed ones
/// `old → new`, and passes present on only one side are labelled. Rows
/// are sorted lexicographically by pass name so the table is stable
/// across runs even when passes appear or disappear.
pub fn render_stats_delta(
    baseline: &[(String, usize, usize)],
    current: &[(&'static str, usize, usize)],
) -> String {
    let cell = |b: Option<usize>, c: Option<usize>| match (b, c) {
        (Some(b), Some(c)) if b == c => b.to_string(),
        (Some(b), Some(c)) => format!("{b} \u{2192} {c}"),
        (None, Some(c)) => format!("(new) {c}"),
        (Some(b), None) => format!("{b} (gone)"),
        (None, None) => String::new(),
    };
    let mut rows: Vec<[String; 3]> = Vec::new();
    for &(pass, v, a) in current {
        match baseline.iter().find(|(p, ..)| p == pass) {
            Some(&(_, bv, ba)) if bv == v && ba == a => {}
            Some(&(_, bv, ba)) => {
                rows.push([pass.to_owned(), cell(Some(bv), Some(v)), cell(Some(ba), Some(a))]);
            }
            None => rows.push([pass.to_owned(), cell(None, Some(v)), cell(None, Some(a))]),
        }
    }
    for (p, bv, ba) in baseline {
        if !current.iter().any(|(c, ..)| c == p) {
            rows.push([p.clone(), cell(Some(*bv), None), cell(Some(*ba), None)]);
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| a[0].cmp(&b[0]));
    let header = ["pass", "violations", "allows"];
    let width = |i: usize| {
        rows.iter().map(|r| r[i].chars().count()).chain([header[i].len()]).max().unwrap_or(0)
    };
    let (w0, w1, w2) = (width(0), width(1), width(2));
    let mut out = format!("{:<w0$}  {:>w1$}  {:>w2$}\n", header[0], header[1], header[2]);
    for r in &rows {
        out.push_str(&format!("{:<w0$}  {:>w1$}  {:>w2$}\n", r[0], r[1], r[2]));
    }
    out
}

/// Minimal JSON string escaping (std-only, like the fcma-trace exporter).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Violation> {
        vec![
            Violation {
                file: "crates/fcma-linalg/src/mat.rs".to_owned(),
                line: 27,
                pass: "panicpath",
                message: "pub fn `zeros` can panic (`panic!` at mat.rs:27)".to_owned(),
            },
            Violation {
                file: "DESIGN.md".to_owned(),
                line: 1,
                pass: "protocol",
                message: "table lists `FromWorker::Gone\u{2014}with \"quotes\"`".to_owned(),
            },
            Violation {
                file: "crates/fcma-cluster/src/driver.rs".to_owned(),
                line: 9,
                pass: "syncfacade",
                message: "`std::sync::Mutex` bypasses the fcma-sync facade".to_owned(),
            },
        ]
    }

    #[test]
    fn human_format_golden() {
        let got = render(&sample(), Format::Human);
        let want = "crates/fcma-linalg/src/mat.rs:27: panicpath: pub fn `zeros` can panic \
                    (`panic!` at mat.rs:27)\n\
                    DESIGN.md:1: protocol: table lists `FromWorker::Gone\u{2014}with \"quotes\"`\n\
                    crates/fcma-cluster/src/driver.rs:9: syncfacade: `std::sync::Mutex` \
                    bypasses the fcma-sync facade\n";
        assert_eq!(got, want);
    }

    #[test]
    fn json_format_golden() {
        let got = render(&sample(), Format::Json);
        let want =
            "{\"file\":\"crates/fcma-linalg/src/mat.rs\",\"line\":27,\"pass\":\"panicpath\",\
                    \"message\":\"pub fn `zeros` can panic (`panic!` at mat.rs:27)\"}\n\
                    {\"file\":\"DESIGN.md\",\"line\":1,\"pass\":\"protocol\",\
                    \"message\":\"table lists `FromWorker::Gone\u{2014}with \\\"quotes\\\"`\"}\n\
                    {\"file\":\"crates/fcma-cluster/src/driver.rs\",\"line\":9,\
                    \"pass\":\"syncfacade\",\"message\":\"`std::sync::Mutex` bypasses the \
                    fcma-sync facade\"}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn empty_renders_empty() {
        assert_eq!(render(&[], Format::Human), "");
        assert_eq!(render(&[], Format::Json), "");
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\nb\t\"c\"\\"), "\"a\\nb\\t\\\"c\\\"\\\\\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn stats_format_golden() {
        let got = render_stats(&[("unsafe", 0, 0), ("cast", 2, 5), ("unusedallow", 1, 0)]);
        let want = "{\n  \"unsafe\": {\"violations\": 0, \"allows\": 0},\n  \
                    \"cast\": {\"violations\": 2, \"allows\": 5},\n  \
                    \"unusedallow\": {\"violations\": 1, \"allows\": 0}\n}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn stats_parse_roundtrips_render() {
        let stats = vec![("unsafe", 0usize, 0usize), ("cast", 2, 5), ("unusedallow", 1, 0)];
        let parsed = parse_stats(&render_stats(&stats)).expect("own output parses");
        let want: Vec<(String, usize, usize)> =
            stats.iter().map(|&(p, v, a)| (p.to_owned(), v, a)).collect();
        assert_eq!(parsed, want);
        assert!(parse_stats("{\n  \"cast\": {\"violations\": x}\n}\n").is_none());
        assert!(parse_stats("not json").is_none());
    }

    #[test]
    fn stats_delta_golden() {
        let baseline = vec![
            ("unsafe".to_owned(), 0usize, 0usize),
            ("cast".to_owned(), 2, 5),
            ("gone".to_owned(), 1, 1),
        ];
        let current = [("unsafe", 0usize, 0usize), ("cast", 3, 5), ("threadescape", 0, 3)];
        let got = render_stats_delta(&baseline, &current);
        let want = "pass          violations    allows\n\
                    cast               2 \u{2192} 3         5\n\
                    gone            1 (gone)  1 (gone)\n\
                    threadescape     (new) 0   (new) 3\n";
        assert_eq!(got, want, "delta rows sort lexicographically by pass name");
    }

    #[test]
    fn stats_delta_empty_when_identical() {
        let baseline = vec![("unsafe".to_owned(), 0usize, 0usize), ("cast".to_owned(), 2, 5)];
        let current = [("unsafe", 0usize, 0usize), ("cast", 2, 5)];
        assert_eq!(render_stats_delta(&baseline, &current), "");
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("human"), Some(Format::Human));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("yaml"), None);
    }
}
