//! Violation rendering: the human `file:line: pass: message` format and
//! a line-delimited JSON format for CI and editor consumption. Both are
//! golden-tested so the shapes stay stable.

use crate::passes::Violation;

/// Output format for `fcma-audit check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: pass: message`, one per line.
    Human,
    /// One JSON object per line: `{"file":…,"line":…,"pass":…,"message":…}`.
    Json,
}

impl Format {
    /// Parse a `--format` argument value.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "human" => Some(Format::Human),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// Render violations in the given format, one per line, with a trailing
/// newline when non-empty.
pub fn render(violations: &[Violation], format: Format) -> String {
    let mut out = String::new();
    for v in violations {
        match format {
            Format::Human => {
                out.push_str(&v.to_string());
            }
            Format::Json => {
                out.push_str(&format!(
                    "{{\"file\":{},\"line\":{},\"pass\":{},\"message\":{}}}",
                    json_str(&v.file),
                    v.line,
                    json_str(v.pass),
                    json_str(&v.message)
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Render per-pass statistics as a deterministic pretty-printed JSON
/// object (pass run order), for `fcma-audit stats` and the committed
/// `audit-baseline.json` that CI diffs against byte for byte.
pub fn render_stats(stats: &[(&'static str, usize, usize)]) -> String {
    let mut out = String::from("{\n");
    for (i, (pass, violations, allows)) in stats.iter().enumerate() {
        out.push_str(&format!(
            "  {}: {{\"violations\": {violations}, \"allows\": {allows}}}",
            json_str(pass)
        ));
        out.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (std-only, like the fcma-trace exporter).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Violation> {
        vec![
            Violation {
                file: "crates/fcma-linalg/src/mat.rs".to_owned(),
                line: 27,
                pass: "panicpath",
                message: "pub fn `zeros` can panic (`panic!` at mat.rs:27)".to_owned(),
            },
            Violation {
                file: "DESIGN.md".to_owned(),
                line: 1,
                pass: "protocol",
                message: "table lists `FromWorker::Gone\u{2014}with \"quotes\"`".to_owned(),
            },
            Violation {
                file: "crates/fcma-cluster/src/driver.rs".to_owned(),
                line: 9,
                pass: "syncfacade",
                message: "`std::sync::Mutex` bypasses the fcma-sync facade".to_owned(),
            },
        ]
    }

    #[test]
    fn human_format_golden() {
        let got = render(&sample(), Format::Human);
        let want = "crates/fcma-linalg/src/mat.rs:27: panicpath: pub fn `zeros` can panic \
                    (`panic!` at mat.rs:27)\n\
                    DESIGN.md:1: protocol: table lists `FromWorker::Gone\u{2014}with \"quotes\"`\n\
                    crates/fcma-cluster/src/driver.rs:9: syncfacade: `std::sync::Mutex` \
                    bypasses the fcma-sync facade\n";
        assert_eq!(got, want);
    }

    #[test]
    fn json_format_golden() {
        let got = render(&sample(), Format::Json);
        let want =
            "{\"file\":\"crates/fcma-linalg/src/mat.rs\",\"line\":27,\"pass\":\"panicpath\",\
                    \"message\":\"pub fn `zeros` can panic (`panic!` at mat.rs:27)\"}\n\
                    {\"file\":\"DESIGN.md\",\"line\":1,\"pass\":\"protocol\",\
                    \"message\":\"table lists `FromWorker::Gone\u{2014}with \\\"quotes\\\"`\"}\n\
                    {\"file\":\"crates/fcma-cluster/src/driver.rs\",\"line\":9,\
                    \"pass\":\"syncfacade\",\"message\":\"`std::sync::Mutex` bypasses the \
                    fcma-sync facade\"}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn empty_renders_empty() {
        assert_eq!(render(&[], Format::Human), "");
        assert_eq!(render(&[], Format::Json), "");
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\nb\t\"c\"\\"), "\"a\\nb\\t\\\"c\\\"\\\\\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn stats_format_golden() {
        let got = render_stats(&[("unsafe", 0, 0), ("cast", 2, 5), ("unusedallow", 1, 0)]);
        let want = "{\n  \"unsafe\": {\"violations\": 0, \"allows\": 0},\n  \
                    \"cast\": {\"violations\": 2, \"allows\": 5},\n  \
                    \"unusedallow\": {\"violations\": 1, \"allows\": 0}\n}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("human"), Some(Format::Human));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("yaml"), None);
    }
}
