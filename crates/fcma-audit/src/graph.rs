//! Workspace-level graphs: the crate-dependency graph parsed from the
//! `Cargo.toml` manifests, the machine-readable architecture contracts
//! parsed from DESIGN.md §Architecture contracts, and the
//! intra-workspace call graph with transitive panic reachability.
//!
//! The manifest parser is a deliberately small TOML subset (sections and
//! `key = value` lines) — exactly what the workspace's own manifests
//! use. The call graph resolves names conservatively: a call edge is
//! added whenever a workspace function with a matching name is visible
//! from the caller's crate, which over-approximates real dispatch but
//! never misses a panic path through workspace code.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::Path;

use crate::parser::ParsedFile;

/// One declared `fcma-*` dependency edge in a manifest.
#[derive(Debug, Clone)]
pub struct ManifestDep {
    /// Dependency crate name (dash form, e.g. `fcma-linalg`).
    pub name: String,
    /// 0-based line in the manifest where the edge is declared.
    pub line: usize,
}

/// One crate manifest in the workspace.
#[derive(Debug, Clone)]
pub struct CrateManifest {
    /// Package name (dash form).
    pub name: String,
    /// Workspace-relative path of the `Cargo.toml`.
    pub rel_path: String,
    /// Declared `[dependencies]` on other `fcma-*` crates.
    pub deps: Vec<ManifestDep>,
}

/// The crate-dependency graph of the workspace.
#[derive(Debug, Clone, Default)]
pub struct CrateGraph {
    /// Every workspace package, root first.
    pub crates: Vec<CrateManifest>,
}

impl CrateGraph {
    /// Parse the root and `crates/*` manifests under `root`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading manifests or listing `crates/`.
    pub fn discover(root: &Path) -> io::Result<CrateGraph> {
        let mut crates = Vec::new();
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let text = std::fs::read_to_string(&root_manifest)?;
            if let Some(m) = parse_manifest("Cargo.toml", &text) {
                crates.push(m);
            }
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            entries.sort();
            for dir in entries {
                let manifest = dir.join("Cargo.toml");
                if !manifest.is_file() {
                    continue;
                }
                let text = std::fs::read_to_string(&manifest)?;
                let rel = format!(
                    "crates/{}/Cargo.toml",
                    dir.file_name().map(|n| n.to_string_lossy()).unwrap_or_default()
                );
                if let Some(m) = parse_manifest(&rel, &text) {
                    crates.push(m);
                }
            }
        }
        Ok(CrateGraph { crates })
    }

    /// Look up a crate by name (dash form).
    pub fn get(&self, name: &str) -> Option<&CrateManifest> {
        self.crates.iter().find(|c| c.name == name)
    }

    /// The transitive `fcma-*` dependency closure of `name` (not
    /// including `name` itself). Unknown crates yield an empty set.
    pub fn closure(&self, name: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(name.to_owned());
        while let Some(cur) = queue.pop_front() {
            if let Some(m) = self.get(&cur) {
                for d in &m.deps {
                    if seen.insert(d.name.clone()) {
                        queue.push_back(d.name.clone());
                    }
                }
            }
        }
        seen
    }
}

/// Parse one manifest: package name plus `[dependencies]` edges on
/// `fcma-*` crates. Returns `None` when there is no `[package]` section
/// (e.g. a virtual manifest).
fn parse_manifest(rel_path: &str, text: &str) -> Option<CrateManifest> {
    let mut section = String::new();
    let mut name: Option<String> = None;
    let mut deps = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_owned();
            continue;
        }
        let Some(eq) = line.find('=') else {
            continue;
        };
        let key = line[..eq].trim().trim_matches('"');
        // `fcma-x.workspace = true` keys a dotted path.
        let key = key.split('.').next().unwrap_or(key);
        if section == "package" && key == "name" {
            name = Some(line[eq + 1..].trim().trim_matches('"').to_owned());
        }
        if section == "dependencies" && key.starts_with("fcma-") {
            deps.push(ManifestDep { name: key.to_owned(), line: lineno });
        }
    }
    Some(CrateManifest { name: name?, rel_path: rel_path.to_owned(), deps })
}

/// One row of the DESIGN.md protocol table: an enum variant with its
/// required payload fields.
#[derive(Debug, Clone)]
pub struct ProtocolEntry {
    /// Enum name (`ToWorker` / `FromWorker`).
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// Field names the variant must carry (empty for unit/tuple rows
    /// declared `(none)`).
    pub fields: Vec<String>,
}

/// One row of the §16 "Atomics contracts" table: the memory orderings
/// every load/store/RMW site of one atomic in one file may use.
#[derive(Debug, Clone)]
pub struct AtomicEntry {
    /// Receiver ident at the access site (field, binding, or static).
    pub name: String,
    /// Workspace-relative path the sites live in (suffix-matched).
    pub file: String,
    /// Allowed load orderings; empty when the row declares `(none)`.
    pub loads: Vec<String>,
    /// Allowed store/RMW orderings; empty when the row declares `(none)`.
    pub stores: Vec<String>,
    /// Backticked pairing partners (the release→acquire edge this
    /// atomic participates in); empty for fully relaxed atomics.
    pub pairing: Vec<String>,
}

/// The declared seqlock protocol shape (§16 "Seqlock shape" table):
/// which functions implement the odd/even publish protocol over which
/// version/payload/cursor words.
#[derive(Debug, Clone)]
pub struct SeqlockDecl {
    /// Workspace-relative path of the implementation (suffix-matched).
    pub file: String,
    /// Writer function: odd version store, payload stores, even version
    /// store, cursor store — in that order.
    pub writer: String,
    /// Reader function: Acquire version load before *and* after the
    /// payload loads.
    pub reader: String,
    /// The per-slot version word receiver.
    pub version: String,
    /// The payload word receivers.
    pub payload: Vec<String>,
    /// The publish-cursor (ring head) receiver.
    pub cursor: String,
}

/// The §16 "Atomics contracts" section, machine-parsed: every
/// `Ordering::*` site in the workspace must trace to an [`AtomicEntry`],
/// and the seqlock implementation must match its declared shape.
#[derive(Debug, Clone, Default)]
pub struct AtomicsContract {
    /// One entry per (atomic, file) pair.
    pub entries: Vec<AtomicEntry>,
    /// The declared total count of `Ordering::*` sites, when the
    /// section carries a "sites:" line; the `atomicorder` pass verifies
    /// it against the actual count.
    pub declared_sites: Option<usize>,
    /// The declared seqlock shape, when the sub-table is present.
    pub seqlock: Option<SeqlockDecl>,
}

impl AtomicsContract {
    /// The entry covering receiver `name` in a file whose path ends
    /// with the entry's declared `file`.
    pub fn entry(&self, name: &str, rel_path: &str) -> Option<&AtomicEntry> {
        self.entries.iter().find(|e| e.name == name && rel_path.ends_with(&e.file))
    }
}

/// One row of the §17 "Mutation contracts" table: a mutant class with
/// its expected killers and the minimum kill score `fcma-mut --check`
/// enforces for it.
#[derive(Debug, Clone)]
pub struct MutationRow {
    /// 0-based DESIGN.md line of the row.
    pub line: usize,
    /// Mutant-class name (one of [`crate::mutants::MUTANT_CLASSES`]).
    pub class: String,
    /// Backticked killer names (`audit` pass names, `test`,
    /// `model-check`) — documentation plus the expected-killer hint the
    /// engine tries first.
    pub killers: Vec<String>,
    /// Minimum percentage of non-equivalent mutants that must be killed.
    pub min_score: u32,
}

/// A named defect in a machine-parsed DESIGN.md contract table. The
/// parser records these instead of silently skipping the row: a
/// malformed contract that parses as "no contract" would let the very
/// drift the tables exist to catch slip through unreported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// A §13 lock-order data row carries no backticked lock name.
    MalformedLockOrderRow {
        /// 0-based DESIGN.md line.
        line: usize,
    },
    /// A §16 atomics row allows an ordering that is not a
    /// `std::sync::atomic::Ordering` variant.
    UnknownOrdering {
        /// 0-based DESIGN.md line.
        line: usize,
        /// The unrecognized ordering token.
        ordering: String,
    },
    /// A §14 hot-functions row repeats a function already declared hot.
    DuplicateHotFn {
        /// 0-based DESIGN.md line.
        line: usize,
        /// The duplicated function name.
        name: String,
    },
    /// A §17 mutation row is missing its class or min-score cell, or
    /// the score is not a percentage.
    MalformedMutationRow {
        /// 0-based DESIGN.md line.
        line: usize,
    },
    /// A §17 mutation row names a class the engine does not implement.
    UnknownMutantClass {
        /// 0-based DESIGN.md line.
        line: usize,
        /// The unrecognized class name.
        class: String,
    },
    /// A §17 mutation row repeats a class already declared.
    DuplicateMutationRow {
        /// 0-based DESIGN.md line.
        line: usize,
        /// The duplicated class name.
        class: String,
    },
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::MalformedLockOrderRow { line } => {
                write!(f, "DESIGN.md:{}: lock-order row has no backticked lock name", line + 1)
            }
            ContractError::UnknownOrdering { line, ordering } => write!(
                f,
                "DESIGN.md:{}: atomics row allows unknown ordering `{ordering}` \
                 (known: Relaxed, Acquire, Release, AcqRel, SeqCst)",
                line + 1
            ),
            ContractError::DuplicateHotFn { line, name } => {
                write!(f, "DESIGN.md:{}: hot-functions row repeats `{name}`", line + 1)
            }
            ContractError::MalformedMutationRow { line } => write!(
                f,
                "DESIGN.md:{}: mutation row needs a backticked class and a numeric \
                 min-score percentage",
                line + 1
            ),
            ContractError::UnknownMutantClass { line, class } => write!(
                f,
                "DESIGN.md:{}: mutation row names unknown mutant class `{class}` \
                 (known: {})",
                line + 1,
                crate::mutants::MUTANT_CLASSES.join(", ")
            ),
            ContractError::DuplicateMutationRow { line, class } => {
                write!(f, "DESIGN.md:{}: mutation row repeats class `{class}`", line + 1)
            }
        }
    }
}

/// The `std::sync::atomic::Ordering` variants a §16 row may allow.
const KNOWN_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The machine-readable architecture contracts from DESIGN.md §12–§17.
#[derive(Debug, Clone, Default)]
pub struct Contracts {
    /// Allowed direct `fcma-*` dependencies per crate; `None` when the
    /// layering table is absent.
    pub layering: Option<BTreeMap<String, BTreeSet<String>>>,
    /// Protocol table entries; `None` when the table is absent.
    pub protocol: Option<Vec<ProtocolEntry>>,
    /// Declared lock-acquisition order from the §13 "Lock order" table:
    /// lock names in rank order (a thread holding a lock may only
    /// acquire locks of strictly higher rank). `None` when the table is
    /// absent.
    pub lock_order: Option<Vec<String>>,
    /// Functions declared hot by the §14 "Hot functions" table, as
    /// `name` or `Type::name` entries. `None` when the table is absent.
    /// The hot-path passes union these with `// audit: hot` markers.
    pub hot_fns: Option<Vec<String>>,
    /// The §16 "Atomics contracts" tables; `None` when absent.
    pub atomics: Option<AtomicsContract>,
    /// The §17 "Mutation contracts" table; `None` when absent.
    pub mutation: Option<Vec<MutationRow>>,
    /// Named parse defects. Non-empty errors fail the CLI (exit 2): a
    /// contract that cannot be parsed must not silently vanish.
    pub errors: Vec<ContractError>,
}

/// Extract backtick-quoted tokens from a markdown table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else {
            break;
        };
        let tok = &after[..close];
        if !tok.is_empty() {
            out.push(tok.to_owned());
        }
        rest = &after[close + 1..];
    }
    out
}

impl Contracts {
    /// Parse the `## 12. Architecture contracts` section of DESIGN.md,
    /// plus the §13 "Lock order" and §14 "Hot functions" tables.
    ///
    /// §12 table rows are classified by their first backticked token: a
    /// token containing `::` is a protocol row (`Enum::Variant`), a
    /// `fcma-*` token is a layering row. Header and separator rows have
    /// no backticked first cell and are skipped. The lock-order table is
    /// every table row between a heading containing "Lock order" and the
    /// next heading; each row's first backticked token is a lock name,
    /// ranked by row order. The hot-functions table works the same way
    /// under a heading containing "Hot functions": each row's first
    /// backticked cell names a hot function.
    ///
    /// §16 parses under two further headings: "Atomics contracts" rows
    /// are `| atomic | file | role | loads | stores | pairing |` with
    /// backticked orderings, plus an optional prose line containing
    /// `sites:` followed by the declared total site count; a "Seqlock
    /// shape" row is `| file | writer | reader | version | payload |
    /// cursor |`. §17 "Mutation contracts" rows are `| class | expected
    /// killers | min score |`.
    ///
    /// Malformed data rows are recorded as named [`ContractError`]s, not
    /// skipped: a §13 row with no backticked lock name, a §16 row
    /// allowing an unknown ordering, a duplicate §14 hot-fn entry, and
    /// the §17 analogues all surface in [`Contracts::errors`]. Header
    /// rows (the row directly above a `|---|` separator) and separator
    /// rows are structural and never validated.
    pub fn from_design_md(text: &str) -> Contracts {
        let mut in_section = false;
        let mut in_lock_order = false;
        let mut in_hot = false;
        let mut in_atomics = false;
        let mut in_seqlock = false;
        let mut in_mutation = false;
        let mut layering: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut protocol: Vec<ProtocolEntry> = Vec::new();
        let mut lock_order: Vec<String> = Vec::new();
        let mut hot_fns: Vec<String> = Vec::new();
        let mut atomics = AtomicsContract::default();
        let mut saw_atomics = false;
        let mut mutation: Vec<MutationRow> = Vec::new();
        let mut saw_mutation = false;
        let mut errors: Vec<ContractError> = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        let is_separator = |l: &str| {
            let t = l.trim();
            t.starts_with('|') && t.chars().all(|c| matches!(c, '|' | '-' | ':' | ' '))
        };
        for (lineno, &line) in lines.iter().enumerate() {
            if line.starts_with('#') {
                in_lock_order = line.contains("Lock order");
                in_hot = line.contains("Hot functions");
                in_atomics = line.contains("Atomics contracts");
                in_seqlock = line.contains("Seqlock shape");
                in_mutation = line.contains("Mutation contracts");
                saw_atomics |= in_atomics || in_seqlock;
                saw_mutation |= in_mutation;
                if line.starts_with("## ") {
                    in_section = line.contains("Architecture contracts");
                }
                continue;
            }
            if !line.trim_start().starts_with('|') {
                if in_atomics {
                    if let Some(rest) = line.split("sites:").nth(1) {
                        let digits: String = rest
                            .chars()
                            .skip_while(|c| !c.is_ascii_digit())
                            .take_while(char::is_ascii_digit)
                            .collect();
                        atomics.declared_sites = digits.parse().ok().or(atomics.declared_sites);
                    }
                }
                continue;
            }
            // Structural rows: the `|---|` separator and the header row
            // directly above one carry no contract data.
            if is_separator(line) || lines.get(lineno + 1).is_some_and(|n| is_separator(n)) {
                continue;
            }
            let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
            if cells.len() < 2 {
                continue;
            }
            if in_atomics {
                if cells.len() >= 6 {
                    let name = backticked(cells[0]).into_iter().next();
                    let file = backticked(cells[1]).into_iter().next();
                    for tok in backticked(cells[3]).iter().chain(backticked(cells[4]).iter()) {
                        if !KNOWN_ORDERINGS.contains(&tok.as_str()) {
                            errors.push(ContractError::UnknownOrdering {
                                line: lineno,
                                ordering: tok.clone(),
                            });
                        }
                    }
                    if let (Some(name), Some(file)) = (name, file) {
                        atomics.entries.push(AtomicEntry {
                            name,
                            file,
                            loads: backticked(cells[3]),
                            stores: backticked(cells[4]),
                            pairing: backticked(cells[5]),
                        });
                    }
                }
                continue;
            }
            if in_seqlock {
                if cells.len() >= 6 {
                    let file = backticked(cells[0]).into_iter().next();
                    let writer = backticked(cells[1]).into_iter().next();
                    let reader = backticked(cells[2]).into_iter().next();
                    let version = backticked(cells[3]).into_iter().next();
                    let payload = backticked(cells[4]);
                    let cursor = backticked(cells[5]).into_iter().next();
                    if let (Some(file), Some(writer), Some(reader), Some(version), Some(cursor)) =
                        (file, writer, reader, version, cursor)
                    {
                        atomics.seqlock =
                            Some(SeqlockDecl { file, writer, reader, version, payload, cursor });
                    }
                }
                continue;
            }
            if in_lock_order {
                // First backticked token anywhere in the row names the
                // lock (the leading cell is typically the rank number).
                match cells.iter().find_map(|c| backticked(c).into_iter().next()) {
                    Some(name) => lock_order.push(name),
                    None => errors.push(ContractError::MalformedLockOrderRow { line: lineno }),
                }
                continue;
            }
            if in_hot {
                if let Some(name) = backticked(cells[0]).into_iter().next() {
                    if hot_fns.contains(&name) {
                        errors.push(ContractError::DuplicateHotFn { line: lineno, name });
                    } else {
                        hot_fns.push(name);
                    }
                }
                continue;
            }
            if in_mutation {
                let class = backticked(cells[0]).into_iter().next();
                let score: Option<u32> = cells.get(2).and_then(|c| {
                    let digits: String = c.chars().filter(char::is_ascii_digit).collect();
                    digits.parse().ok()
                });
                match (class, score) {
                    (Some(class), Some(min_score)) if min_score <= 100 => {
                        if !crate::mutants::MUTANT_CLASSES.contains(&class.as_str()) {
                            errors.push(ContractError::UnknownMutantClass { line: lineno, class });
                        } else if mutation.iter().any(|r| r.class == class) {
                            errors
                                .push(ContractError::DuplicateMutationRow { line: lineno, class });
                        } else {
                            mutation.push(MutationRow {
                                line: lineno,
                                class,
                                killers: backticked(cells[1]),
                                min_score,
                            });
                        }
                    }
                    _ => errors.push(ContractError::MalformedMutationRow { line: lineno }),
                }
                continue;
            }
            if !in_section {
                continue;
            }
            let first = backticked(cells[0]);
            let Some(head) = first.first() else {
                continue;
            };
            if let Some((enum_name, variant)) = head.split_once("::") {
                let fields =
                    backticked(cells[1]).into_iter().filter(|f| !f.contains("::")).collect();
                protocol.push(ProtocolEntry {
                    enum_name: enum_name.to_owned(),
                    variant: variant.to_owned(),
                    fields,
                });
            } else if head.starts_with("fcma") {
                let deps: BTreeSet<String> =
                    backticked(cells[1]).into_iter().filter(|d| d.starts_with("fcma-")).collect();
                layering.insert(head.clone(), deps);
            }
        }
        Contracts {
            layering: (!layering.is_empty()).then_some(layering),
            protocol: (!protocol.is_empty()).then_some(protocol),
            lock_order: (!lock_order.is_empty()).then_some(lock_order),
            hot_fns: (!hot_fns.is_empty()).then_some(hot_fns),
            atomics: saw_atomics.then_some(atomics),
            mutation: saw_mutation.then_some(mutation),
            errors,
        }
    }
}

/// A node in the workspace call graph: one `fn` item in one file.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the file in the caller-provided slice.
    pub file: usize,
    /// Index of the fn within that file's [`ParsedFile::fns`].
    pub idx: usize,
    /// Crate key (dash form; the root package is `fcma`).
    pub crate_key: String,
}

/// The workspace call graph over library code.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes.
    pub nodes: Vec<FnNode>,
    /// Reverse edges: `callers[i]` = node indices that call node `i`.
    pub callers: Vec<Vec<usize>>,
    /// Forward edges with evidence: `callees[i]` = `(callee node,
    /// 0-based call line)` for every resolved call site in node `i`.
    pub callees: Vec<Vec<(usize, usize)>>,
}

/// A panic-reachability verdict for one node: why it can panic.
pub type Why = String;

impl CallGraph {
    /// Build the graph. `files` supplies, per file: the crate key, the
    /// parsed items, and a per-fn inclusion flag (test fns are excluded
    /// by the caller). `visible` gives each crate's transitive
    /// dependency closure for edge filtering.
    pub fn build(
        files: &[(String, &ParsedFile)],
        include: &dyn Fn(usize, usize) -> bool,
        visible: &BTreeMap<String, BTreeSet<String>>,
    ) -> CallGraph {
        let mut nodes = Vec::new();
        // name → node indices, split by owner kind.
        let mut owned: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (file, (crate_key, parsed)) in files.iter().enumerate() {
            for (idx, f) in parsed.fns.iter().enumerate() {
                if !include(file, idx) {
                    continue;
                }
                let node = nodes.len();
                nodes.push(FnNode { file, idx, crate_key: clone_key(crate_key) });
                match &f.owner {
                    Some(owner) => {
                        owned.entry(f.name.as_str()).or_default().push(node);
                        qualified.entry((owner.as_str(), f.name.as_str())).or_default().push(node);
                    }
                    None => free.entry(f.name.as_str()).or_default().push(node),
                }
            }
        }

        let empty = BTreeSet::new();
        let sees = |caller: &FnNode, callee: &FnNode| {
            caller.crate_key == callee.crate_key
                || visible.get(&caller.crate_key).unwrap_or(&empty).contains(&callee.crate_key)
        };

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut callees: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            let f = &files[node.file].1.fns[node.idx];
            for call in &f.calls {
                let candidates: &[usize] = if call.method || call.owner.as_deref() == Some("Self") {
                    owned.get(call.name.as_str()).map_or(&[], Vec::as_slice)
                } else if let Some(owner) = &call.owner {
                    qualified.get(&(owner.as_str(), call.name.as_str())).map_or(&[], Vec::as_slice)
                } else {
                    free.get(call.name.as_str()).map_or(&[], Vec::as_slice)
                };
                for &j in candidates {
                    if i != j && sees(node, &nodes[j]) {
                        callers[j].push(i);
                        callees[i].push((j, call.line));
                    }
                }
            }
        }
        CallGraph { nodes, callers, callees }
    }

    /// Propagate panic reachability. `direct[i]` is `Some(why)` when
    /// node `i` contains an unsuppressed panic source; `absorbing[i]`
    /// marks nodes that do not propagate to their callers (documented
    /// `# Panics` or allow-marked). Returns per-node verdicts.
    pub fn reach(
        &self,
        direct: &[Option<Why>],
        absorbing: &[bool],
        describe: &dyn Fn(usize) -> String,
    ) -> Vec<Option<Why>> {
        let mut out: Vec<Option<Why>> = direct.to_vec();
        let mut queue: VecDeque<usize> =
            (0..self.nodes.len()).filter(|&i| out[i].is_some() && !absorbing[i]).collect();
        while let Some(j) = queue.pop_front() {
            for &i in &self.callers[j] {
                if out[i].is_none() {
                    out[i] = Some(format!("calls {} which can panic", describe(j)));
                    if !absorbing[i] {
                        queue.push_back(i);
                    }
                }
            }
        }
        out
    }
}

/// Clone helper kept out of the hot loop's closure captures.
fn clone_key(k: &str) -> String {
    k.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse;

    #[test]
    fn manifest_parse_extracts_name_and_fcma_deps() {
        let toml = "[package]\nname = \"fcma-core\"\n\n[dependencies]\n\
                    fcma-trace = { workspace = true }\nfcma-fmri.workspace = true\n\
                    rayon = { workspace = true }\n\n[dev-dependencies]\nfcma-sim = { workspace = true }\n";
        let m = parse_manifest("crates/fcma-core/Cargo.toml", toml).unwrap();
        assert_eq!(m.name, "fcma-core");
        let deps: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(deps, vec!["fcma-trace", "fcma-fmri"], "dev-deps excluded");
        assert_eq!(m.deps[0].line, 4);
    }

    #[test]
    fn closure_is_transitive() {
        let g = CrateGraph {
            crates: vec![
                CrateManifest {
                    name: "a".into(),
                    rel_path: "a/Cargo.toml".into(),
                    deps: vec![ManifestDep { name: "b".into(), line: 0 }],
                },
                CrateManifest {
                    name: "b".into(),
                    rel_path: "b/Cargo.toml".into(),
                    deps: vec![ManifestDep { name: "c".into(), line: 0 }],
                },
                CrateManifest { name: "c".into(), rel_path: "c/Cargo.toml".into(), deps: vec![] },
            ],
        };
        let c = g.closure("a");
        assert!(c.contains("b") && c.contains("c"));
        assert!(g.closure("c").is_empty());
    }

    const DESIGN: &str = "\
## 11. Observability

Blah.

## 12. Architecture contracts

| Crate | Allowed direct deps |
|---|---|
| `fcma-linalg` | (none) |
| `fcma-svm` | `fcma-linalg`, `fcma-trace` |

| Message | Fields | Notes |
|---|---|---|
| `ToWorker::Task` | `task` | dispatch |
| `ToWorker::Shutdown` | (none) | drain |
| `FromWorker::Done` | `worker`, `task`, `scores` | result |

## 13. Other
";

    #[test]
    fn contracts_parse_layering_and_protocol() {
        let c = Contracts::from_design_md(DESIGN);
        let lay = c.layering.unwrap();
        assert!(lay["fcma-linalg"].is_empty());
        assert_eq!(
            lay["fcma-svm"].iter().cloned().collect::<Vec<_>>(),
            vec!["fcma-linalg", "fcma-trace"]
        );
        let proto = c.protocol.unwrap();
        assert_eq!(proto.len(), 3);
        assert_eq!(proto[0].enum_name, "ToWorker");
        assert_eq!(proto[0].variant, "Task");
        assert_eq!(proto[2].fields, vec!["worker", "task", "scores"]);
        assert!(proto[1].fields.is_empty());
    }

    #[test]
    fn contracts_absent_section_yields_none() {
        let c = Contracts::from_design_md("## 11. Observability\n\n| `a.b` |\n");
        assert!(c.layering.is_none());
        assert!(c.protocol.is_none());
        assert!(c.lock_order.is_none());
    }

    #[test]
    fn contracts_parse_lock_order_table_in_rank_order() {
        let md = "## 13. Concurrency model\n\nProse.\n\n### Lock order\n\n\
                  | Rank | Lock | Protects |\n|---|---|---|\n\
                  | 1 | `shared` | the C matrix |\n\
                  | 2 | `attempts` | chaos counters |\n\n\
                  ### After\n\n| `not_a_lock` | x |\n";
        let c = Contracts::from_design_md(md);
        assert_eq!(c.lock_order.unwrap(), vec!["shared", "attempts"]);
        // The §12 tables are unaffected by the §13 parse.
        let both = format!("{DESIGN}\n{md}");
        let c2 = Contracts::from_design_md(&both);
        assert!(c2.layering.is_some());
        assert!(c2.protocol.is_some());
        assert_eq!(c2.lock_order.unwrap().len(), 2);
    }

    #[test]
    fn contracts_parse_hot_functions_table() {
        let md = "## 14. Hot-path contracts\n\nProse about markers.\n\n\
                  ### Hot functions\n\n\
                  | Function | Crate | Role |\n|---|---|---|\n\
                  | `syrk_panel_scratch` | `fcma-linalg` | stage-3 panel walk |\n\
                  | `gemm_blocked_scratch` | `fcma-linalg` | baseline GEMM |\n\n\
                  ### After\n\n| `not_hot` | x |\n";
        let c = Contracts::from_design_md(md);
        assert_eq!(c.hot_fns.unwrap(), vec!["syrk_panel_scratch", "gemm_blocked_scratch"]);
        // The §13 and §12 parses are unaffected by a §14 table.
        let both = format!("{DESIGN}\n### Lock order\n\n| 1 | `shared` | x |\n\n{md}");
        let c2 = Contracts::from_design_md(&both);
        assert!(c2.layering.is_some());
        assert_eq!(c2.lock_order.unwrap(), vec!["shared"]);
        assert_eq!(c2.hot_fns.unwrap().len(), 2);
    }

    #[test]
    fn contracts_parse_atomics_tables_count_and_seqlock() {
        let md = "## 16. Atomics contracts\n\nProse. Total `Ordering::*` sites: 36 (verified).\n\n\
                  | Atomic | File | Role | Loads | Stores | Pairing |\n|---|---|---|---|---|---|\n\
                  | `flag` | `fcma-core/src/control.rs` | cancel flag | `Acquire` | `Release` | `flag` release→acquire |\n\
                  | `ver` | `fcma-trace/src/recorder.rs` | slot version | `Acquire` | `Release` | `ver` |\n\
                  | `w_ts` | `fcma-trace/src/recorder.rs` | payload | `Relaxed` | `Relaxed` | via `ver` |\n\n\
                  ### Seqlock shape\n\n\
                  | File | Writer | Reader | Version | Payload | Cursor |\n|---|---|---|---|---|---|\n\
                  | `fcma-trace/src/recorder.rs` | `push` | `snapshot` | `ver` | `w_ts`, `w_meta` | `head` |\n\n\
                  ### After\n\n| `not_atomics` | x |\n";
        let c = Contracts::from_design_md(md);
        let a = c.atomics.expect("section parses");
        assert_eq!(a.declared_sites, Some(36));
        assert_eq!(a.entries.len(), 3);
        let flag = a.entry("flag", "crates/fcma-core/src/control.rs").expect("suffix match");
        assert_eq!(flag.loads, vec!["Acquire"]);
        assert_eq!(flag.stores, vec!["Release"]);
        assert_eq!(flag.pairing, vec!["flag"]);
        assert!(a.entry("flag", "crates/fcma-trace/src/recorder.rs").is_none());
        let sl = a.seqlock.expect("seqlock row parses");
        assert_eq!((sl.writer.as_str(), sl.reader.as_str()), ("push", "snapshot"));
        assert_eq!(sl.version, "ver");
        assert_eq!(sl.payload, vec!["w_ts", "w_meta"]);
        assert_eq!(sl.cursor, "head");
        // §12–§14 parses are unaffected, and documents without §16
        // yield no atomics contract at all.
        let both = format!("{DESIGN}\n{md}");
        let c2 = Contracts::from_design_md(&both);
        assert!(c2.layering.is_some() && c2.protocol.is_some());
        assert_eq!(c2.atomics.unwrap().entries.len(), 3);
        assert!(Contracts::from_design_md(DESIGN).atomics.is_none());
    }

    #[test]
    fn malformed_lock_order_row_is_a_named_error() {
        let md = "### Lock order\n\n\
                  | Rank | Lock | Protects |\n|---|---|---|\n\
                  | 1 | `shared` | the C matrix |\n\
                  | 2 | attempts without backticks | chaos |\n";
        let c = Contracts::from_design_md(md);
        // The good row still parses; the bad one is reported, not skipped.
        assert_eq!(c.lock_order.unwrap(), vec!["shared"]);
        assert_eq!(c.errors, vec![ContractError::MalformedLockOrderRow { line: 5 }]);
        let msg = c.errors[0].to_string();
        assert!(msg.starts_with("DESIGN.md:6:"), "1-based line in message: {msg}");
        // Header and separator rows are structure, not malformed data.
        let clean = Contracts::from_design_md(
            "### Lock order\n\n| Rank | Lock | Protects |\n|---|---|---|\n| 1 | `shared` | x |\n",
        );
        assert!(clean.errors.is_empty(), "{:?}", clean.errors);
    }

    #[test]
    fn unknown_atomics_ordering_is_a_named_error() {
        let md = "## 16. Atomics contracts\n\n\
                  | Atomic | File | Role | Loads | Stores | Pairing |\n|---|---|---|---|---|---|\n\
                  | `flag` | `a.rs` | x | `Aquire` | `Release` | none |\n\
                  | `ver` | `a.rs` | x | `Acquire` | `Relaxd`, `Release` | none |\n";
        let c = Contracts::from_design_md(md);
        assert_eq!(
            c.errors,
            vec![
                ContractError::UnknownOrdering { line: 4, ordering: "Aquire".to_owned() },
                ContractError::UnknownOrdering { line: 5, ordering: "Relaxd".to_owned() },
            ]
        );
        assert!(c.errors[0].to_string().contains("`Aquire`"));
        // Both rows still enter the table — a typo'd row must not make
        // its sites look uncontracted on top of the parse error.
        assert_eq!(c.atomics.unwrap().entries.len(), 2);
    }

    #[test]
    fn duplicate_hot_fn_is_a_named_error() {
        let md = "### Hot functions\n\n\
                  | Function | Crate | Role |\n|---|---|---|\n\
                  | `syrk_panel_scratch` | `fcma-linalg` | panel |\n\
                  | `syrk_panel_scratch` | `fcma-linalg` | panel again |\n";
        let c = Contracts::from_design_md(md);
        assert_eq!(c.hot_fns.unwrap(), vec!["syrk_panel_scratch"]);
        assert_eq!(
            c.errors,
            vec![ContractError::DuplicateHotFn { line: 5, name: "syrk_panel_scratch".to_owned() }]
        );
    }

    #[test]
    fn mutation_contracts_table_parses() {
        let md = "## 17. Mutation contracts\n\nProse about the kill matrix.\n\n\
                  | Class | Expected killers | Min score |\n|---|---|---|\n\
                  | `ordering-weaken` | `atomicorder` | 100 |\n\
                  | `arith-swap` | tests | 80 |\n\
                  | `lock-delete` | `lockset`, model check | 90 |\n";
        let c = Contracts::from_design_md(md);
        assert!(c.errors.is_empty(), "{:?}", c.errors);
        let rows = c.mutation.expect("section parses");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].class, "ordering-weaken");
        assert_eq!(rows[0].killers, vec!["atomicorder"]);
        assert_eq!(rows[0].min_score, 100);
        assert_eq!(rows[1].min_score, 80);
        assert_eq!(rows[2].killers, vec!["lockset"]);
        // No §17 heading → no mutation contract at all.
        assert!(Contracts::from_design_md(DESIGN).mutation.is_none());
    }

    #[test]
    fn mutation_contract_errors_are_named() {
        let md = "## 17. Mutation contracts\n\n\
                  | Class | Expected killers | Min score |\n|---|---|---|\n\
                  | `arith-swap` | tests | 80 |\n\
                  | `no-such-class` | tests | 80 |\n\
                  | `arith-swap` | tests | 90 |\n\
                  | `cmp-flip` | tests | 300 |\n\
                  | not backticked | tests | 80 |\n";
        let c = Contracts::from_design_md(md);
        assert_eq!(c.mutation.unwrap().len(), 1, "only the first row is good");
        assert_eq!(
            c.errors,
            vec![
                ContractError::UnknownMutantClass { line: 5, class: "no-such-class".to_owned() },
                ContractError::DuplicateMutationRow { line: 6, class: "arith-swap".to_owned() },
                ContractError::MalformedMutationRow { line: 7 },
                ContractError::MalformedMutationRow { line: 8 },
            ]
        );
        let unknown = c.errors[0].to_string();
        assert!(unknown.contains("accum-reorder"), "lists known classes: {unknown}");
    }

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let parsed: Vec<ParsedFile> = sources.iter().map(|(_, s)| parse(&scan(s))).collect();
        let files: Vec<(String, &ParsedFile)> =
            sources.iter().zip(&parsed).map(|(&(k, _), p)| (k.to_owned(), p)).collect();
        let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        visible.insert("fcma-core".into(), [String::from("fcma-linalg")].into());
        let g = CallGraph::build(&files, &|_, _| true, &visible);
        (parsed, g)
    }

    #[test]
    fn reachability_propagates_through_private_fns() {
        let (parsed, g) = graph_of(&[(
            "fcma-linalg",
            "pub fn entry(v: &[f32]) -> f32 {\n    helper(v)\n}\n\
             fn helper(v: &[f32]) -> f32 {\n    v[0]\n}\n",
        )]);
        let direct: Vec<Option<Why>> = g
            .nodes
            .iter()
            .map(|n| parsed[n.file].fns[n.idx].sources.first().map(|s| s.kind.label().to_owned()))
            .collect();
        let absorbing = vec![false; g.nodes.len()];
        let reach = g.reach(&direct, &absorbing, &|j| {
            format!("`{}`", parsed[g.nodes[j].file].fns[g.nodes[j].idx].name)
        });
        let entry = g.nodes.iter().position(|n| parsed[n.file].fns[n.idx].name == "entry").unwrap();
        assert!(reach[entry].as_deref().unwrap().contains("`helper`"));
    }

    #[test]
    fn documented_fns_absorb_propagation() {
        let (parsed, g) = graph_of(&[(
            "fcma-linalg",
            "pub fn entry(v: &[f32]) -> f32 {\n    helper(v)\n}\n\
             /// # Panics\n/// On empty input.\nfn helper(v: &[f32]) -> f32 {\n    v[0]\n}\n",
        )]);
        let direct: Vec<Option<Why>> = g
            .nodes
            .iter()
            .map(|n| parsed[n.file].fns[n.idx].sources.first().map(|s| s.kind.label().to_owned()))
            .collect();
        let absorbing: Vec<bool> =
            g.nodes.iter().map(|n| parsed[n.file].fns[n.idx].doc_panics).collect();
        let reach = g.reach(&direct, &absorbing, &|_| String::from("x"));
        let entry = g.nodes.iter().position(|n| parsed[n.file].fns[n.idx].name == "entry").unwrap();
        assert!(reach[entry].is_none(), "documented callee must not propagate");
    }

    #[test]
    fn edges_respect_crate_visibility() {
        // fcma-linalg cannot see fcma-core, so its call to a same-named
        // fn there resolves to nothing.
        let (parsed, g) = graph_of(&[
            ("fcma-linalg", "pub fn entry() {\n    shared_name();\n}\n"),
            ("fcma-core", "pub fn shared_name() {\n    panic!(\"boom\");\n}\n"),
        ]);
        let direct: Vec<Option<Why>> = g
            .nodes
            .iter()
            .map(|n| parsed[n.file].fns[n.idx].sources.first().map(|s| s.kind.label().to_owned()))
            .collect();
        let reach = g.reach(&direct, &vec![false; g.nodes.len()], &|_| String::from("x"));
        let entry = g.nodes.iter().position(|n| parsed[n.file].fns[n.idx].name == "entry").unwrap();
        assert!(reach[entry].is_none());
        // The reverse direction (core → linalg) does resolve.
        let (parsed2, g2) = graph_of(&[
            ("fcma-core", "pub fn entry() {\n    shared_name();\n}\n"),
            ("fcma-linalg", "pub fn shared_name() {\n    panic!(\"boom\");\n}\n"),
        ]);
        let direct2: Vec<Option<Why>> = g2
            .nodes
            .iter()
            .map(|n| parsed2[n.file].fns[n.idx].sources.first().map(|s| s.kind.label().to_owned()))
            .collect();
        let reach2 = g2.reach(&direct2, &vec![false; g2.nodes.len()], &|_| String::from("x"));
        let entry2 =
            g2.nodes.iter().position(|n| parsed2[n.file].fns[n.idx].name == "entry").unwrap();
        assert!(reach2[entry2].is_some());
    }

    #[test]
    fn method_and_qualified_calls_resolve() {
        let (parsed, g) = graph_of(&[(
            "fcma-linalg",
            "pub struct Mat;\nimpl Mat {\n    pub fn get(&self, i: usize) -> f32 {\n        self.data[i]\n    }\n    \
             pub fn first(&self) -> f32 {\n        self.get(0)\n    }\n}\n\
             pub fn via_qualified(m: &Mat) -> f32 {\n    Mat::get(m, 0)\n}\n",
        )]);
        let direct: Vec<Option<Why>> = g
            .nodes
            .iter()
            .map(|n| parsed[n.file].fns[n.idx].sources.first().map(|s| s.kind.label().to_owned()))
            .collect();
        let reach = g.reach(&direct, &vec![false; g.nodes.len()], &|j| {
            format!("`{}`", parsed[g.nodes[j].file].fns[g.nodes[j].idx].name)
        });
        for name in ["first", "via_qualified"] {
            let i = g.nodes.iter().position(|n| parsed[n.file].fns[n.idx].name == name).unwrap();
            assert!(reach[i].is_some(), "{name} should reach panic via get");
        }
    }
}
