//! Per-file source model: role classification plus a single-pass
//! structural analysis (test spans, documented-panic spans, token sites)
//! that every lint pass consumes.

use crate::lexer::{scan, Scanned};

/// What kind of target a file belongs to, which decides which passes
/// apply: library passes skip bins, tests, benches, and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Part of a library target (`src/` of a crate with a lib target).
    Lib,
    /// Part of a binary target (`src/main.rs`, `src/bin/`, bin-only crates).
    Bin,
    /// An integration test (`tests/`).
    Test,
    /// A benchmark (`benches/`).
    Bench,
    /// An example (`examples/`).
    Example,
}

/// A numeric-cast site: `<expr> as <ty>` in scrubbed code.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// 0-based line.
    pub line: usize,
    /// The target type token (`usize`, `f32`, ...).
    pub target: String,
}

/// A top-level `pub fn` declaration.
#[derive(Debug, Clone)]
pub struct PubFn {
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Function name.
    pub name: String,
}

/// One analyzed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The crate this file belongs to (`None` for the root package).
    pub crate_name: Option<String>,
    /// Target classification.
    pub role: Role,
    /// Lexed views of the source.
    pub scan: Scanned,
    /// 0-based inclusive line spans of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Spans of functions whose doc comment has a `# Panics` section.
    pub panics_fn_spans: Vec<(usize, usize)>,
    /// Lines containing the `unsafe` keyword.
    pub unsafe_lines: Vec<usize>,
    /// Lines containing `.unwrap()` or `.expect(` calls.
    pub unwrap_lines: Vec<(usize, &'static str)>,
    /// Numeric `as` casts.
    pub casts: Vec<CastSite>,
    /// Top-level `pub fn`s.
    pub pub_fns: Vec<PubFn>,
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

impl SourceFile {
    /// Lex and analyze `source` under the given path and role.
    pub fn new(rel_path: &str, crate_name: Option<&str>, role: Role, source: &str) -> Self {
        let scan = scan(source);
        let mut file = SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name: crate_name.map(str::to_owned),
            role,
            scan,
            test_spans: Vec::new(),
            panics_fn_spans: Vec::new(),
            unsafe_lines: Vec::new(),
            unwrap_lines: Vec::new(),
            casts: Vec::new(),
            pub_fns: Vec::new(),
        };
        file.analyze();
        file
    }

    /// Does an allow marker for `pass` cover 0-based line `line`?
    ///
    /// Markers are comments of the form
    /// `// audit: allow(<pass>) — <reason>` on the same line or the line
    /// directly above. The reason text is mandatory.
    pub fn allow_marker(&self, pass: &str, line: usize) -> bool {
        let hit = |l: usize| marker_allows(&self.scan.comment_lines[l], pass);
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// Is 0-based `line` inside a `#[cfg(test)]` item?
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Is 0-based `line` inside a function documented with `# Panics`?
    pub fn in_panics_fn(&self, line: usize) -> bool {
        self.panics_fn_spans.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Does the file open with module-level `//!` docs (before any item)?
    pub fn has_module_docs(&self) -> bool {
        for raw in &self.scan.raw_lines {
            let t = raw.trim_start();
            if t.is_empty() || t.starts_with("#!") {
                continue;
            }
            return t.starts_with("//!");
        }
        false
    }

    /// One sequential pass over the scrubbed code computing spans and
    /// token sites. Brace depth is tracked exactly (literals are already
    /// blanked); item starts are recognized from keyword tokens.
    fn analyze(&mut self) {
        // Pending state fed by raw/comment lines.
        let mut pending_cfg_test = false;
        let mut pending_doc_panics = false;
        let mut in_doc_block = false;

        // Brace tracking.
        let mut depth: i64 = 0;
        // Functions awaiting their opening brace: Some(docs_have_panics).
        let mut awaiting_fn: Option<(bool, usize)> = None;
        // Item awaiting its brace while a cfg(test) attr is pending.
        let mut awaiting_cfg_item = false;
        // Stack entries: (depth_after_open, start_line, kind).
        enum Open {
            PanicsFn,
            CfgTest,
            Other,
        }
        let mut stack: Vec<(i64, usize, Open)> = Vec::new();

        let code_lines = self.scan.code_lines.clone();
        for (lineno, code) in code_lines.iter().enumerate() {
            // Doc-comment bookkeeping from the raw view.
            let raw_trim = self.scan.raw_lines[lineno].trim_start();
            if let Some(doc) = raw_trim.strip_prefix("///") {
                if !in_doc_block {
                    in_doc_block = true;
                    pending_doc_panics = false;
                }
                if doc.trim().starts_with("# Panics") {
                    pending_doc_panics = true;
                }
            } else if !raw_trim.is_empty() {
                in_doc_block = false;
            }
            if raw_trim.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            }

            // Substring sites on scrubbed code.
            for (pat, label) in [(".unwrap(", "unwrap"), (".expect(", "expect")] {
                let mut from = 0;
                while let Some(p) = code[from..].find(pat) {
                    self.unwrap_lines.push((lineno, label));
                    from += p + pat.len();
                }
            }

            // Token walk for keywords, casts, braces.
            let mut tokens = Tokenizer::new(code);
            let mut prev_ident: Option<String> = None;
            let mut saw_as = false;
            let mut saw_pub_fn = false;
            while let Some(tok) = tokens.next_token() {
                match tok {
                    Token::Ident(w) => {
                        if saw_as {
                            if NUMERIC_TYPES.contains(&w.as_str()) {
                                self.casts.push(CastSite { line: lineno, target: w.clone() });
                            }
                            saw_as = false;
                        }
                        match w.as_str() {
                            "unsafe" => self.unsafe_lines.push(lineno),
                            "as" => saw_as = true,
                            "fn" => {
                                saw_pub_fn = prev_ident.as_deref() == Some("pub");
                                awaiting_fn = Some((pending_doc_panics, lineno));
                                pending_doc_panics = false;
                                in_doc_block = false;
                                if pending_cfg_test {
                                    awaiting_cfg_item = true;
                                    pending_cfg_test = false;
                                }
                            }
                            "mod" | "struct" | "enum" | "impl" | "trait" | "union" => {
                                pending_doc_panics = false;
                                in_doc_block = false;
                                if pending_cfg_test {
                                    awaiting_cfg_item = true;
                                    pending_cfg_test = false;
                                }
                            }
                            _ => {
                                if saw_pub_fn && prev_ident.as_deref() == Some("fn") {
                                    if depth == 0 {
                                        self.pub_fns.push(PubFn { line: lineno, name: w.clone() });
                                    }
                                    saw_pub_fn = false;
                                }
                            }
                        }
                        prev_ident = Some(w);
                    }
                    Token::Open => {
                        depth += 1;
                        let kind = if awaiting_cfg_item {
                            awaiting_cfg_item = false;
                            awaiting_fn = None;
                            Open::CfgTest
                        } else if let Some((panics, _)) = awaiting_fn.take() {
                            if panics {
                                Open::PanicsFn
                            } else {
                                Open::Other
                            }
                        } else {
                            Open::Other
                        };
                        stack.push((depth, lineno, kind));
                    }
                    Token::Close => {
                        if stack.last().is_some_and(|&(d, _, _)| d == depth) {
                            if let Some((_, start, kind)) = stack.pop() {
                                match kind {
                                    Open::CfgTest => self.test_spans.push((start, lineno)),
                                    Open::PanicsFn => {
                                        self.panics_fn_spans.push((start, lineno));
                                    }
                                    Open::Other => {}
                                }
                            }
                        }
                        depth -= 1;
                    }
                    Token::Semi => {
                        // `fn f();` in a trait: no body to track.
                        awaiting_fn = None;
                        awaiting_cfg_item = false;
                    }
                }
            }
        }
    }
}

/// Does this comment line carry a valid `audit: allow(<pass>)` marker?
///
/// A marker without a reason is treated as absent (the violation still
/// fires), which is what forces every escape hatch to be justified.
fn marker_allows(comment: &str, pass: &str) -> bool {
    let needle = format!("audit: allow({pass})");
    let Some(p) = comment.find(&needle) else {
        return false;
    };
    let rest = comment[p + needle.len()..].trim_start();
    let reason = rest
        .strip_prefix('\u{2014}')
        .or_else(|| rest.strip_prefix('-'))
        .or_else(|| rest.strip_prefix(':'))
        .map_or("", str::trim);
    !reason.is_empty()
}

/// Events from the per-line token walk.
enum Token {
    Ident(String),
    Open,
    Close,
    Semi,
}

struct Tokenizer<'a> {
    chars: std::str::Chars<'a>,
    peeked: Option<char>,
}

impl<'a> Tokenizer<'a> {
    fn new(line: &'a str) -> Self {
        Tokenizer { chars: line.chars(), peeked: None }
    }

    fn bump(&mut self) -> Option<char> {
        self.peeked.take().or_else(|| self.chars.next())
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn next_token(&mut self) -> Option<Token> {
        loop {
            let c = self.bump()?;
            match c {
                '{' => return Some(Token::Open),
                '}' => return Some(Token::Close),
                ';' => return Some(Token::Semi),
                c if c.is_alphabetic() || c == '_' => {
                    let mut w = String::new();
                    w.push(c);
                    while let Some(n) = self.peek() {
                        if n.is_alphanumeric() || n == '_' {
                            w.push(n);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    return Some(Token::Ident(w));
                }
                c if c.is_ascii_digit() => {
                    // Consume the number (so `1f32` is not an ident `f32`).
                    while let Some(n) = self.peek() {
                        if n.is_alphanumeric() || n == '_' || n == '.' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/a.rs", Some("x"), Role::Lib, src)
    }

    #[test]
    fn cfg_test_span_covers_mod() {
        let f =
            lib("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n");
        assert_eq!(f.test_spans.len(), 1);
        assert!(f.in_test_span(3));
        assert!(!f.in_test_span(0));
        assert!(!f.in_test_span(5));
    }

    #[test]
    fn panics_doc_span_covers_fn_body() {
        let src = "/// Does things.\n///\n/// # Panics\n/// When sad.\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g(y: Option<u8>) {\n    y.unwrap();\n}\n";
        let f = lib(src);
        assert_eq!(f.panics_fn_spans.len(), 1);
        assert!(f.in_panics_fn(5));
        assert!(!f.in_panics_fn(8));
    }

    #[test]
    fn unwrap_and_expect_sites_found_not_in_strings() {
        let f = lib("fn a(x: Option<u8>) {\n    x.unwrap();\n    let _ = \"don't .unwrap() me\";\n    Some(1).expect(\"x.unwrap() failed\");\n}\n");
        assert_eq!(f.unwrap_lines.len(), 2);
        assert_eq!(f.unwrap_lines[0].0, 1);
        assert_eq!(f.unwrap_lines[1], (3, "expect"));
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let f = lib("fn a(x: Option<u8>) {\n    x.unwrap_or(3);\n    x.unwrap_or_else(|| 4);\n    x.unwrap_or_default();\n}\n");
        assert!(f.unwrap_lines.is_empty());
    }

    #[test]
    fn numeric_casts_found_with_targets() {
        let f = lib("fn a(n: usize) -> f32 {\n    let b = n as f32;\n    let c = b as f64 as usize;\n    use std::fmt as xfmt;\n    b\n}\n");
        let targets: Vec<&str> = f.casts.iter().map(|c| c.target.as_str()).collect();
        assert_eq!(targets, vec!["f32", "f64", "usize"]);
    }

    #[test]
    fn pub_fns_only_top_level() {
        let f = lib("pub fn top() {}\nimpl Foo {\n    pub fn method(&self) {}\n}\npub(crate) fn scoped() {}\nfn private() {}\n");
        let names: Vec<&str> = f.pub_fns.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["top"]);
    }

    #[test]
    fn allow_marker_requires_reason() {
        let with = lib("fn a(x: Option<u8>) {\n    // audit: allow(unwrap) — checked above\n    x.unwrap();\n}\n");
        assert!(with.allow_marker("unwrap", 2));
        let without =
            lib("fn a(x: Option<u8>) {\n    // audit: allow(unwrap)\n    x.unwrap();\n}\n");
        assert!(!without.allow_marker("unwrap", 2));
        let wrong_pass =
            lib("fn a(x: Option<u8>) {\n    // audit: allow(cast) — nope\n    x.unwrap();\n}\n");
        assert!(!wrong_pass.allow_marker("unwrap", 2));
    }

    #[test]
    fn module_docs_detection() {
        assert!(lib("//! Docs.\nfn a() {}\n").has_module_docs());
        assert!(lib("\n#![allow(dead_code)]\n//! Docs.\n").has_module_docs());
        assert!(!lib("// plain comment\nfn a() {}\n").has_module_docs());
        assert!(!lib("fn a() {}\n").has_module_docs());
    }

    #[test]
    fn unsafe_keyword_found_outside_strings() {
        let f =
            lib("fn a() {\n    let s = \"unsafe\"; // unsafe in comment\n}\nunsafe fn b() {}\n");
        assert_eq!(f.unsafe_lines, vec![3]);
    }
}
