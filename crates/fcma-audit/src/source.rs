//! Per-file source model: role classification plus a single-pass
//! structural analysis (test spans, token sites, allow markers) that the
//! lexical lint passes consume. Item-level structure (functions, types,
//! calls) lives in [`crate::parser`].

use crate::lexer::{scan, Scanned};

/// What kind of target a file belongs to, which decides which passes
/// apply: library passes skip bins, tests, benches, and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Part of a library target (`src/` of a crate with a lib target).
    Lib,
    /// Part of a binary target (`src/main.rs`, `src/bin/`, bin-only crates).
    Bin,
    /// An integration test (`tests/`).
    Test,
    /// A benchmark (`benches/`).
    Bench,
    /// An example (`examples/`).
    Example,
}

/// A numeric-cast site: `<expr> as <ty>` in scrubbed code.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// 0-based line.
    pub line: usize,
    /// The target type token (`usize`, `f32`, ...).
    pub target: String,
}

/// One `// audit: allow(<pass>)` marker comment.
#[derive(Debug, Clone)]
pub struct Marker {
    /// 0-based line of the marker comment.
    pub line: usize,
    /// The pass name inside the parentheses.
    pub pass: String,
    /// Whether the mandatory reason text is present.
    pub has_reason: bool,
}

/// One `// audit: disjoint(<what>)` marker comment: the declaration
/// that a mutable value crossing a thread boundary is partitioned into
/// non-overlapping per-task pieces (the §15 output-band pattern).
#[derive(Debug, Clone)]
pub struct DisjointMarker {
    /// 0-based line of the marker comment.
    pub line: usize,
    /// The declared value name inside the parentheses.
    pub what: String,
    /// Whether the mandatory reason text is present.
    pub has_reason: bool,
}

/// One `// audit: equivalent(<class>)` marker comment: the triage
/// record that a mutant of the named class at this site is semantically
/// equivalent to the original code, so no oracle can (or should) kill
/// it. Consumed by `fcma-mut`; stale or reasonless ones fail
/// `unusedallow` exactly like disjoint markers.
#[derive(Debug, Clone)]
pub struct EquivalentMarker {
    /// 0-based line of the marker comment.
    pub line: usize,
    /// The mutant-class name inside the parentheses.
    pub class: String,
    /// Whether the mandatory reason text is present.
    pub has_reason: bool,
}

/// One analyzed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The crate this file belongs to (`None` for the root package).
    pub crate_name: Option<String>,
    /// Target classification.
    pub role: Role,
    /// Lexed views of the source.
    pub scan: Scanned,
    /// 0-based inclusive line spans of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Lines containing the `unsafe` keyword.
    pub unsafe_lines: Vec<usize>,
    /// Numeric `as` casts.
    pub casts: Vec<CastSite>,
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

impl SourceFile {
    /// Lex and analyze `source` under the given path and role.
    pub fn new(rel_path: &str, crate_name: Option<&str>, role: Role, source: &str) -> Self {
        let scan = scan(source);
        let mut file = SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name: crate_name.map(str::to_owned),
            role,
            scan,
            test_spans: Vec::new(),
            unsafe_lines: Vec::new(),
            casts: Vec::new(),
        };
        file.analyze();
        file
    }

    /// Does an allow marker for `pass` cover 0-based line `line`?
    ///
    /// Markers are comments of the form
    /// `// audit: allow(<pass>) — <reason>` on the same line or the line
    /// directly above. The reason text is mandatory.
    ///
    /// Prefer [`crate::passes::Workspace::allowed`], which also records
    /// the marker as consumed for the `unusedallow` pass.
    pub fn allow_marker(&self, pass: &str, line: usize) -> bool {
        let hit = |l: usize| marker_allows(&self.scan.comment_lines[l], pass);
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// Is 0-based `line` inside a `#[cfg(test)]` item?
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Does the file open with module-level `//!` docs (before any item)?
    pub fn has_module_docs(&self) -> bool {
        for raw in &self.scan.raw_lines {
            let t = raw.trim_start();
            if t.is_empty() || t.starts_with("#!") {
                continue;
            }
            return t.starts_with("//!");
        }
        false
    }

    /// Every `audit: allow(...)` marker comment in the file, in order.
    pub fn markers(&self) -> Vec<Marker> {
        let mut out = Vec::new();
        for (line, comment) in self.scan.comment_lines.iter().enumerate() {
            if is_doc_comment(comment) {
                continue;
            }
            let Some(p) = comment.find(MARKER_PREFIX) else {
                continue;
            };
            let rest = &comment[p + MARKER_PREFIX.len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let pass = rest[..close].trim().to_owned();
            out.push(Marker { line, has_reason: marker_allows(comment, &pass), pass });
        }
        out
    }

    /// Does a `// audit: disjoint(<what>)` marker with a reason cover
    /// 0-based `line`? Same two-line window and doc-comment exclusion as
    /// [`Self::allow_marker`]; a marker without a reason is absent.
    pub fn disjoint_marker(&self, what: &str, line: usize) -> bool {
        let hit = |l: usize| {
            parse_disjoint(&self.scan.comment_lines[l])
                .is_some_and(|(w, has_reason)| w == what && has_reason)
        };
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// Every `audit: disjoint(...)` marker comment in the file, in order.
    ///
    /// Used by the `threadescape` pass to flag stale markers (a disjoint
    /// declaration on a line no boundary closure actually crosses).
    pub fn disjoint_markers(&self) -> Vec<DisjointMarker> {
        let mut out = Vec::new();
        for (line, comment) in self.scan.comment_lines.iter().enumerate() {
            if let Some((what, has_reason)) = parse_disjoint(comment) {
                out.push(DisjointMarker { line, what, has_reason });
            }
        }
        out
    }

    /// Does a `// audit: equivalent(<class>)` marker with a reason cover
    /// 0-based `line`? Same two-line window and doc-comment exclusion as
    /// [`Self::allow_marker`]; a marker without a reason is absent.
    pub fn equivalent_marker(&self, class: &str, line: usize) -> bool {
        let hit = |l: usize| {
            parse_equivalent(&self.scan.comment_lines[l])
                .is_some_and(|(c, has_reason)| c == class && has_reason)
        };
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// Every `audit: equivalent(...)` marker comment in the file, in
    /// order. Used by `unusedallow` to flag malformed or stale triage
    /// markers (a declaration no enumerated mutant site actually hits).
    pub fn equivalent_markers(&self) -> Vec<EquivalentMarker> {
        let mut out = Vec::new();
        for (line, comment) in self.scan.comment_lines.iter().enumerate() {
            if let Some((class, has_reason)) = parse_equivalent(comment) {
                out.push(EquivalentMarker { line, class, has_reason });
            }
        }
        out
    }

    /// Does a `// audit: <kind>` function marker (`audit: hot` or
    /// `audit: pure`) sit on 0-based `line` or the line directly above?
    ///
    /// Same two-line window as [`Self::allow_marker`], same doc-comment
    /// exclusion. The word-boundary check keeps `audit: hotfix` (or the
    /// `audit: allow(...)` syntax itself) from matching.
    pub fn fn_marker(&self, kind: &str, line: usize) -> bool {
        let hit = |l: usize| self.scan.comment_lines.get(l).is_some_and(|c| has_fn_marker(c, kind));
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// One sequential pass over the scrubbed code computing spans and
    /// token sites. Brace depth is tracked exactly (literals are already
    /// blanked); item starts are recognized from keyword tokens.
    fn analyze(&mut self) {
        // Pending state fed by raw lines.
        let mut pending_cfg_test = false;

        // Brace tracking.
        let mut depth: i64 = 0;
        // Item awaiting its brace while a cfg(test) attr is pending.
        let mut awaiting_cfg_item = false;
        // Stack entries: (depth_after_open, start_line, is_cfg_test).
        let mut stack: Vec<(i64, usize, bool)> = Vec::new();

        let code_lines = self.scan.code_lines.clone();
        for (lineno, code) in code_lines.iter().enumerate() {
            let raw_trim = self.scan.raw_lines[lineno].trim_start();
            if raw_trim.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            }

            // Token walk for keywords, casts, braces.
            let mut tokens = Tokenizer::new(code);
            let mut saw_as = false;
            while let Some(tok) = tokens.next_token() {
                match tok {
                    Token::Ident(w) => {
                        if saw_as {
                            if NUMERIC_TYPES.contains(&w.as_str()) {
                                self.casts.push(CastSite { line: lineno, target: w.clone() });
                            }
                            saw_as = false;
                        }
                        match w.as_str() {
                            "unsafe" => self.unsafe_lines.push(lineno),
                            "as" => saw_as = true,
                            "fn" | "mod" | "struct" | "enum" | "impl" | "trait" | "union"
                                if pending_cfg_test =>
                            {
                                awaiting_cfg_item = true;
                                pending_cfg_test = false;
                            }
                            _ => {}
                        }
                    }
                    Token::Open => {
                        depth += 1;
                        let is_cfg = awaiting_cfg_item;
                        awaiting_cfg_item = false;
                        stack.push((depth, lineno, is_cfg));
                    }
                    Token::Close => {
                        if stack.last().is_some_and(|&(d, _, _)| d == depth) {
                            if let Some((_, start, is_cfg)) = stack.pop() {
                                if is_cfg {
                                    self.test_spans.push((start, lineno));
                                }
                            }
                        }
                        depth -= 1;
                    }
                    Token::Semi => {
                        awaiting_cfg_item = false;
                    }
                }
            }
        }
    }
}

/// The comment prefix that introduces an allow marker.
const MARKER_PREFIX: &str = "audit: allow(";

/// The comment prefix that introduces a disjoint-band declaration.
const DISJOINT_PREFIX: &str = "audit: disjoint(";

/// The comment prefix that introduces an equivalent-mutant triage.
const EQUIVALENT_PREFIX: &str = "audit: equivalent(";

/// Parse a `// audit: equivalent(<class>) — <reason>` marker out of a
/// collected comment line. Returns the mutant class and whether the
/// mandatory reason is present; doc comments never carry markers.
pub fn parse_equivalent(comment: &str) -> Option<(String, bool)> {
    if is_doc_comment(comment) {
        return None;
    }
    let p = comment.find(EQUIVALENT_PREFIX)?;
    let rest = &comment[p + EQUIVALENT_PREFIX.len()..];
    let close = rest.find(')')?;
    let class = rest[..close].trim().to_owned();
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix('\u{2014}')
        .or_else(|| after.strip_prefix('-'))
        .or_else(|| after.strip_prefix(':'))
        .map_or("", str::trim);
    Some((class, !reason.is_empty()))
}

/// Parse a `// audit: disjoint(<what>) — <reason>` marker out of a
/// collected comment line. Returns the declared name and whether the
/// mandatory reason is present; doc comments never carry markers.
pub fn parse_disjoint(comment: &str) -> Option<(String, bool)> {
    if is_doc_comment(comment) {
        return None;
    }
    let p = comment.find(DISJOINT_PREFIX)?;
    let rest = &comment[p + DISJOINT_PREFIX.len()..];
    let close = rest.find(')')?;
    let what = rest[..close].trim().to_owned();
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix('\u{2014}')
        .or_else(|| after.strip_prefix('-'))
        .or_else(|| after.strip_prefix(':'))
        .map_or("", str::trim);
    Some((what, !reason.is_empty()))
}

/// Is this collected comment a doc comment (`///`, `//!`, `/**`, `/*!`)?
///
/// Doc comments never carry allow markers: they *describe* code (the
/// audit's own rustdoc spells out the marker syntax verbatim), so a
/// mention there must neither suppress a violation nor register as a
/// stale marker. Only plain `//` and `/* */` comments direct the tool.
fn is_doc_comment(comment: &str) -> bool {
    let t = comment.trim_start();
    ["///", "//!", "/**", "/*!"].iter().any(|p| t.starts_with(p))
}

/// Does this comment line carry a valid `audit: allow(<pass>)` marker?
///
/// A marker without a reason is treated as absent (the violation still
/// fires), which is what forces every escape hatch to be justified.
/// Doc comments are ignored entirely (see [`is_doc_comment`]).
pub fn marker_allows(comment: &str, pass: &str) -> bool {
    if is_doc_comment(comment) {
        return false;
    }
    let needle = format!("{MARKER_PREFIX}{pass})");
    let Some(p) = comment.find(&needle) else {
        return false;
    };
    let rest = comment[p + needle.len()..].trim_start();
    let reason = rest
        .strip_prefix('\u{2014}')
        .or_else(|| rest.strip_prefix('-'))
        .or_else(|| rest.strip_prefix(':'))
        .map_or("", str::trim);
    !reason.is_empty()
}

/// Does this comment carry a bare `audit: <kind>` function marker?
///
/// Trailing prose is allowed (`// audit: hot — stage-3 panel walk`),
/// but the kind must end at a word boundary and must not open a
/// parenthesis (that is the `audit: allow(pass)` syntax).
fn has_fn_marker(comment: &str, kind: &str) -> bool {
    if is_doc_comment(comment) {
        return false;
    }
    let needle = format!("audit: {kind}");
    let Some(p) = comment.find(&needle) else {
        return false;
    };
    match comment[p + needle.len()..].chars().next() {
        Some(c) => !(c.is_ascii_alphanumeric() || c == '_' || c == '('),
        None => true,
    }
}

/// Events from the per-line token walk.
enum Token {
    Ident(String),
    Open,
    Close,
    Semi,
}

struct Tokenizer<'a> {
    chars: std::str::Chars<'a>,
    peeked: Option<char>,
}

impl<'a> Tokenizer<'a> {
    fn new(line: &'a str) -> Self {
        Tokenizer { chars: line.chars(), peeked: None }
    }

    fn bump(&mut self) -> Option<char> {
        self.peeked.take().or_else(|| self.chars.next())
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn next_token(&mut self) -> Option<Token> {
        loop {
            let c = self.bump()?;
            match c {
                '{' => return Some(Token::Open),
                '}' => return Some(Token::Close),
                ';' => return Some(Token::Semi),
                c if c.is_alphabetic() || c == '_' => {
                    let mut w = String::new();
                    w.push(c);
                    while let Some(n) = self.peek() {
                        if n.is_alphanumeric() || n == '_' {
                            w.push(n);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    return Some(Token::Ident(w));
                }
                c if c.is_ascii_digit() => {
                    // Consume the number (so `1f32` is not an ident `f32`).
                    while let Some(n) = self.peek() {
                        if n.is_alphanumeric() || n == '_' || n == '.' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/a.rs", Some("x"), Role::Lib, src)
    }

    #[test]
    fn cfg_test_span_covers_mod() {
        let f =
            lib("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n");
        assert_eq!(f.test_spans.len(), 1);
        assert!(f.in_test_span(3));
        assert!(!f.in_test_span(0));
        assert!(!f.in_test_span(5));
    }

    #[test]
    fn numeric_casts_found_with_targets() {
        let f = lib("fn a(n: usize) -> f32 {\n    let b = n as f32;\n    let c = b as f64 as usize;\n    use std::fmt as xfmt;\n    b\n}\n");
        let targets: Vec<&str> = f.casts.iter().map(|c| c.target.as_str()).collect();
        assert_eq!(targets, vec!["f32", "f64", "usize"]);
    }

    #[test]
    fn allow_marker_requires_reason() {
        let with = lib("fn a(x: Option<u8>) {\n    // audit: allow(panicpath) — checked above\n    x.unwrap();\n}\n");
        assert!(with.allow_marker("panicpath", 2));
        let without =
            lib("fn a(x: Option<u8>) {\n    // audit: allow(panicpath)\n    x.unwrap();\n}\n");
        assert!(!without.allow_marker("panicpath", 2));
        let wrong_pass =
            lib("fn a(x: Option<u8>) {\n    // audit: allow(cast) — nope\n    x.unwrap();\n}\n");
        assert!(!wrong_pass.allow_marker("panicpath", 2));
    }

    #[test]
    fn fn_marker_window_and_word_boundary() {
        let f = lib("// audit: hot — stage-3 panel walk\nfn a() {}\n\nfn b() {} // audit: pure\n\n// audit: hotfix notes\nfn c() {}\n\n/// audit: hot\nfn d() {}\n");
        assert!(f.fn_marker("hot", 1), "marker on the line above");
        assert!(f.fn_marker("pure", 3), "marker on the fn line itself");
        assert!(!f.fn_marker("hot", 6), "`hotfix` must not match `hot`");
        assert!(!f.fn_marker("hot", 9), "doc comments never carry markers");
        assert!(!f.fn_marker("pure", 1), "kinds do not cross-match");
    }

    #[test]
    fn markers_inventory_reports_pass_and_reason() {
        let f = lib("// audit: allow(cast) — exact below 2^24\nfn a() {}\n\
             // audit: allow(deadpub)\nfn b() {}\n\
             // audit: allow(bogus) — whatever\nfn c() {}\n\
             fn d() { let s = \"audit: allow(cast) — in a string\"; }\n");
        let ms = f.markers();
        assert_eq!(ms.len(), 3, "{ms:?}");
        assert_eq!((ms[0].line, ms[0].pass.as_str(), ms[0].has_reason), (0, "cast", true));
        assert_eq!((ms[1].line, ms[1].pass.as_str(), ms[1].has_reason), (2, "deadpub", false));
        assert_eq!((ms[2].line, ms[2].pass.as_str(), ms[2].has_reason), (4, "bogus", true));
    }

    #[test]
    fn disjoint_marker_window_name_and_reason() {
        let f = lib("// audit: disjoint(tasks) — bands split via split_at_mut\nfn a() {}\n\
             fn b() {} // audit: disjoint(tasks) — per-task rows\n\
             // audit: disjoint(tasks)\nfn c() {}\n\
             // audit: disjoint(rows) — different name\nfn d() {}\n\
             /// audit: disjoint(tasks) — doc mention\nfn e() {}\n");
        assert!(f.disjoint_marker("tasks", 1), "marker on the line above");
        assert!(f.disjoint_marker("tasks", 2), "marker on the line itself");
        assert!(!f.disjoint_marker("tasks", 4), "reason is mandatory");
        assert!(!f.disjoint_marker("tasks", 6), "names must match");
        assert!(!f.disjoint_marker("tasks", 8), "doc comments never carry markers");
        let ms = f.disjoint_markers();
        assert_eq!(ms.len(), 4, "{ms:?}");
        assert_eq!((ms[0].line, ms[0].what.as_str(), ms[0].has_reason), (0, "tasks", true));
        assert_eq!((ms[2].line, ms[2].what.as_str(), ms[2].has_reason), (3, "tasks", false));
        assert_eq!(ms[3].what, "rows");
    }

    #[test]
    fn equivalent_marker_window_class_and_reason() {
        let f = lib(
            "// audit: equivalent(arith-swap) — saturating add, swap is identity here\nfn a() {}\n\
             fn b() {} // audit: equivalent(cmp-flip) — loop is empty either way\n\
             // audit: equivalent(arith-swap)\nfn c() {}\n\
             /// audit: equivalent(arith-swap) — doc mention\nfn d() {}\n",
        );
        assert!(f.equivalent_marker("arith-swap", 1), "marker on the line above");
        assert!(f.equivalent_marker("cmp-flip", 2), "marker on the line itself");
        assert!(!f.equivalent_marker("arith-swap", 4), "reason is mandatory");
        assert!(!f.equivalent_marker("cmp-flip", 1), "classes must match");
        assert!(!f.equivalent_marker("arith-swap", 6), "doc comments never carry markers");
        let ms = f.equivalent_markers();
        assert_eq!(ms.len(), 3, "{ms:?}");
        assert_eq!((ms[0].line, ms[0].class.as_str(), ms[0].has_reason), (0, "arith-swap", true));
        assert_eq!((ms[1].line, ms[1].class.as_str(), ms[1].has_reason), (2, "cmp-flip", true));
        assert_eq!((ms[2].line, ms[2].class.as_str(), ms[2].has_reason), (3, "arith-swap", false));
    }

    #[test]
    fn doc_comment_mentions_are_not_markers() {
        let f = lib("/// Suppress with `// audit: allow(cast) — why`.\nfn a() {}\n\
             //! `// audit: allow(panicpath) — why` is the marker form.\n\
             // audit: allow(cast) — a real one\nfn b() {}\n");
        let ms = f.markers();
        assert_eq!(ms.len(), 1, "{ms:?}");
        assert_eq!(ms[0].line, 3);
        assert!(!f.allow_marker("cast", 0), "doc mention must not suppress");
        assert!(f.allow_marker("cast", 4));
    }

    #[test]
    fn module_docs_detection() {
        assert!(lib("//! Docs.\nfn a() {}\n").has_module_docs());
        assert!(lib("\n#![allow(dead_code)]\n//! Docs.\n").has_module_docs());
        assert!(!lib("// plain comment\nfn a() {}\n").has_module_docs());
        assert!(!lib("fn a() {}\n").has_module_docs());
    }

    #[test]
    fn unsafe_keyword_found_outside_strings() {
        let f =
            lib("fn a() {\n    let s = \"unsafe\"; // unsafe in comment\n}\nunsafe fn b() {}\n");
        assert_eq!(f.unsafe_lines, vec![3]);
    }
}
