//! On-disk fixture workspace: seed one violation per workspace-level
//! pass (layering, panicpath, protocol, deadpub, syncfacade, lockorder,
//! blockinlock, unusedallow) in a temporary crate tree and assert the
//! full [`fcma_audit::audit`] pipeline — discovery, manifest parsing,
//! DESIGN.md contract parsing (including the §13 lock-order table),
//! call-graph construction — catches each one and nothing it shouldn't.
//!
//! The in-memory seeds in `self_clean.rs` cover the per-file passes;
//! this test covers the passes that need manifests and contracts on
//! disk. CI runs it as its own job so a regression in any one pass is
//! visible by name.

use std::fs;
use std::path::{Path, PathBuf};

use fcma_audit::Violation;

/// A scratch workspace under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("fcma-audit-fixture-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("create fixture dir");
        fs::write(&path, contents).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const DESIGN_MD: &str = "\
# Fixture design

## 12. Architecture contracts

| Crate | Allowed direct deps |
|---|---|
| `fcma-alpha` | (none) |
| `fcma-beta` | (none) |
| `fcma-cluster` | (none) |
| `fcma-gamma` | (none) |
| `fcma-hot` | (none) |
| `fcma-race` | (none) |

| Message | Payload fields | Meaning |
|---|---|---|
| `ToWorker::Task` | `task` | dispatch one task |
| `ToWorker::Shutdown` | (none) | drain and exit |
| `FromWorker::Done` | `worker`, `task` | scores for a task |

## 13. Concurrency model

### Lock order

| Rank | Lock | Protects |
|---|---|---|
| 1 | `shared` | the fixture's accumulator |
| 2 | `attempts` | the fixture's retry counters |

## 14. Hot-path contracts

### Hot functions

| Function | Where | Why it is hot |
|---|---|---|
| `table_hot` | `fcma-hot/src/lib.rs` | fixture: hot via the contracts table rather than a marker |

## 16. Atomics contracts

sites: 1

| Atomic | File | Role | Loads | Stores | Pairing |
|---|---|---|---|---|---|
";

/// Build the seeded workspace and run the audit once.
fn audited_fixture(tag: &str) -> (Fixture, Vec<Violation>) {
    let fx = Fixture::new(tag);
    fx.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fx.write("DESIGN.md", DESIGN_MD);

    // fcma-alpha: a deadpub orphan, a referenced fn, and a stale marker.
    fx.write(
        "crates/fcma-alpha/Cargo.toml",
        "[package]\nname = \"fcma-alpha\"\n\n[dependencies]\n",
    );
    fx.write(
        "crates/fcma-alpha/src/lib.rs",
        "//! Seeded: deadpub orphan and a stale allow marker.\n\
         \n\
         /// Referenced from fcma-beta, so live.\n\
         pub fn used() {}\n\
         \n\
         /// Nothing anywhere references this.\n\
         pub fn orphan() {}\n\
         \n\
         // audit: allow(cast) — seeded stale marker: no cast on any nearby line\n",
    );

    // fcma-beta: an undeclared dependency on fcma-alpha (manifest and
    // source), an undocumented panicking pub fn, and a documented one.
    fx.write(
        "crates/fcma-beta/Cargo.toml",
        "[package]\nname = \"fcma-beta\"\n\n[dependencies]\nfcma-alpha = { path = \"../fcma-alpha\" }\n",
    );
    fx.write(
        "crates/fcma-beta/src/lib.rs",
        "//! Seeded: layering breach and panic reachability.\n\
         \n\
         /// Calls across the forbidden edge.\n\
         pub fn call_alpha() {\n\
             fcma_alpha::used();\n\
         }\n\
         \n\
         /// Undocumented panic: indexing an arbitrary slice.\n\
         pub fn risky(v: &[f32]) -> f32 {\n\
             v[0]\n\
         }\n\
         \n\
         /// Same panic, but contracted.\n\
         ///\n\
         /// # Panics\n\
         /// If `v` is empty.\n\
         pub fn documented(v: &[f32]) -> f32 {\n\
             v[0]\n\
         }\n",
    );

    // fcma-cluster: protocol enums that violate the table, and a driver
    // whose match is not total.
    fx.write(
        "crates/fcma-cluster/Cargo.toml",
        "[package]\nname = \"fcma-cluster\"\n\n[dependencies]\n",
    );
    fx.write(
        "crates/fcma-cluster/src/lib.rs",
        "//! Seeded cluster crate.\npub mod driver;\npub mod protocol;\n",
    );
    fx.write(
        "crates/fcma-cluster/src/protocol.rs",
        "//! Seeded protocol: Done drops `task`, Rogue is undocumented.\n\
         \n\
         /// Master-to-worker messages.\n\
         pub enum ToWorker {\n\
             /// One task.\n\
             Task { task: usize },\n\
             /// Drain and exit.\n\
             Shutdown,\n\
         }\n\
         \n\
         /// Worker-to-master messages.\n\
         pub enum FromWorker {\n\
             /// Missing the `task` field the table requires.\n\
             Done { worker: usize },\n\
             /// Not documented in the table at all.\n\
             Rogue,\n\
         }\n",
    );
    fx.write(
        "crates/fcma-cluster/src/driver.rs",
        "//! Seeded driver: handles Task but never Shutdown.\n\
         \n\
         /// Non-total dispatch loop.\n\
         pub fn serve(msg: crate::protocol::ToWorker) {\n\
             match msg {\n\
                 crate::protocol::ToWorker::Task { task } => {\n\
                     let _ = task;\n\
                 }\n\
                 _ => {}\n\
             }\n\
         }\n",
    );

    // fcma-gamma: one violation per concurrency pass — a raw std::sync
    // primitive, a lock-order inversion against the §13 table, and a
    // channel receive while a declared lock is held.
    fx.write(
        "crates/fcma-gamma/Cargo.toml",
        "[package]\nname = \"fcma-gamma\"\n\n[dependencies]\n",
    );
    fx.write(
        "crates/fcma-gamma/src/lib.rs",
        "//! Seeded: raw sync primitive, rank inversion, blocking in lock.\n\
         \n\
         use std::sync::Mutex;\n\
         \n\
         /// Takes rank-1 `shared` while rank-2 `attempts` is held.\n\
         fn inverted() {\n\
             let a = attempts.lock();\n\
             let s = shared.lock();\n\
         }\n\
         \n\
         /// Receives on a channel while `shared` is held.\n\
         fn convoy() {\n\
             let g = shared.lock();\n\
             let m = rx.recv();\n\
         }\n",
    );

    // fcma-hot: one violation per §14 hot-path pass — a loop-resident
    // allocating callee (mismarked `pure`, proving pure is not an
    // allocation escape), induction-variable indexing, a serial float
    // fold, and a call to an unmarked helper.
    fx.write("crates/fcma-hot/Cargo.toml", "[package]\nname = \"fcma-hot\"\n\n[dependencies]\n");
    fx.write(
        "crates/fcma-hot/src/lib.rs",
        "//! Seeded: one violation per hot-path pass.\n\
         \n\
         /// Hot via the DESIGN.md table; its loop calls an allocating helper.\n\
         fn table_hot(n: usize) -> usize {\n\
             let mut total = 0usize;\n\
             for _i in 0..n {\n\
                 let v = alloc_helper();\n\
                 total += v.len();\n\
             }\n\
             total\n\
         }\n\
         \n\
         /// Deliberately mismarked: pure must not hide the allocation.\n\
         // audit: pure\n\
         fn alloc_helper() -> Vec<f32> {\n\
             vec![0.0; 4]\n\
         }\n\
         \n\
         /// Indexes by the induction variable in its innermost loop.\n\
         // audit: hot\n\
         fn hot_bounds(inp: &[f32]) -> f32 {\n\
             let mut best = 0.0f32;\n\
             for i in 0..inp.len() {\n\
                 best = best.max(inp[i]);\n\
             }\n\
             best\n\
         }\n\
         \n\
         /// Folds a float serially across its loop.\n\
         // audit: hot\n\
         fn hot_accum(xs: &[f32]) -> f32 {\n\
             let mut s = 0.0f32;\n\
             for x in xs {\n\
                 s += *x;\n\
             }\n\
             s\n\
         }\n\
         \n\
         /// Calls a helper that is neither hot nor pure.\n\
         // audit: hot\n\
         fn hot_callout(x: f32) -> f32 {\n\
             plain_helper(x)\n\
         }\n\
         \n\
         /// No markers at all.\n\
         fn plain_helper(x: f32) -> f32 {\n\
             x\n\
         }\n",
    );

    // fcma-race: one violation per race-detection pass — a `&mut`
    // capture escaping through `spawn`, a shared-struct field written
    // with an empty lockset, and an `Ordering::SeqCst` site with no
    // §16 contract row (the fixture table above is deliberately empty
    // but declares the matching `sites: 1` count).
    fx.write("crates/fcma-race/Cargo.toml", "[package]\nname = \"fcma-race\"\n\n[dependencies]\n");
    fx.write(
        "crates/fcma-race/src/lib.rs",
        "//! Seeded: one violation per race-detection pass.\n\
         \n\
         /// A `&mut` capture crossing the spawn boundary, unclassified.\n\
         fn escape_seed(total: &mut usize) {\n\
             spawn(move || {\n\
                 *total += 1;\n\
             });\n\
         }\n\
         \n\
         /// Shared (carries a Mutex) but `count` is written bare.\n\
         struct SharedCounts {\n\
             guard: Mutex<u32>,\n\
             count: usize,\n\
         }\n\
         \n\
         /// Writes `count` holding nothing.\n\
         fn bump(s: &mut SharedCounts) {\n\
             s.count += 1;\n\
         }\n\
         \n\
         /// Reads `count` holding nothing.\n\
         fn peek(s: &SharedCounts) -> usize {\n\
             s.count\n\
         }\n\
         \n\
         /// An ordering site the (empty) §16 table does not cover.\n\
         fn arm(flag: &AtomicBool) {\n\
             flag.store(true, Ordering::SeqCst);\n\
         }\n",
    );

    let violations = fcma_audit::audit(&fx.root).expect("fixture audit must run");
    (fx, violations)
}

fn hits<'a>(violations: &'a [Violation], pass: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.pass == pass).collect()
}

#[test]
fn layering_pass_fires_on_undeclared_dependency() {
    let (_fx, violations) = audited_fixture("layering");
    let lay = hits(&violations, "layering");
    assert!(
        lay.iter().any(|v| v.file == "crates/fcma-beta/Cargo.toml"
            && v.message.contains("`fcma-beta` → `fcma-alpha`")),
        "manifest edge not flagged: {lay:?}"
    );
    assert!(
        lay.iter()
            .any(|v| v.file == "crates/fcma-beta/src/lib.rs" && v.message.contains("fcma_alpha")),
        "source-level reference not flagged: {lay:?}"
    );
}

#[test]
fn panicpath_pass_fires_on_undocumented_panic_only() {
    let (_fx, violations) = audited_fixture("panicpath");
    let panics = hits(&violations, "panicpath");
    assert!(
        panics
            .iter()
            .any(|v| v.file == "crates/fcma-beta/src/lib.rs" && v.message.contains("`risky`")),
        "undocumented panicking fn not flagged: {panics:?}"
    );
    assert!(
        !panics.iter().any(|v| v.message.contains("`documented`")),
        "`# Panics` contract must excuse the fn: {panics:?}"
    );
}

#[test]
fn protocol_pass_fires_on_missing_field_variant_and_arm() {
    let (_fx, violations) = audited_fixture("protocol");
    let proto = hits(&violations, "protocol");
    assert!(
        proto.iter().any(|v| v.message.contains("`FromWorker::Done` must carry")
            || v.message.contains("must carry field `task`")),
        "missing `task` field not flagged: {proto:?}"
    );
    assert!(
        proto
            .iter()
            .any(|v| v.message.contains("`FromWorker::Rogue`")
                && v.message.contains("not documented")),
        "undocumented variant not flagged: {proto:?}"
    );
    assert!(
        proto.iter().any(
            |v| v.message.contains("`ToWorker::Shutdown`") && v.message.contains("not handled")
        ),
        "non-total driver match not flagged: {proto:?}"
    );
}

#[test]
fn deadpub_pass_fires_on_orphan_but_not_referenced_items() {
    let (_fx, violations) = audited_fixture("deadpub");
    let dead = hits(&violations, "deadpub");
    assert!(
        dead.iter()
            .any(|v| v.file == "crates/fcma-alpha/src/lib.rs" && v.message.contains("`orphan`")),
        "orphan pub fn not flagged: {dead:?}"
    );
    assert!(
        !dead.iter().any(|v| v.message.contains("`used`")),
        "cross-crate referenced fn must not be flagged: {dead:?}"
    );
}

#[test]
fn unusedallow_pass_fires_on_stale_marker() {
    let (_fx, violations) = audited_fixture("unusedallow");
    let stale = hits(&violations, "unusedallow");
    assert!(
        stale
            .iter()
            .any(|v| v.file == "crates/fcma-alpha/src/lib.rs" && v.message.contains("stale")),
        "stale marker not flagged: {stale:?}"
    );
}

#[test]
fn syncfacade_pass_fires_on_raw_std_sync_import() {
    let (_fx, violations) = audited_fixture("syncfacade");
    let sync = hits(&violations, "syncfacade");
    assert!(
        sync.iter()
            .any(|v| v.file == "crates/fcma-gamma/src/lib.rs"
                && v.message.contains("std::sync::Mutex")),
        "raw std::sync::Mutex import not flagged: {sync:?}"
    );
}

#[test]
fn lockorder_pass_fires_on_rank_inversion_from_design_table() {
    let (_fx, violations) = audited_fixture("lockorder");
    let order = hits(&violations, "lockorder");
    assert!(
        order.iter().any(|v| v.file == "crates/fcma-gamma/src/lib.rs"
            && v.message.contains("lock `shared` (rank 1)")
            && v.message.contains("inverts")),
        "rank inversion not flagged (is the §13 table parsed?): {order:?}"
    );
    assert!(
        !order.iter().any(|v| v.message.contains("`attempts` is not declared")),
        "declared locks must not be flagged as undeclared: {order:?}"
    );
}

#[test]
fn blockinlock_pass_fires_on_recv_while_lock_held() {
    let (_fx, violations) = audited_fixture("blockinlock");
    let block = hits(&violations, "blockinlock");
    assert!(
        block.iter().any(|v| v.file == "crates/fcma-gamma/src/lib.rs"
            && v.message.contains("`.recv()` can block")
            && v.message.contains("`shared`")),
        "channel receive under a held lock not flagged: {block:?}"
    );
}

#[test]
fn allocinloop_pass_fires_exactly_once_via_pure_callee() {
    let (_fx, violations) = audited_fixture("allocinloop");
    let alloc = hits(&violations, "allocinloop");
    assert_eq!(alloc.len(), 1, "exactly one seeded allocation: {alloc:?}");
    assert!(
        alloc[0].file == "crates/fcma-hot/src/lib.rs"
            && alloc[0].message.contains("call to `alloc_helper` allocates"),
        "loop-resident allocating callee not flagged through the pure marker: {alloc:?}"
    );
}

#[test]
fn boundsinloop_pass_fires_exactly_once_on_induction_indexing() {
    let (_fx, violations) = audited_fixture("boundsinloop");
    let bounds = hits(&violations, "boundsinloop");
    assert_eq!(bounds.len(), 1, "exactly one seeded induction index: {bounds:?}");
    assert!(
        bounds[0].file == "crates/fcma-hot/src/lib.rs"
            && bounds[0].message.contains("`inp[i]` indexes by the loop variable"),
        "induction-variable indexing not flagged: {bounds:?}"
    );
}

#[test]
fn accumorder_pass_fires_exactly_once_on_serial_float_fold() {
    let (_fx, violations) = audited_fixture("accumorder");
    let accum = hits(&violations, "accumorder");
    assert_eq!(accum.len(), 1, "exactly one seeded serial fold: {accum:?}");
    assert!(
        accum[0].file == "crates/fcma-hot/src/lib.rs"
            && accum[0].message.contains("float accumulator `s`"),
        "serial float fold not flagged: {accum:?}"
    );
}

#[test]
fn hotcallout_pass_fires_exactly_once_on_unmarked_callee() {
    let (_fx, violations) = audited_fixture("hotcallout");
    let callout = hits(&violations, "hotcallout");
    assert_eq!(callout.len(), 1, "exactly one seeded callout: {callout:?}");
    assert!(
        callout[0].file == "crates/fcma-hot/src/lib.rs"
            && callout[0].message.contains("calls `plain_helper`")
            && callout[0].message.contains("neither hot nor marked pure"),
        "unmarked callee not flagged: {callout:?}"
    );
}

#[test]
fn threadescape_pass_fires_exactly_once_on_escaping_mut_capture() {
    let (_fx, violations) = audited_fixture("threadescape");
    let esc = hits(&violations, "threadescape");
    assert_eq!(esc.len(), 1, "exactly one seeded escape: {esc:?}");
    assert!(
        esc[0].file == "crates/fcma-race/src/lib.rs" && esc[0].message.contains("`total`"),
        "escaping `&mut` capture not flagged: {esc:?}"
    );
}

#[test]
fn lockset_pass_fires_exactly_once_on_empty_lockset_write() {
    let (_fx, violations) = audited_fixture("lockset");
    let ls = hits(&violations, "lockset");
    assert_eq!(ls.len(), 1, "exactly one seeded empty-lockset write: {ls:?}");
    assert!(
        ls[0].file == "crates/fcma-race/src/lib.rs"
            && ls[0].message.contains("`count`")
            && ls[0].message.contains("`SharedCounts`"),
        "bare shared-field write not flagged: {ls:?}"
    );
}

#[test]
fn atomicorder_pass_fires_exactly_once_on_undeclared_site() {
    let (_fx, violations) = audited_fixture("atomicorder");
    let ao = hits(&violations, "atomicorder");
    assert_eq!(ao.len(), 1, "exactly one seeded undeclared site: {ao:?}");
    assert!(
        ao[0].file == "crates/fcma-race/src/lib.rs"
            && ao[0].message.contains("no DESIGN.md \u{a7}16 row"),
        "undeclared `Ordering::SeqCst` site not flagged: {ao:?}"
    );
}

#[test]
fn fixture_root_must_be_a_workspace() {
    let err = fcma_audit::audit(Path::new("/nonexistent/fixture-root"));
    assert!(err.is_err(), "a missing root must be an I/O error, not a clean pass");
}
