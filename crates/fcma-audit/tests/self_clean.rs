//! The audit tool's acceptance gate: the shipped tree must be clean,
//! seeded violations must be caught, and the DESIGN.md contracts the
//! passes depend on must parse from the shipped document.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn shipped_tree_is_clean() {
    let violations = fcma_audit::audit(&workspace_root()).expect("audit must run");
    assert!(
        violations.is_empty(),
        "shipped tree has {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_violations_are_caught() {
    use fcma_audit::graph::{Contracts, CrateGraph};
    use fcma_audit::passes::{Taxonomy, Workspace};
    use fcma_audit::source::{Role, SourceFile};

    // In-memory seeds for the per-file passes; the on-disk fixture
    // workspace test covers layering/protocol/deadpub separately.
    let seeded = vec![
        SourceFile::new(
            "crates/fcma-linalg/src/bad.rs",
            Some("fcma-linalg"),
            Role::Lib,
            "//! Seeded.\npub fn naughty(n: usize, o: Option<u8>) -> f32 {\n    \
             o.unwrap();\n    unsafe { std::hint::unreachable_unchecked() }\n    n as f32\n}\n",
        ),
        SourceFile::new(
            "crates/fcma-core/src/nodoc.rs",
            Some("fcma-core"),
            Role::Lib,
            "fn f() {}\n",
        ),
        SourceFile::new(
            "crates/fcma-core/src/rogue.rs",
            Some("fcma-core"),
            Role::Lib,
            "//! Seeded.\nfn f() {\n    let _s = span!(\"totally.undocumented\");\n}\n\
             // audit: allow(cast) — never consulted, so stale\n",
        ),
        SourceFile::new(
            "crates/fcma-cluster/src/rawsync.rs",
            Some("fcma-cluster"),
            Role::Lib,
            "//! Seeded.\nuse std::sync::Condvar;\nfn f() {}\n",
        ),
    ];
    let taxonomy = Taxonomy::from_design_md("## Observability\n`stage1.corr`\n")
        .expect("fixture taxonomy parses");
    let ws = Workspace::new(seeded, CrateGraph::default(), Contracts::default(), Some(taxonomy));
    let violations = ws.run_all();
    let passes_hit: std::collections::BTreeSet<&str> = violations.iter().map(|v| v.pass).collect();
    for expected in [
        "unsafe",
        "cast",
        "proptest",
        "moddoc",
        "tracename",
        "panicpath",
        "syncfacade",
        "unusedallow",
    ] {
        assert!(passes_hit.contains(expected), "pass `{expected}` did not fire: {violations:?}");
    }
}

#[test]
fn shipped_design_md_taxonomy_parses() {
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md"))
        .expect("DESIGN.md must be readable");
    let taxonomy = fcma_audit::passes::Taxonomy::from_design_md(&design)
        .expect("DESIGN.md must contain the §Observability taxonomy");
    // Spot-check contract names the report/CI checkers depend on.
    for name in [
        "cluster.dispatch",
        "cluster.tasks.dispatched",
        "cluster.condemn",
        "svm.smo.iterations_per_solve",
        "stage1.corr",
    ] {
        assert!(taxonomy.contains(name), "DESIGN.md taxonomy is missing `{name}`");
    }
}

#[test]
fn shipped_design_md_contracts_parse() {
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md"))
        .expect("DESIGN.md must be readable");
    let contracts = fcma_audit::graph::Contracts::from_design_md(&design);

    let layering = contracts.layering.expect("DESIGN.md §12 must declare the layering table");
    let kernels = layering.get("fcma-linalg").expect("layering table must cover fcma-linalg");
    assert_eq!(
        kernels.iter().collect::<Vec<_>>(),
        vec!["fcma-sync"],
        "fcma-linalg may depend on the concurrency facade (the §15 pool) and nothing else"
    );
    let cluster = layering.get("fcma-cluster").expect("layering table must cover fcma-cluster");
    assert!(cluster.contains("fcma-core"), "fcma-cluster must be allowed to use fcma-core");

    let protocol = contracts.protocol.expect("DESIGN.md §12 must declare the protocol table");
    let done = protocol
        .iter()
        .find(|e| e.enum_name == "FromWorker" && e.variant == "Done")
        .expect("protocol table must list FromWorker::Done");
    assert!(
        done.fields.iter().any(|f| f == "task"),
        "FromWorker::Done must carry `task` (exactly-once accounting)"
    );

    let locks = contracts.lock_order.expect("DESIGN.md §13 must declare the lock-order table");
    assert_eq!(
        locks,
        vec!["deque".to_owned(), "region".to_owned(), "attempts".to_owned()],
        "the shipped lock ranking the lockorder pass enforces"
    );

    let hot = contracts.hot_fns.expect("DESIGN.md §14 must declare the hot-functions table");
    for name in ["syrk_panel_scratch", "gemm_blocked_scratch", "accumulate_panel", "splitmix"] {
        assert!(hot.iter().any(|h| h == name), "§14 hot table must list `{name}`, got {hot:?}");
    }
}

#[test]
fn hot_passes_are_not_vacuous_on_the_shipped_tree() {
    // The shipped tree audits clean, but only because the kernels obey
    // the §14 contracts — not because nothing is hot. Re-run the four
    // hot-path passes over the real workspace model with a seeded file
    // added, and require each to fire: the contracts and markers in the
    // shipped DESIGN.md/sources are what arm them.
    use fcma_audit::passes::{check_accumorder, check_allocinloop, check_boundsinloop};
    use fcma_audit::source::{Role, SourceFile};

    let ws = fcma_audit::analyze(&workspace_root()).expect("analyze must run");
    assert!(
        ws.contracts.hot_fns.is_some(),
        "shipped DESIGN.md must arm the hot-path passes via §14"
    );

    let seeded = SourceFile::new(
        "crates/fcma-linalg/src/seeded_hot.rs",
        Some("fcma-linalg"),
        Role::Lib,
        "//! Seeded.\n// audit: hot\nfn seeded_hot(xs: &[f32], out: &mut [f32]) -> f32 {\n    \
         let mut s = 0.0f32;\n    for i in 0..xs.len() {\n        let v = vec![0.0f32; 1];\n        \
         s += xs[i] + v[0];\n        out[i] = s;\n    }\n    s\n}\n",
    );
    let mut files = ws.files;
    files.push(seeded);
    let ws = fcma_audit::passes::Workspace::new(files, ws.crates, ws.contracts, ws.taxonomy);
    assert!(!check_allocinloop(&ws).is_empty(), "allocinloop must fire on the seeded fn");
    assert!(!check_boundsinloop(&ws).is_empty(), "boundsinloop must fire on the seeded fn");
    assert!(!check_accumorder(&ws).is_empty(), "accumorder must fire on the seeded fn");
}

#[test]
fn missing_root_is_an_error_not_a_pass() {
    let err = fcma_audit::audit(Path::new("/nonexistent/fcma-root"));
    assert!(err.is_err());
}
