//! Lexer/parser edge cases over on-disk fixtures: raw strings, nested
//! block comments, and multi-line macro invocations. Each fixture is a
//! real Rust-shaped file (kept as `.txt` so cargo never compiles it)
//! pulled in with `include_str!`, so the bytes the lexer sees are
//! exactly the bytes a contributor would write.

use fcma_audit::lexer::scan;
use fcma_audit::parser::parse;
use fcma_audit::source::{Role, SourceFile};

const RAW_STRINGS: &str = include_str!("fixtures/raw_strings.rs.txt");
const NESTED_COMMENTS: &str = include_str!("fixtures/nested_comments.rs.txt");
const MULTILINE_MACRO: &str = include_str!("fixtures/multiline_macro.rs.txt");

/// Every fixture must scrub to the same line count it came in with —
/// diagnostics point at lines, so the lexer may never add or drop one.
#[test]
fn scrubbing_preserves_line_counts() {
    for (name, text) in [
        ("raw_strings", RAW_STRINGS),
        ("nested_comments", NESTED_COMMENTS),
        ("multiline_macro", MULTILINE_MACRO),
    ] {
        let s = scan(text);
        let raw_count = text.lines().count();
        assert_eq!(s.raw_lines.len(), raw_count, "{name}: raw_lines");
        assert_eq!(s.code_lines.len(), raw_count, "{name}: code_lines");
        assert_eq!(s.comment_lines.len(), raw_count, "{name}: comment_lines");
    }
}

#[test]
fn raw_string_contents_never_reach_code_lines() {
    let s = scan(RAW_STRINGS);
    let code = s.code_lines.join("\n");
    assert!(!code.contains("unwrap"), "raw-string `.unwrap()` leaked into code:\n{code}");
    assert!(!code.contains("unsafe"), "raw-string `unsafe` leaked into code:\n{code}");
    assert!(!code.contains("as f32"), "raw-string cast leaked into code:\n{code}");
    assert!(!code.contains("expect"), "multi-line raw-string `.expect` leaked:\n{code}");
    // The code around the literals survives.
    assert!(code.contains("pub fn bait"), "code before raw strings lost:\n{code}");
    assert!(code.contains("pub fn after"), "code after raw strings lost:\n{code}");
}

#[test]
fn marker_inside_string_literal_is_not_a_marker() {
    let f = SourceFile::new("crates/x/src/lib.rs", Some("x"), Role::Lib, RAW_STRINGS);
    assert!(
        f.markers().is_empty(),
        "a marker spelled inside a string literal must not register: {:?}",
        f.markers()
    );
}

#[test]
fn nested_block_comments_scrub_at_every_depth() {
    let s = scan(NESTED_COMMENTS);
    let code = s.code_lines.join("\n");
    assert!(!code.contains("unwrap"), "depth-2 comment leaked into code:\n{code}");
    assert!(!code.contains("unsafe"), "depth-3 comment leaked into code:\n{code}");
    assert!(!code.contains("as f32"), "multi-line nested comment leaked:\n{code}");
    assert!(code.contains("pub fn visible"), "code between comments lost:\n{code}");
    // The comment text lands in comment_lines instead.
    let comments = s.comment_lines.join("\n");
    assert!(comments.contains("deepest unsafe"), "nested comment text not captured");
}

#[test]
fn multiline_macros_do_not_confuse_the_item_parser() {
    let p = parse(&scan(MULTILINE_MACRO));
    let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
    assert!(names.contains(&"caller"), "fn before the macros not parsed: {names:?}");
    assert!(names.contains(&"trailing"), "fn after the macros not parsed: {names:?}");
    assert!(
        !names.contains(&"decoy"),
        "`fn decoy()` inside a macro string must not parse as an item: {names:?}"
    );
    // `trailing` indexes a slice, and the parser must still see that
    // source through the macro noise above it.
    let trailing = p.fns.iter().find(|f| f.name == "trailing").expect("trailing parsed");
    assert!(
        !trailing.sources.is_empty(),
        "indexing panic source after multi-line macros not recorded"
    );
}
