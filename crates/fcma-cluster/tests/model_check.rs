//! Model-checking the cluster scheduler with `fcma-mc`.
//!
//! Two halves, mirroring how a model checker earns its keep:
//!
//! 1. **Re-find a real historical bug.** The fixture below is the
//!    stranding bug the driver shipped with before fault tolerance was
//!    reworked: the master shut a worker down as soon as the task queue
//!    looked empty, so a late `Failed` message could requeue a task with
//!    no live worker left to run it. The bug only bites under one
//!    message ordering (`Done` processed before `Failed`) — invisible to
//!    ordinary tests, found by the DFS in a handful of executions, and
//!    reproducible from the printed schedule alone.
//! 2. **Clean exploration of the shipped driver.** The real
//!    `run_cluster_with` master loop, two workers, four tasks, every
//!    interleaving within the preemption bound: no deadlock, no lost
//!    wakeup, no double completion.

use std::sync::Arc;

use fcma_cluster::{run_cluster_with, ClusterConfig};
use fcma_core::{TaskContext, TaskControls, TaskExecutor, VoxelScore, VoxelTask};
use fcma_mc::{check, check_random, replay, Config, FailureKind, Outcome};
use fcma_sync::channel::{unbounded, Sender};
use fcma_sync::thread;

// ---------------------------------------------------------------------------
// Part 1: the known-bad fixture driver (deliberately reverted logic).
// ---------------------------------------------------------------------------

/// Worker → master messages of the mini-driver.
enum FromWorker {
    Done { worker: usize, task: usize },
    Failed { worker: usize, task: usize },
}

/// Master → worker messages of the mini-driver.
enum ToWorker {
    /// Run task `task`; `attempt` is the per-task dispatch count.
    Task {
        task: usize,
        attempt: usize,
    },
    Shutdown,
}

/// A mini master–worker driver with the historical stranding bug: on
/// `Done`, if the queue is empty the finishing worker is shut down —
/// even though another worker may still fail and requeue its task.
///
/// Script: two tasks, two workers. Task 0's first attempt always fails
/// (the worker then dies, like a crashed node); every other dispatch
/// succeeds. Under the `Failed`-first ordering the retry goes to the
/// still-live worker 1 and the run completes. Under the `Done`-first
/// ordering worker 1 has already been shut down when the retry is
/// queued, and the master waits forever.
fn stranding_fixture() {
    let total_tasks = 2usize;
    let (to_master_tx, to_master_rx) = unbounded::<FromWorker>();

    let mut workers: Vec<Option<Sender<ToWorker>>> = Vec::new();
    for wid in 0..2usize {
        let (tx, rx) = unbounded::<ToWorker>();
        let master = to_master_tx.clone();
        thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    ToWorker::Task { task, attempt } => {
                        if task == 0 && attempt == 0 {
                            // Scripted crash: report and die.
                            let _ = master.send(FromWorker::Failed { worker: wid, task });
                            return;
                        }
                        if master.send(FromWorker::Done { worker: wid, task }).is_err() {
                            return;
                        }
                    }
                    ToWorker::Shutdown => return,
                }
            }
        });
        workers.push(Some(tx));
    }
    // The master keeps its sender clone alive for the whole run (the
    // historical driver did too), so a stranded run blocks in `recv`
    // instead of observing a disconnect.
    let _master_tx = to_master_tx;

    let mut queue: Vec<usize> = vec![0, 1];
    let mut attempts = [0usize; 2];
    let mut busy = [false; 2];
    let mut done = [false; 2];

    let dispatch_to = |workers: &mut Vec<Option<Sender<ToWorker>>>,
                       busy: &mut [bool; 2],
                       attempts: &mut [usize; 2],
                       queue: &mut Vec<usize>| {
        while let Some(&task) = queue.first() {
            let Some(wid) = (0..2).find(|&w| workers[w].is_some() && !busy[w]) else {
                return;
            };
            queue.remove(0);
            let attempt = attempts[task];
            attempts[task] += 1;
            if let Some(tx) = &workers[wid] {
                if tx.send(ToWorker::Task { task, attempt }).is_err() {
                    workers[wid] = None;
                    queue.insert(0, task);
                    continue;
                }
            }
            busy[wid] = true;
        }
    };

    dispatch_to(&mut workers, &mut busy, &mut attempts, &mut queue);
    while done.iter().filter(|&&d| d).count() < total_tasks {
        match to_master_rx.recv() {
            Ok(FromWorker::Done { worker, task }) => {
                done[task] = true;
                busy[worker] = false;
                if queue.is_empty() {
                    // THE BUG (reverted fix): the queue being empty does
                    // not mean the work is done — a still-running task
                    // can fail and need this worker.
                    if let Some(tx) = workers[worker].take() {
                        let _ = tx.send(ToWorker::Shutdown);
                    }
                } else {
                    dispatch_to(&mut workers, &mut busy, &mut attempts, &mut queue);
                }
            }
            Ok(FromWorker::Failed { worker, task }) => {
                workers[worker] = None; // the worker died with its task
                queue.push(task);
                dispatch_to(&mut workers, &mut busy, &mut attempts, &mut queue);
            }
            Err(_) => return, // every worker gone; the fixture is done for
        }
    }
    for w in &mut workers {
        if let Some(tx) = w.take() {
            let _ = tx.send(ToWorker::Shutdown);
        }
    }
}

#[test]
fn dfs_refinds_the_historical_stranding_bug() {
    let cfg = Config::default();
    let outcome = check(&cfg, stranding_fixture);
    let failure = outcome.failure().expect(
        "the stranding bug must be found: Done-before-Failed shuts down the last live worker",
    );
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "the stranding bug is a deadlock (master waits forever), got: {failure}"
    );
    assert!(!failure.schedule.is_empty(), "the counterexample must be replayable");
    // The printed report is the artifact CI archives: kind, schedule,
    // and the decision-by-decision trace.
    eprintln!("stranding-bug counterexample:\n{failure}");

    // The schedule alone reproduces the deadlock.
    let replayed = replay(&cfg, &failure.schedule, stranding_fixture);
    let refailure = replayed.failure().expect("replay must reproduce the deadlock");
    assert!(
        matches!(refailure.kind, FailureKind::Deadlock { .. }),
        "replay must reproduce the same defect class, got: {refailure}"
    );
}

#[test]
fn random_walks_also_find_the_stranding_bug() {
    let cfg = Config { max_executions: 512, ..Config::default() };
    let outcome = check_random(&cfg, 0x5eed, stranding_fixture);
    assert!(
        outcome.failure().is_some(),
        "512 seeded random walks should stumble into the Done-first ordering"
    );
}

// ---------------------------------------------------------------------------
// Part 2: bounded exploration of the shipped driver.
// ---------------------------------------------------------------------------

/// Instant executor: fabricated (but well-formed) scores, no linear
/// algebra. The model checker explores the *scheduler*, not the math.
struct StubExecutor;

impl TaskExecutor for StubExecutor {
    fn name(&self) -> &'static str {
        "stub"
    }

    fn process_grouped(
        &self,
        _ctx: &TaskContext,
        task: VoxelTask,
        _groups: Option<&[usize]>,
    ) -> Vec<VoxelScore> {
        (task.start..task.start + task.count)
            .map(|voxel| VoxelScore { voxel, accuracy: 0.5 })
            .collect()
    }

    fn process_with_controls(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
        _controls: &TaskControls,
    ) -> Vec<VoxelScore> {
        self.process_grouped(ctx, task, groups)
    }
}

/// A tiny context for the shipped-driver exploration. Built once,
/// outside the checked closure (generation draws from a seeded RNG and
/// is deterministic, but there is no reason to re-run it per schedule).
fn tiny_ctx() -> TaskContext {
    let mut cfg = fcma_fmri::presets::tiny();
    cfg.n_voxels = 16;
    cfg.n_informative = 4;
    let (data, _) = cfg.generate();
    TaskContext::full(&data)
}

#[test]
fn shipped_driver_is_clean_at_two_workers_four_tasks() {
    let ctx = tiny_ctx();
    let cfg = Config { max_executions: 20_000, ..Config::default() };
    let outcome = check(&cfg, move || {
        // 16 voxels / task_size 4 = 4 tasks on 2 workers.
        let cluster = ClusterConfig::new(2, 4);
        let run = run_cluster_with(&ctx, Arc::new(StubExecutor), &cluster)
            .expect("a healthy run must complete under every schedule");
        assert_eq!(run.scores.len(), 16, "every voxel scored");
        assert_eq!(run.requeued_tasks, 0);
        assert!(run.failed_workers.is_empty());
    });
    match outcome {
        Outcome::Pass { executions, complete } => {
            eprintln!("shipped driver: {executions} executions explored (complete: {complete})");
            assert!(executions >= 1000, "the exploration budget must buy real coverage");
        }
        Outcome::Fail(failure) => panic!("shipped driver failed under model checking:\n{failure}"),
    }
}

#[test]
fn shipped_driver_survives_seeded_random_walks() {
    let ctx = tiny_ctx();
    let cfg = Config { max_executions: 200, max_preemptions: 4, ..Config::default() };
    let outcome = check_random(&cfg, 0xfc3a_0001, move || {
        let cluster = ClusterConfig::new(3, 4);
        let run = run_cluster_with(&ctx, Arc::new(StubExecutor), &cluster)
            .expect("a healthy run must complete under every schedule");
        assert_eq!(run.scores.len(), 16);
    });
    assert!(
        outcome.failure().is_none(),
        "random walks over 3 workers must stay clean: {:?}",
        outcome.failure().map(ToString::to_string)
    );
}
