//! Chaos property test: for arbitrary seeded fault plans and cluster
//! shapes, a sweep either completes with every voxel scored exactly once
//! or returns a typed [`ClusterError`] — it never panics, never
//! duplicates a voxel, and never leaves a gap.
//!
//! The CI chaos suite runs this file under several fixed
//! `FCMA_CHAOS_SEED` values; the env seed is folded into every generated
//! seed so each CI leg explores a distinct, reproducible slice of the
//! fault space.

use fcma_cluster::{run_cluster_with, ChaosExecutor, ClusterConfig, ClusterError, FaultPlan};
use fcma_core::{OptimizedExecutor, TaskContext};
use fcma_fmri::presets;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const N_VOXELS: usize = 32;

/// One shared tiny dataset: chaos runs vary the scheduler, not the data.
fn ctx() -> &'static TaskContext {
    static CTX: OnceLock<TaskContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let mut cfg = presets::tiny();
        cfg.n_voxels = N_VOXELS;
        cfg.n_informative = 8;
        let (d, _) = cfg.generate();
        TaskContext::full(&d)
    })
}

/// CI matrix seed, folded into every generated plan seed.
fn env_seed() -> u64 {
    std::env::var("FCMA_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// The core invariant: run under the plan and check exactly-once
/// coverage on success, typed errors on failure.
fn check_chaos_run(seed: u64, n_workers: usize, task_size: usize, panic_pm: u16, repeat_pm: u16) {
    let ctx = ctx();
    let plan = FaultPlan::seeded(seed, N_VOXELS, task_size, panic_pm, repeat_pm, 100);
    let exec: Arc<dyn fcma_core::TaskExecutor> =
        Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan));
    let cfg = ClusterConfig { n_workers, task_size, retry_budget: 2, ..Default::default() };
    match run_cluster_with(ctx, exec, &cfg) {
        Ok(run) => {
            assert_eq!(run.scores.len(), N_VOXELS, "seed {seed}: wrong score count");
            for (i, s) in run.scores.iter().enumerate() {
                assert_eq!(s.voxel, i, "seed {seed}: voxel {i} missing or duplicated");
            }
        }
        // Losing every worker (small clusters under heavy panic rates) or
        // burning through a retry budget are legitimate, typed outcomes.
        Err(ClusterError::AllWorkersFailed { .. } | ClusterError::RetryBudgetExhausted { .. }) => {}
        Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exactly-once-or-typed-error over arbitrary seeds, worker counts,
    /// task sizes, and fault rates.
    #[test]
    fn chaos_runs_score_exactly_once_or_fail_typed(
        seed in any::<u64>(),
        n_workers in 1usize..7,
        task_size in 1usize..25,
        panic_pm in 0u16..500,
        repeat_pm in 0u16..400,
    ) {
        check_chaos_run(seed ^ env_seed(), n_workers, task_size, panic_pm, repeat_pm);
    }
}

/// The fixed-seed smoke leg the CI chaos matrix drives directly. The
/// sweep has 4 tasks and panics are non-repeating, so at most 4 workers
/// can die; with 5 workers every plan in the seed space must be fully
/// absorbed.
#[test]
fn fixed_seed_chaos_run_recovers() {
    let seed = env_seed().wrapping_add(42);
    let ctx = ctx();
    let plan = FaultPlan::seeded(seed, N_VOXELS, 8, 250, 0, 150);
    let exec: Arc<dyn fcma_core::TaskExecutor> =
        Arc::new(ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan));
    let cfg = ClusterConfig { n_workers: 5, task_size: 8, retry_budget: 3, ..Default::default() };
    let run = run_cluster_with(ctx, exec, &cfg)
        .unwrap_or_else(|e| panic!("seed {seed}: 5 workers must absorb a 25% panic rate: {e}"));
    for (i, s) in run.scores.iter().enumerate() {
        assert_eq!(s.voxel, i);
    }
}
