//! Checkpoint/resume for partial voxel sweeps.
//!
//! The master appends one self-checking record per completed task, so a
//! sweep killed at any point can resume from exactly the tasks already
//! scored. Accuracies are stored as raw IEEE-754 bit patterns, making a
//! resumed sweep **byte-identical** to an uninterrupted one (scores
//! depend only on the task, never on which worker ran it).
//!
//! Format (text, line-oriented):
//!
//! ```text
//! fcma-checkpoint v1 voxels=<n> task_size=<s>
//! task <start> <count>
//! <voxel> <accuracy-bits-as-16-hex-digits>     (count lines)
//! end <fnv1a64-of-the-record-body>
//! ```
//!
//! The loader verifies structure, voxel coverage, and the per-record
//! checksum; any violation inside a complete record is rejected as
//! [`CheckpointError::Corrupt`]. A partial record at end-of-file (the
//! writer died mid-append) is *dropped*, not rejected — that is the
//! normal shape of a killed sweep.

use crate::error::CheckpointError;
use fcma_core::{VoxelScore, VoxelTask};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

const MAGIC: &str = "fcma-checkpoint v1";

/// One completed task and its scores, as recorded on disk.
#[derive(Debug, Clone)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct TaskRecord {
    /// The task this record covers.
    pub task: VoxelTask,
    /// Scores for every voxel of the task, in voxel order.
    pub scores: Vec<VoxelScore>,
}

/// A parsed checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Total voxels of the sweep this checkpoint belongs to.
    pub n_voxels: usize,
    /// Task size of the sweep this checkpoint belongs to.
    pub task_size: usize,
    /// Completed tasks, in file order.
    pub tasks: Vec<TaskRecord>,
    /// Whether a trailing partial record was dropped during parsing.
    pub truncated_tail: bool,
}

impl Checkpoint {
    /// Parse and verify `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let file = std::fs::File::open(path)
            .map_err(|error| CheckpointError::Io { path: path.to_path_buf(), error })?;
        let mut lines = Vec::new();
        for line in BufReader::new(file).lines() {
            let line =
                line.map_err(|error| CheckpointError::Io { path: path.to_path_buf(), error })?;
            lines.push(line);
        }
        Self::parse(&lines)
    }

    /// Parse already-read lines (separated out for testability).
    // audit: allow(panicpath) — every line index is bounded by `i < lines.len()` in the loop
    fn parse(lines: &[String]) -> Result<Checkpoint, CheckpointError> {
        let header =
            lines.first().ok_or_else(|| CheckpointError::BadHeader { line: String::new() })?;
        let (n_voxels, task_size) = parse_header(header)?;
        let mut tasks: Vec<TaskRecord> = Vec::new();
        let mut truncated_tail = false;
        let mut i = 1usize;
        while i < lines.len() {
            match parse_record(lines, i) {
                Ok(Some((record, next))) => {
                    if tasks.iter().any(|t| t.task.start == record.task.start) {
                        return Err(CheckpointError::Corrupt {
                            line: i + 1,
                            reason: format!(
                                "duplicate record for task start {}",
                                record.task.start
                            ),
                        });
                    }
                    tasks.push(record);
                    i = next;
                }
                Ok(None) => {
                    // Partial trailing record: the writer was killed
                    // mid-append. Drop it and stop.
                    truncated_tail = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Checkpoint { n_voxels, task_size, tasks, truncated_tail })
    }

    /// Voxel scores of every recorded task, flattened in file order.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn all_scores(&self) -> Vec<VoxelScore> {
        self.tasks.iter().flat_map(|t| t.scores.iter().copied()).collect()
    }

    /// Starts of the recorded tasks.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn completed_starts(&self) -> Vec<usize> {
        self.tasks.iter().map(|t| t.task.start).collect()
    }
}

fn parse_header(line: &str) -> Result<(usize, usize), CheckpointError> {
    let bad = || CheckpointError::BadHeader { line: line.to_owned() };
    let rest = line.strip_prefix(MAGIC).ok_or_else(bad)?;
    let mut n_voxels = None;
    let mut task_size = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("voxels=") {
            n_voxels = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("task_size=") {
            task_size = v.parse().ok();
        } else {
            return Err(bad());
        }
    }
    match (n_voxels, task_size) {
        (Some(n), Some(s)) if s > 0 => Ok((n, s)),
        _ => Err(bad()),
    }
}

/// Parse one record starting at line index `i`. Returns `Ok(None)` when
/// the record is incomplete because the file ends early (clean
/// truncation), `Err` on any structural or checksum violation.
fn parse_record(
    lines: &[String],
    i: usize,
) -> Result<Option<(TaskRecord, usize)>, CheckpointError> {
    let corrupt = |line: usize, reason: String| CheckpointError::Corrupt { line: line + 1, reason };
    let head = &lines[i];
    let mut parts = head.split_whitespace();
    if parts.next() != Some("task") {
        return Err(corrupt(i, format!("expected `task <start> <count>`, got {head:?}")));
    }
    let (Some(start), Some(count)) = (
        parts.next().and_then(|s| s.parse::<usize>().ok()),
        parts.next().and_then(|s| s.parse::<usize>().ok()),
    ) else {
        return Err(corrupt(i, format!("malformed task line {head:?}")));
    };
    if count == 0 || parts.next().is_some() {
        return Err(corrupt(i, format!("malformed task line {head:?}")));
    }
    // A record needs `count` voxel lines plus the `end` line.
    if i + count + 1 >= lines.len() {
        return Ok(None);
    }
    let mut scores = Vec::with_capacity(count);
    let mut hasher = Fnv1a64::new();
    hasher.update(head.as_bytes());
    for (offset, line) in lines[i + 1..=i + count].iter().enumerate() {
        let ln = i + 1 + offset;
        let mut parts = line.split_whitespace();
        let (Some(voxel), Some(bits)) = (
            parts.next().and_then(|s| s.parse::<usize>().ok()),
            parts.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
        ) else {
            return Err(corrupt(ln, format!("malformed score line {line:?}")));
        };
        if parts.next().is_some() {
            return Err(corrupt(ln, format!("malformed score line {line:?}")));
        }
        let expected_voxel = start + offset;
        if voxel != expected_voxel {
            return Err(corrupt(
                ln,
                format!("voxel {voxel} out of order (expected {expected_voxel})"),
            ));
        }
        hasher.update(line.as_bytes());
        scores.push(VoxelScore { voxel, accuracy: f64::from_bits(bits) });
    }
    let end_line = &lines[i + count + 1];
    let Some(stored) = end_line.strip_prefix("end ") else {
        return Err(corrupt(i + count + 1, format!("expected `end <checksum>`, got {end_line:?}")));
    };
    let Ok(stored) = u64::from_str_radix(stored.trim(), 16) else {
        return Err(corrupt(i + count + 1, format!("unparseable checksum {end_line:?}")));
    };
    if stored != hasher.finish() {
        return Err(corrupt(
            i + count + 1,
            format!("checksum mismatch (stored {stored:016x}, computed {:016x})", hasher.finish()),
        ));
    }
    Ok(Some((TaskRecord { task: VoxelTask { start, count }, scores }, i + count + 2)))
}

/// Incremental checkpoint writer: one flushed record per completed task.
#[derive(Debug)]
pub(crate) struct CheckpointWriter {
    path: PathBuf,
    file: BufWriter<std::fs::File>,
}

impl CheckpointWriter {
    /// Create (truncate) `path` and write the sweep header.
    pub(crate) fn create(
        path: &Path,
        n_voxels: usize,
        task_size: usize,
    ) -> Result<Self, CheckpointError> {
        let map_io =
            |error: std::io::Error| CheckpointError::Io { path: path.to_path_buf(), error };
        let file = std::fs::File::create(path).map_err(map_io)?;
        let mut w = CheckpointWriter { path: path.to_path_buf(), file: BufWriter::new(file) };
        writeln!(w.file, "{MAGIC} voxels={n_voxels} task_size={task_size}").map_err(map_io)?;
        w.file.flush().map_err(map_io)?;
        Ok(w)
    }

    /// Open `path` for appending further records (resume into the same
    /// file). The caller is responsible for having validated the header
    /// via [`Checkpoint::load`].
    pub(crate) fn append(path: &Path) -> Result<Self, CheckpointError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|error| CheckpointError::Io { path: path.to_path_buf(), error })?;
        Ok(CheckpointWriter { path: path.to_path_buf(), file: BufWriter::new(file) })
    }

    /// Append one completed task. `scores` must cover the task's voxels
    /// in order (the scheduler guarantees this). Flushes before
    /// returning so a later kill cannot lose the record.
    pub(crate) fn record(
        &mut self,
        task: VoxelTask,
        scores: &[VoxelScore],
    ) -> Result<(), CheckpointError> {
        let map_io = |error: std::io::Error| CheckpointError::Io { path: self.path.clone(), error };
        let head = format!("task {} {}", task.start, task.count);
        let mut hasher = Fnv1a64::new();
        hasher.update(head.as_bytes());
        writeln!(self.file, "{head}").map_err(map_io)?;
        for s in scores {
            let line = format!("{} {:016x}", s.voxel, s.accuracy.to_bits());
            hasher.update(line.as_bytes());
            writeln!(self.file, "{line}").map_err(map_io)?;
        }
        writeln!(self.file, "end {:016x}", hasher.finish()).map_err(map_io)?;
        self.file.flush().map_err(map_io)
    }
}

/// FNV-1a (64-bit) — tiny, dependency-free integrity hash. This guards
/// against corruption, not adversaries.
struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    fn new() -> Self {
        Fnv1a64 { state: 0xcbf2_9ce4_8422_2325 }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fcma_checkpoint_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn sample_scores(task: VoxelTask) -> Vec<VoxelScore> {
        task.range().map(|v| VoxelScore { voxel: v, accuracy: 0.5 + v as f64 * 1e-3 }).collect()
    }

    #[test]
    fn roundtrip_preserves_bits_exactly() {
        let path = tmp("roundtrip.ckpt");
        let t0 = VoxelTask { start: 0, count: 4 };
        let t1 = VoxelTask { start: 4, count: 4 };
        let mut w = CheckpointWriter::create(&path, 8, 4).expect("create");
        w.record(t0, &sample_scores(t0)).expect("record");
        w.record(t1, &sample_scores(t1)).expect("record");
        drop(w);
        let ck = Checkpoint::load(&path).expect("load");
        assert_eq!((ck.n_voxels, ck.task_size), (8, 4));
        assert_eq!(ck.completed_starts(), vec![0, 4]);
        assert!(!ck.truncated_tail);
        let all = ck.all_scores();
        for (a, b) in all.iter().zip(sample_scores(t0).iter().chain(&sample_scores(t1))) {
            assert_eq!(a.voxel, b.voxel);
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }

    #[test]
    fn append_resumes_the_same_file() {
        let path = tmp("append.ckpt");
        let t0 = VoxelTask { start: 0, count: 2 };
        let t1 = VoxelTask { start: 2, count: 2 };
        let mut w = CheckpointWriter::create(&path, 4, 2).expect("create");
        w.record(t0, &sample_scores(t0)).expect("record");
        drop(w);
        let mut w = CheckpointWriter::append(&path).expect("append");
        w.record(t1, &sample_scores(t1)).expect("record");
        drop(w);
        assert_eq!(Checkpoint::load(&path).expect("load").completed_starts(), vec![0, 2]);
    }

    #[test]
    fn flipped_bit_is_rejected() {
        let path = tmp("corrupt.ckpt");
        let t0 = VoxelTask { start: 0, count: 3 };
        let mut w = CheckpointWriter::create(&path, 3, 3).expect("create");
        w.record(t0, &sample_scores(t0)).expect("record");
        drop(w);
        let text = std::fs::read_to_string(&path).expect("read");
        // Flip one hex digit of the second score line.
        let corrupted = text.replacen("3f", "3e", 1);
        assert_ne!(text, corrupted, "expected a 3f hex digit to corrupt");
        std::fs::write(&path, corrupted).expect("write");
        match Checkpoint::load(&path) {
            Err(CheckpointError::Corrupt { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn partial_tail_is_dropped_not_rejected() {
        let path = tmp("tail.ckpt");
        let t0 = VoxelTask { start: 0, count: 2 };
        let mut w = CheckpointWriter::create(&path, 6, 2).expect("create");
        w.record(t0, &sample_scores(t0)).expect("record");
        drop(w);
        // Simulate a kill mid-append: a task header with only one of two
        // score lines and no end marker.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("task 2 2\n2 3fe0000000000000\n");
        std::fs::write(&path, text).expect("write");
        let ck = Checkpoint::load(&path).expect("load");
        assert_eq!(ck.completed_starts(), vec![0]);
        assert!(ck.truncated_tail);
    }

    #[test]
    fn bad_header_and_structure_are_rejected() {
        let path = tmp("badheader.ckpt");
        std::fs::write(&path, "not a checkpoint\n").expect("write");
        assert!(matches!(Checkpoint::load(&path), Err(CheckpointError::BadHeader { .. })));

        let path = tmp("badrecord.ckpt");
        std::fs::write(&path, format!("{MAGIC} voxels=4 task_size=2\ngarbage line\nmore\nend 0\n"))
            .expect("write");
        assert!(matches!(Checkpoint::load(&path), Err(CheckpointError::Corrupt { .. })));

        let path = tmp("dup.ckpt");
        let t0 = VoxelTask { start: 0, count: 2 };
        let mut w = CheckpointWriter::create(&path, 4, 2).expect("create");
        w.record(t0, &sample_scores(t0)).expect("record");
        w.record(t0, &sample_scores(t0)).expect("record");
        drop(w);
        assert!(matches!(Checkpoint::load(&path), Err(CheckpointError::Corrupt { .. })));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("nonexistent.ckpt");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(Checkpoint::load(&path), Err(CheckpointError::Io { .. })));
    }
}
