//! Discrete-event cluster scaling model — regenerates Tables 3/4 and
//! Fig. 8.
//!
//! Scaling to 96 coprocessors cannot be *measured* on this machine, so the
//! elapsed-time-vs-nodes curves come from a discrete-event simulation of
//! the master–worker protocol with three cost components (constants
//! documented in DESIGN.md §6):
//!
//! 1. **data distribution** — the master unicasts the brain data to each
//!    node over the shared 10 GbE link (serialized at the master's NIC);
//! 2. **task dispatch** — a fixed per-task message latency, serialized at
//!    the master;
//! 3. **task compute** — per-task times supplied by the caller (derived
//!    from the `fcma-sim` time model), processed greedily: a finishing
//!    node immediately receives the next task.
//!
//! Load imbalance emerges naturally: with `T` tasks on `n` nodes, the
//! makespan is driven by `ceil(T/n)` waves, which is what bends the
//! speedup curve at high node counts (Fig. 8's 59.8×/73.5× at 96).

/// A node loss event for degraded-mode simulation: `node` stops
/// accepting work at `at_sec` and any task it is running at that moment
/// is lost and must be re-executed elsewhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// Index of the failing node.
    pub node: usize,
    /// Simulation time of the failure, seconds.
    pub at_sec: f64,
}

/// Cost parameters of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// Bytes of brain data each node receives up front. Zero for the
    /// online case, where the scanner streams data to every node as it is
    /// acquired (Fig. 1) and selection runs on already-resident data.
    pub data_bytes: f64,
    /// Effective link bandwidth at the master, bytes/second.
    pub link_bytes_per_sec: f64,
    /// Per-task dispatch latency at the master, seconds.
    pub dispatch_sec: f64,
    /// Fixed serial portion executed once regardless of node count
    /// (result collection, sorting, final classifier training).
    pub serial_sec: f64,
}

impl Default for ClusterModel {
    fn default() -> Self {
        ClusterModel {
            data_bytes: 0.0,
            // 10 GbE with protocol overhead ≈ 1 GB/s effective.
            link_bytes_per_sec: 1.0e9,
            dispatch_sec: 2.0e-3,
            serial_sec: 0.0,
        }
    }
}

impl ClusterModel {
    /// Simulate processing `task_secs` (one entry per task, any order)
    /// on `n_nodes` nodes. Returns elapsed wall-clock seconds.
    ///
    /// # Panics
    /// Panics if `n_nodes` is zero.
    pub fn simulate(&self, task_secs: &[f64], n_nodes: usize) -> f64 {
        assert!(n_nodes > 0, "simulate: need at least one node");
        // Phase 1: serialized unicast of the data to each node.
        let per_node_xfer = self.data_bytes / self.link_bytes_per_sec;
        let mut node_free: Vec<f64> =
            (0..n_nodes).map(|i| (i + 1) as f64 * per_node_xfer).collect();
        // Phase 2: greedy dynamic dispatch (the master serializes sends).
        let mut master_free = 0.0f64;
        for &t in task_secs {
            // Next node to become available.
            let (idx, &free) = node_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
                .expect("n_nodes > 0");
            let dispatch_done = master_free.max(free) + self.dispatch_sec;
            master_free = dispatch_done;
            node_free[idx] = dispatch_done + t;
        }
        node_free.into_iter().fold(0.0, f64::max) + self.serial_sec
    }

    /// Like [`Self::simulate`] but with per-node speed factors: node `i`
    /// executes a task of nominal `t` seconds in `t / speeds[i]`. Models
    /// mixed-generation clusters (the paper's nodes each carry two
    /// coprocessors; uneven hosts show up as speed skew).
    ///
    /// # Panics
    /// Panics if `speeds` is empty or contains a non-positive factor.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn simulate_heterogeneous(&self, task_secs: &[f64], speeds: &[f64]) -> f64 {
        assert!(!speeds.is_empty(), "simulate_heterogeneous: no nodes");
        assert!(speeds.iter().all(|&s| s > 0.0), "simulate_heterogeneous: speeds must be positive");
        let per_node_xfer = self.data_bytes / self.link_bytes_per_sec;
        let mut node_free: Vec<f64> =
            (0..speeds.len()).map(|i| (i + 1) as f64 * per_node_xfer).collect();
        let mut master_free = 0.0f64;
        for &t in task_secs {
            // Greedy: dispatch to the node that would *finish* earliest.
            let (idx, start, dur) = node_free
                .iter()
                .enumerate()
                .map(|(i, &free)| {
                    let start = master_free.max(free) + self.dispatch_sec;
                    (i, start, t / speeds[i])
                })
                .min_by(|a, b| (a.1 + a.2).partial_cmp(&(b.1 + b.2)).expect("no NaN times"))
                .expect("speeds non-empty");
            master_free = start;
            node_free[idx] = start + dur;
        }
        node_free.into_iter().fold(0.0, f64::max) + self.serial_sec
    }

    /// Degraded-mode simulation: like [`Self::simulate`], but nodes
    /// listed in `failures` die at their failure times. A task caught
    /// mid-execution on a dying node is requeued and re-dispatched (the
    /// threaded driver's recovery protocol), so failures cost both the
    /// lost node and the wasted partial work. Returns
    /// [`f64::INFINITY`] if every node dies with tasks still pending.
    ///
    /// # Panics
    /// Panics if `n_nodes` is zero or a failure names a node `>=
    /// n_nodes`.
    pub fn simulate_degraded(
        &self,
        task_secs: &[f64],
        n_nodes: usize,
        failures: &[NodeFailure],
    ) -> f64 {
        assert!(n_nodes > 0, "simulate_degraded: need at least one node");
        assert!(
            failures.iter().all(|f| f.node < n_nodes),
            "simulate_degraded: failure names a nonexistent node"
        );
        let fail_at = |node: usize| -> f64 {
            failures
                .iter()
                .filter(|f| f.node == node)
                .map(|f| f.at_sec)
                .fold(f64::INFINITY, f64::min)
        };
        let per_node_xfer = self.data_bytes / self.link_bytes_per_sec;
        let mut node_free: Vec<f64> =
            (0..n_nodes).map(|i| (i + 1) as f64 * per_node_xfer).collect();
        let mut dead = vec![false; n_nodes];
        let mut master_free = 0.0f64;
        let mut pending: std::collections::VecDeque<f64> = task_secs.iter().copied().collect();
        while let Some(t) = pending.pop_front() {
            // Next live node to become available.
            let Some((idx, &free)) = node_free
                .iter()
                .enumerate()
                .filter(|&(i, _)| !dead[i])
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
            else {
                return f64::INFINITY; // every node died with work pending
            };
            let dispatch_done = master_free.max(free) + self.dispatch_sec;
            master_free = dispatch_done;
            let would_finish = dispatch_done + t;
            let dies_at = fail_at(idx);
            if would_finish >= dies_at {
                // The node dies mid-task (or before starting it): the
                // partial work is lost, the task goes back in the queue,
                // and the master notices at the failure time.
                dead[idx] = true;
                node_free[idx] = dies_at.max(free);
                pending.push_back(t);
            } else {
                node_free[idx] = would_finish;
            }
        }
        // Dead nodes contribute their death time (when the master
        // noticed the loss); live nodes their last completion.
        node_free.into_iter().fold(0.0, f64::max) + self.serial_sec
    }

    /// Elapsed healthy-vs-degraded times for a sweep of node counts:
    /// `(nodes, healthy_sec, degraded_sec)` where the degraded column
    /// loses the first `failed_fraction` of nodes at `fail_at_sec`.
    pub fn degraded_sweep(
        &self,
        task_secs: &[f64],
        node_counts: &[usize],
        failed_fraction: f64,
        fail_at_sec: f64,
    ) -> Vec<(usize, f64, f64)> {
        node_counts
            .iter()
            .map(|&n| {
                let failed = ((n as f64 * failed_fraction) as usize).min(n.saturating_sub(1));
                let failures: Vec<NodeFailure> =
                    (0..failed).map(|node| NodeFailure { node, at_sec: fail_at_sec }).collect();
                (n, self.simulate(task_secs, n), self.simulate_degraded(task_secs, n, &failures))
            })
            .collect()
    }

    /// Elapsed times for a sweep of node counts.
    pub fn sweep(&self, task_secs: &[f64], node_counts: &[usize]) -> Vec<(usize, f64)> {
        node_counts.iter().map(|&n| (n, self.simulate(task_secs, n))).collect()
    }

    /// Speedups relative to one node (Fig. 8's y-axis).
    pub fn speedups(&self, task_secs: &[f64], node_counts: &[usize]) -> Vec<(usize, f64)> {
        let t1 = self.simulate(task_secs, 1);
        node_counts.iter().map(|&n| (n, t1 / self.simulate(task_secs, n))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, secs: f64) -> Vec<f64> {
        vec![secs; n]
    }

    #[test]
    fn one_node_is_sum_of_tasks_plus_overheads() {
        let m = ClusterModel { data_bytes: 1e9, ..Default::default() };
        let tasks = uniform(10, 1.0);
        let t = m.simulate(&tasks, 1);
        // 1s transfer + 10 tasks + 10 dispatches.
        assert!((t - (1.0 + 10.0 + 10.0 * 2.0e-3)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn perfect_divisible_work_scales_nearly_linearly() {
        let m = ClusterModel::default(); // no data transfer
        let tasks = uniform(960, 1.0);
        let t1 = m.simulate(&tasks, 1);
        let t96 = m.simulate(&tasks, 96);
        let speedup = t1 / t96;
        assert!(speedup > 80.0, "speedup {speedup}");
        assert!(speedup <= 96.0 + 1e-9);
    }

    #[test]
    fn wave_quantization_bends_the_curve() {
        let m = ClusterModel::default();
        // 100 tasks on 96 nodes: 2 waves — efficiency ≈ 100/(96·2).
        let tasks = uniform(100, 1.0);
        let t = m.simulate(&tasks, 96);
        assert!((t - 2.0).abs() < 0.1, "t = {t}");
        let t1 = m.simulate(&tasks, 1);
        let eff = t1 / t / 96.0;
        assert!((0.4..0.7).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn broadcast_cost_grows_with_nodes() {
        let m = ClusterModel { data_bytes: 0.5e9, ..Default::default() };
        let tasks = uniform(96, 0.01); // tiny compute: transfer-dominated
        let t8 = m.simulate(&tasks, 8);
        let t96 = m.simulate(&tasks, 96);
        assert!(t96 > t8, "transfer-bound time must grow: {t8} vs {t96}");
        // 96 nodes x 0.5 GB / 1 GB/s = 48 s of serialized unicast.
        assert!(t96 >= 48.0, "t96 = {t96}");
    }

    #[test]
    fn speedups_are_monotone_for_divisible_work() {
        let m = ClusterModel { data_bytes: 0.4e9, ..Default::default() };
        let tasks = uniform(2592, 2.0); // 18 folds x 144 tasks
        let nodes = [1usize, 8, 16, 32, 64, 96];
        let sp = m.speedups(&tasks, &nodes);
        for w in sp.windows(2) {
            assert!(w[1].1 > w[0].1, "speedup not monotone: {sp:?}");
        }
        // Near-linear at 96 with mild efficiency loss, as in Fig. 8.
        let (_, s96) = sp.last().copied().unwrap();
        assert!((50.0..96.0).contains(&s96), "96-node speedup {s96}");
    }

    #[test]
    fn heterogeneous_tasks_balance_dynamically() {
        let m = ClusterModel::default();
        // Two long tasks + many short ones: dynamic dispatch should
        // interleave so the makespan is near the critical path.
        let mut tasks = vec![5.0, 5.0];
        tasks.extend(uniform(20, 0.5));
        let t = m.simulate(&tasks, 4);
        // Critical path: a node running one long task (5s); the rest fill
        // elsewhere. Ideal ≈ max(5, 20/4·0.5 + 5/2...) ≈ 5s.
        assert!(t < 7.0, "makespan {t} suggests static-like imbalance");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_nodes() {
        let _ = ClusterModel::default().simulate(&[1.0], 0);
    }

    #[test]
    fn homogeneous_heterogeneous_agree() {
        let m = ClusterModel { data_bytes: 1e8, ..Default::default() };
        let tasks = uniform(50, 1.0);
        let a = m.simulate(&tasks, 4);
        let b = m.simulate_heterogeneous(&tasks, &[1.0; 4]);
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn faster_nodes_absorb_more_work() {
        let m = ClusterModel::default();
        let tasks = uniform(40, 1.0);
        // One 4x node + one 1x node: makespan should approach
        // total/(4+1) = 8 s rather than total/2 = 20 s.
        let t = m.simulate_heterogeneous(&tasks, &[4.0, 1.0]);
        assert!(t < 11.0, "heterogeneous makespan {t}");
        assert!(t >= 8.0 - 1e-6);
    }

    #[test]
    fn serial_tail_is_additive() {
        let m = ClusterModel { serial_sec: 2.0, ..Default::default() };
        let tasks = uniform(8, 1.0);
        let t = m.simulate(&tasks, 8);
        assert!(t >= 3.0, "serial tail missing: {t}");
    }

    #[test]
    #[should_panic(expected = "speeds must be positive")]
    fn rejects_nonpositive_speed() {
        let _ = ClusterModel::default().simulate_heterogeneous(&[1.0], &[1.0, 0.0]);
    }

    #[test]
    fn no_failures_matches_healthy_simulation() {
        let m = ClusterModel { data_bytes: 1e8, ..Default::default() };
        let tasks = uniform(50, 1.0);
        let a = m.simulate(&tasks, 4);
        let b = m.simulate_degraded(&tasks, 4, &[]);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn losing_nodes_mid_run_slows_the_sweep() {
        let m = ClusterModel::default();
        let tasks = uniform(64, 1.0);
        let healthy = m.simulate(&tasks, 8);
        // Half the cluster dies a quarter of the way through.
        let failures: Vec<NodeFailure> =
            (0..4).map(|node| NodeFailure { node, at_sec: healthy / 4.0 }).collect();
        let degraded = m.simulate_degraded(&tasks, 8, &failures);
        assert!(degraded > healthy, "degraded {degraded} vs healthy {healthy}");
        assert!(degraded.is_finite());
        // Surviving half should still finish in bounded time: worse than
        // healthy, far better than serial.
        let serial = m.simulate(&tasks, 1);
        assert!(degraded < serial, "degraded {degraded} vs serial {serial}");
    }

    #[test]
    fn total_loss_is_infinite() {
        let m = ClusterModel::default();
        let tasks = uniform(8, 1.0);
        let failures: Vec<NodeFailure> =
            (0..2).map(|node| NodeFailure { node, at_sec: 0.0 }).collect();
        assert!(m.simulate_degraded(&tasks, 2, &failures).is_infinite());
    }

    #[test]
    fn degraded_sweep_pairs_healthy_and_degraded() {
        let m = ClusterModel::default();
        let tasks = uniform(96, 1.0);
        let rows = m.degraded_sweep(&tasks, &[4, 8, 16], 0.25, 2.0);
        assert_eq!(rows.len(), 3);
        for (n, healthy, degraded) in rows {
            assert!(healthy > 0.0 && degraded.is_finite(), "n={n}");
            assert!(degraded >= healthy - 1e-9, "n={n}: {degraded} < {healthy}");
        }
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn rejects_failure_on_missing_node() {
        let _ = ClusterModel::default().simulate_degraded(
            &[1.0],
            2,
            &[NodeFailure { node: 5, at_sec: 0.0 }],
        );
    }
}
