//! Typed errors for cluster runs and checkpoint files.
//!
//! Every failure path of the scheduler surfaces here instead of
//! panicking: the paper's 96-coprocessor deployment treats node loss as
//! routine, so callers get a value they can retry, resume, or report —
//! never an abort of the whole sweep.

use fcma_core::VoxelTask;
use std::path::PathBuf;

/// Why a cluster sweep could not complete.
#[derive(Debug)]
pub enum ClusterError {
    /// `n_workers` was zero.
    NoWorkers,
    /// `task_size` was zero.
    ZeroTaskSize,
    /// Every worker died (panic or hang) with work still unfinished.
    AllWorkersFailed {
        /// Tasks not yet completed when the last worker was lost.
        unfinished_tasks: usize,
    },
    /// One task kept failing past its retry budget.
    RetryBudgetExhausted {
        /// The task that could not be completed.
        task: VoxelTask,
        /// Dispatch attempts consumed (first try + retries).
        attempts: usize,
    },
    /// The scheduler finished its protocol but the score set does not
    /// cover every voxel exactly once — an internal invariant breach
    /// reported as data rather than a panic.
    IncompleteSweep {
        /// Voxels actually scored.
        scored: usize,
        /// Voxels the context expected.
        expected: usize,
    },
    /// Reading or validating a checkpoint failed.
    Checkpoint(CheckpointError),
    /// A checkpoint belongs to a different sweep (voxel count or task
    /// size disagree with the current run).
    CheckpointMismatch {
        /// What the checkpoint header declares: `(n_voxels, task_size)`.
        found: (usize, usize),
        /// What the current run requires: `(n_voxels, task_size)`.
        expected: (usize, usize),
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoWorkers => write!(f, "cluster run needs at least one worker"),
            ClusterError::ZeroTaskSize => write!(f, "cluster run needs a positive task size"),
            ClusterError::AllWorkersFailed { unfinished_tasks } => {
                write!(f, "every worker died with {unfinished_tasks} task(s) unfinished")
            }
            ClusterError::RetryBudgetExhausted { task, attempts } => write!(
                f,
                "task [{}, {}) failed {attempts} time(s), exhausting its retry budget",
                task.start,
                task.start + task.count
            ),
            ClusterError::IncompleteSweep { scored, expected } => {
                write!(f, "sweep completed but scored {scored} of {expected} voxels")
            }
            ClusterError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ClusterError::CheckpointMismatch { found, expected } => write!(
                f,
                "checkpoint is for a different sweep: header says {} voxels / task size {}, \
                 this run has {} voxels / task size {}",
                found.0, found.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ClusterError {
    fn from(e: CheckpointError) -> Self {
        ClusterError::Checkpoint(e)
    }
}

/// Why a checkpoint file could not be read, written, or trusted.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error (path attached for context).
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The first line is not a recognized checkpoint header.
    BadHeader {
        /// What the first line actually said.
        line: String,
    },
    /// A record is structurally invalid or fails its checksum.
    Corrupt {
        /// 1-based line number of the offending content.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            CheckpointError::BadHeader { line } => {
                write!(f, "unrecognized checkpoint header {line:?}")
            }
            CheckpointError::Corrupt { line, reason } => {
                write!(f, "corrupt record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ClusterError::RetryBudgetExhausted {
            task: VoxelTask { start: 32, count: 16 },
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("[32, 48)") && s.contains('3'), "{s}");

        let c = ClusterError::Checkpoint(CheckpointError::Corrupt {
            line: 7,
            reason: "checksum mismatch".into(),
        });
        assert!(c.to_string().contains("line 7"), "{c}");
        assert!(std::error::Error::source(&c).is_some());
    }

    #[test]
    fn mismatch_reports_both_sides() {
        let e = ClusterError::CheckpointMismatch { found: (64, 8), expected: (128, 16) };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("128"), "{s}");
    }
}
