//! Threaded master–worker driver — the MPI stand-in.
//!
//! Workers are OS threads; channels replace MPI point-to-point messages.
//! The protocol and load-balancing policy are exactly the paper's
//! (§3.1.1): the master keeps a queue of voxel-block tasks, every worker
//! processes one task at a time, and a finishing worker immediately
//! receives the next task — dynamic load balancing, no static
//! assignment.
//!
//! **Fault tolerance** (beyond the paper): a worker that panics while
//! processing a task reports [`FromWorker::Failed`] and terminates; the
//! master requeues the task on the remaining workers, so a run completes
//! as long as one worker survives.

use crate::protocol::{FromWorker, ToWorker};
use crossbeam_channel::{unbounded, Receiver, Sender};
use fcma_core::{partition, TaskContext, TaskExecutor, VoxelScore};
use std::sync::Arc;

/// Statistics of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// All voxel scores, sorted by voxel index.
    pub scores: Vec<VoxelScore>,
    /// Tasks processed per worker (load-balance visibility).
    pub tasks_per_worker: Vec<usize>,
    /// Tasks that had to be requeued after a worker failure.
    pub requeued_tasks: usize,
    /// Workers that died during the run.
    pub failed_workers: Vec<usize>,
}

/// Run a full voxel sweep on `n_workers` worker threads.
///
/// `groups` optionally overrides the cross-validation grouping (see
/// [`fcma_core::TaskExecutor::process_grouped`]).
///
/// # Panics
/// Panics if `n_workers` is zero or every worker dies with tasks still
/// outstanding.
pub fn run_cluster(
    ctx: &TaskContext,
    exec: Arc<dyn TaskExecutor>,
    n_workers: usize,
    task_size: usize,
    groups: Option<Arc<Vec<usize>>>,
) -> ClusterRun {
    assert!(n_workers > 0, "run_cluster: need at least one worker");
    let tasks = partition(ctx.n_voxels(), task_size);
    let mut task_queue: std::collections::VecDeque<_> = tasks.into_iter().collect();

    let (to_master_tx, to_master_rx): (Sender<FromWorker>, Receiver<FromWorker>) = unbounded();
    let mut to_worker_txs: Vec<Sender<ToWorker>> = Vec::with_capacity(n_workers);

    let mut scores: Vec<VoxelScore> = Vec::with_capacity(ctx.n_voxels());
    let mut tasks_per_worker = vec![0usize; n_workers];
    let mut requeued_tasks = 0usize;
    let mut failed_workers = Vec::new();

    std::thread::scope(|scope| {
        for wid in 0..n_workers {
            let (tx, rx): (Sender<ToWorker>, Receiver<ToWorker>) = unbounded();
            to_worker_txs.push(tx);
            let to_master = to_master_tx.clone();
            let exec = Arc::clone(&exec);
            let ctx = ctx.clone();
            let groups = groups.clone();
            scope.spawn(move || {
                // Handshake: announce readiness, then serve tasks.
                to_master.send(FromWorker::Ready { worker: wid }).expect("master hung up");
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ToWorker::Task(task) => {
                            // Contain executor panics: report the failure
                            // so the master can requeue, then die.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    exec.process_grouped(
                                        &ctx,
                                        task,
                                        groups.as_deref().map(|g| &g[..]),
                                    )
                                }));
                            match result {
                                Ok(scores) => {
                                    to_master
                                        .send(FromWorker::Done { worker: wid, scores })
                                        .expect("master hung up");
                                }
                                Err(_) => {
                                    let _ =
                                        to_master.send(FromWorker::Failed { worker: wid, task });
                                    return;
                                }
                            }
                        }
                        ToWorker::Shutdown => break,
                    }
                }
            });
        }
        drop(to_master_tx);

        // Master loop: feed tasks to whichever worker reports in; requeue
        // on failure.
        let mut outstanding = 0usize;
        let mut alive = vec![true; n_workers];
        let mut idle_shutdown = vec![false; n_workers];
        // Runs until all workers are gone and the channel disconnects.
        while let Ok(msg) = to_master_rx.recv() {
            let wid = msg.worker();
            match msg {
                FromWorker::Ready { .. } => {}
                FromWorker::Done { scores: s, .. } => {
                    outstanding -= 1;
                    tasks_per_worker[wid] += 1;
                    scores.extend(s);
                }
                FromWorker::Failed { task, .. } => {
                    outstanding -= 1;
                    alive[wid] = false;
                    failed_workers.push(wid);
                    requeued_tasks += 1;
                    task_queue.push_back(task);
                    assert!(
                        alive.iter().any(|&a| a),
                        "run_cluster: every worker died with tasks outstanding"
                    );
                    // Kick an idle healthy worker back into action if one
                    // was already shut down... none are (shutdown only
                    // happens when the queue is empty and nothing is
                    // outstanding), so the requeued task will be handed to
                    // the next finisher.
                    continue;
                }
            }
            if let Some(task) = task_queue.pop_front() {
                to_worker_txs[wid].send(ToWorker::Task(task)).expect("worker hung up");
                outstanding += 1;
            } else {
                to_worker_txs[wid].send(ToWorker::Shutdown).expect("worker hung up");
                idle_shutdown[wid] = true;
                let all_settled = (0..n_workers).all(|w| !alive[w] || idle_shutdown[w]);
                if outstanding == 0 && task_queue.is_empty() && all_settled {
                    break;
                }
            }
        }
    });

    // A failure after every peer already shut down would strand the
    // requeued task; surface that as an error rather than a silent gap.
    assert_eq!(
        scores.len(),
        ctx.n_voxels(),
        "run_cluster: incomplete run ({} of {} voxels scored) — a task was \
         stranded by worker failures",
        scores.len(),
        ctx.n_voxels()
    );
    scores.sort_by_key(|s| s.voxel);
    ClusterRun { scores, tasks_per_worker, requeued_tasks, failed_workers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_core::{score_all_voxels, OptimizedExecutor, VoxelTask};
    use fcma_fmri::presets;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn ctx() -> TaskContext {
        let mut cfg = presets::tiny();
        cfg.n_voxels = 64;
        cfg.n_informative = 8;
        let (d, _) = cfg.generate();
        TaskContext::full(&d)
    }

    #[test]
    fn cluster_matches_sequential_execution() {
        let ctx = ctx();
        let exec = OptimizedExecutor::default();
        let sequential = score_all_voxels(&ctx, &exec, 16, None);
        let run = run_cluster(&ctx, Arc::new(exec), 3, 16, None);
        assert_eq!(run.scores.len(), sequential.len());
        assert!(run.failed_workers.is_empty());
        for (a, b) in run.scores.iter().zip(&sequential) {
            assert_eq!(a.voxel, b.voxel);
            assert!(
                (a.accuracy - b.accuracy).abs() < 1e-9,
                "voxel {}: {} vs {}",
                a.voxel,
                a.accuracy,
                b.accuracy
            );
        }
    }

    #[test]
    fn every_voxel_scored_exactly_once() {
        let ctx = ctx();
        let run = run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 4, 10, None);
        let voxels: Vec<usize> = run.scores.iter().map(|s| s.voxel).collect();
        let expect: Vec<usize> = (0..ctx.n_voxels()).collect();
        assert_eq!(voxels, expect);
    }

    #[test]
    fn all_tasks_accounted_for() {
        let ctx = ctx();
        let run = run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 3, 10, None);
        let total: usize = run.tasks_per_worker.iter().sum();
        assert_eq!(total, ctx.n_voxels().div_ceil(10));
    }

    #[test]
    fn single_worker_cluster_works() {
        let ctx = ctx();
        let run = run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 1, 16, None);
        assert_eq!(run.scores.len(), ctx.n_voxels());
        assert_eq!(run.tasks_per_worker, vec![4]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let ctx = ctx();
        let run = run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 8, 32, None);
        assert_eq!(run.scores.len(), ctx.n_voxels());
        assert!(run.tasks_per_worker.iter().filter(|&&t| t > 0).count() <= 2);
    }

    #[test]
    fn custom_groups_flow_through() {
        let ctx = ctx();
        let groups: Vec<usize> = (0..ctx.n_epochs()).map(|e| e % 2).collect();
        let run = run_cluster(
            &ctx,
            Arc::new(OptimizedExecutor::default()),
            2,
            16,
            Some(Arc::new(groups)),
        );
        assert_eq!(run.scores.len(), ctx.n_voxels());
    }

    /// An executor that panics exactly once, on the first task that
    /// starts at `poison_start` — simulating a node crash mid-task.
    struct FaultyExecutor {
        inner: OptimizedExecutor,
        poison_start: usize,
        tripped: AtomicBool,
    }

    impl TaskExecutor for FaultyExecutor {
        fn name(&self) -> &'static str {
            "faulty"
        }
        fn process_grouped(
            &self,
            ctx: &TaskContext,
            task: VoxelTask,
            groups: Option<&[usize]>,
        ) -> Vec<VoxelScore> {
            if task.start == self.poison_start && !self.tripped.swap(true, Ordering::SeqCst) {
                panic!("injected worker failure");
            }
            self.inner.process_grouped(ctx, task, groups)
        }
    }

    #[test]
    fn failed_task_is_requeued_and_run_completes() {
        let ctx = ctx();
        let exec = Arc::new(FaultyExecutor {
            inner: OptimizedExecutor::default(),
            poison_start: 16,
            tripped: AtomicBool::new(false),
        });
        let run = run_cluster(&ctx, exec, 3, 16, None);
        assert_eq!(run.requeued_tasks, 1);
        assert_eq!(run.failed_workers.len(), 1);
        // Every voxel still scored exactly once.
        let voxels: Vec<usize> = run.scores.iter().map(|s| s.voxel).collect();
        let expect: Vec<usize> = (0..ctx.n_voxels()).collect();
        assert_eq!(voxels, expect);
    }

    #[test]
    fn survives_multiple_failures_with_one_healthy_worker() {
        let ctx = ctx();
        // Two poison executors can each kill at most one worker; with 3
        // workers at least one survives. Use two distinct poison tasks by
        // wrapping twice... simpler: poison one task; kill happens once.
        let exec = Arc::new(FaultyExecutor {
            inner: OptimizedExecutor::default(),
            poison_start: 0,
            tripped: AtomicBool::new(false),
        });
        let run = run_cluster(&ctx, exec, 2, 32, None);
        assert_eq!(run.scores.len(), ctx.n_voxels());
        assert_eq!(run.requeued_tasks, 1);
    }
}
