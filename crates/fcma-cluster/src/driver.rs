//! Threaded master–worker scheduler — the MPI stand-in, grown into a
//! fault-tolerant subsystem.
//!
//! Workers are OS threads; channels replace MPI point-to-point messages.
//! The protocol and load-balancing policy are the paper's (§3.1.1): the
//! master keeps a queue of voxel-block tasks, every worker processes one
//! task at a time, and a finishing worker immediately receives the next
//! task — dynamic load balancing, no static assignment.
//!
//! **Fault tolerance** (beyond the paper):
//!
//! * a worker that panics reports [`FromWorker::Failed`] and dies; its
//!   task is requeued and re-dispatched to any still-idle worker —
//!   workers are never shut down while work is outstanding, so a late
//!   failure cannot strand a task;
//! * per-task **retry budgets** bound how often a task may be
//!   re-executed before the run aborts with a typed error;
//! * optional per-task **deadlines** detect *hung* (not just panicked)
//!   workers: an overdue worker is condemned (its [`fcma_core::CancelToken`]
//!   fires, its late results are discarded) and the task re-dispatched;
//! * optional **speculative re-execution** launches a duplicate copy of
//!   a straggling task on an idle worker — first valid result wins;
//! * optional **checkpointing** appends every completed task to a
//!   [`crate::checkpoint`] file, and a sweep can resume from one,
//!   producing byte-identical scores.
//!
//! Every failure path returns a [`ClusterError`]; the scheduler never
//! panics on worker misbehavior.

use crate::checkpoint::{Checkpoint, CheckpointWriter};
use crate::error::ClusterError;
use crate::protocol::{FromWorker, ToWorker};
use fcma_core::{
    partition, CancelToken, TaskContext, TaskControls, TaskExecutor, VoxelScore, VoxelTask,
};
use fcma_sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fcma_sync::time::Instant;
use fcma_trace::postmortem::PostmortemTrigger;
use fcma_trace::{counter, event, histogram, record, span, AttrValue, TraceCtx, TraceOrigin};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Scheduling policy and fault-tolerance knobs for one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker threads (the paper's coprocessors).
    pub n_workers: usize,
    /// Voxels per task.
    pub task_size: usize,
    /// Re-dispatches allowed per task after its first attempt. Failing
    /// past the budget aborts the run with
    /// [`ClusterError::RetryBudgetExhausted`].
    pub retry_budget: usize,
    /// Declare a dispatch hung once it has run this long: the worker is
    /// condemned and the task re-dispatched. `None` disables hang
    /// detection (a truly wedged worker then blocks the run).
    pub task_deadline: Option<Duration>,
    /// Launch a speculative duplicate of a task still running after this
    /// long, if an idle worker is available. First valid result wins;
    /// the loser's result is discarded. `None` disables speculation.
    pub speculate_after: Option<Duration>,
    /// Master wake-up granularity when no timer is pending.
    pub heartbeat: Duration,
    /// Append every completed task to this checkpoint file.
    pub checkpoint: Option<PathBuf>,
    /// Resume from this checkpoint: its tasks are trusted and not
    /// re-executed. May equal `checkpoint` to continue the same file.
    pub resume_from: Option<PathBuf>,
    /// Optional cross-validation grouping override (see
    /// [`fcma_core::TaskExecutor::process_grouped`]).
    pub groups: Option<Arc<Vec<usize>>>,
    /// Kernel threads each worker's executor uses for its parallel
    /// loops (the pool embedded in the executor; see
    /// [`fcma_sync::pool::Pool`]). Purely informational to the driver —
    /// the executor carries its own pool — but recorded here so one
    /// config describes the whole run shape, and defaulted from the
    /// `FCMA_THREADS` environment variable.
    pub kernel_threads: usize,
    /// Write a flight-recorder postmortem dump (`fcma-postmortem v1`)
    /// into this directory whenever the run hits a fault: a task panic,
    /// a worker condemnation, a deadline fence discarding a late
    /// message, or a checkpoint-resume mismatch. `None` disables dumps;
    /// emission failures are ignored (postmortems must never take down
    /// the run they describe).
    pub postmortem_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_workers: 4,
            task_size: 64,
            retry_budget: 2,
            task_deadline: None,
            speculate_after: None,
            heartbeat: Duration::from_millis(10),
            checkpoint: None,
            resume_from: None,
            groups: None,
            kernel_threads: fcma_sync::pool::Pool::from_env().threads(),
            postmortem_dir: None,
        }
    }
}

impl ClusterConfig {
    /// A config with the given worker count and task size and default
    /// fault-tolerance policy.
    pub fn new(n_workers: usize, task_size: usize) -> Self {
        ClusterConfig { n_workers, task_size, ..Default::default() }
    }
}

/// Per-task outcome of one cluster run: how many executions the task
/// cost and how long it was outstanding. Exposed so the trace layer and
/// tests can assert on scheduler behavior without reaching into driver
/// internals.
#[derive(Debug, Clone, PartialEq, Eq)]
// audit: allow(deadpub) — embedded in the public ClusterRun returned by run_cluster; demotion trips private_interfaces
pub struct TaskStat {
    /// The task.
    pub task: VoxelTask,
    /// Non-speculative dispatches this task needed (1 = first try
    /// succeeded; 0 for resumed tasks).
    pub attempts: usize,
    /// Wall time from first dispatch to accepted completion
    /// ([`Duration::ZERO`] for resumed tasks).
    pub wall: Duration,
    /// Worker whose result was accepted (`None` for resumed tasks).
    pub worker: Option<usize>,
    /// Whether the scores came from the resume checkpoint.
    pub resumed: bool,
}

/// Statistics of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// All voxel scores, sorted by voxel index.
    pub scores: Vec<VoxelScore>,
    /// Per-task attempt counts and wall times, sorted by task start.
    pub task_stats: Vec<TaskStat>,
    /// Tasks processed per worker (load-balance visibility). Resumed
    /// tasks are not attributed to any worker.
    pub tasks_per_worker: Vec<usize>,
    /// Tasks that had to be requeued after a failure or hang.
    pub requeued_tasks: usize,
    /// Workers that died by panicking during the run.
    pub failed_workers: Vec<usize>,
    /// Workers condemned as hung by deadline detection.
    pub hung_workers: Vec<usize>,
    /// Speculative duplicate dispatches launched for stragglers.
    pub speculative_launches: usize,
    /// Results discarded as duplicates or as late answers from
    /// condemned workers.
    pub duplicate_results: usize,
    /// Voxels whose scores came from the resume checkpoint.
    pub resumed_voxels: usize,
}

/// Run a full voxel sweep on `n_workers` worker threads with the
/// default fault-tolerance policy. See [`run_cluster_with`].
///
/// # Errors
/// Returns a [`ClusterError`] if the sweep cannot complete — zero
/// workers, every worker lost, or a task exhausting its retry budget.
pub fn run_cluster(
    ctx: &TaskContext,
    exec: Arc<dyn TaskExecutor>,
    n_workers: usize,
    task_size: usize,
    groups: Option<Arc<Vec<usize>>>,
) -> Result<ClusterRun, ClusterError> {
    let cfg = ClusterConfig { n_workers, task_size, groups, ..Default::default() };
    run_cluster_with(ctx, exec, &cfg)
}

/// Run a full voxel sweep under an explicit [`ClusterConfig`].
///
/// Worker threads are detached: a condemned hung worker is abandoned to
/// its fate (its cancellation token is set, its results are ignored)
/// rather than joined, mirroring how a real cluster fences a dead node.
///
/// # Errors
/// Returns a [`ClusterError`] on any unrecoverable failure: no workers,
/// a zero task size, an unreadable or mismatched checkpoint, every
/// worker lost with work outstanding, or a task failing past its retry
/// budget. Recoverable failures (individual panics, hangs, stragglers)
/// are absorbed and reported in the returned [`ClusterRun`] statistics.
pub fn run_cluster_with(
    ctx: &TaskContext,
    exec: Arc<dyn TaskExecutor>,
    cfg: &ClusterConfig,
) -> Result<ClusterRun, ClusterError> {
    if cfg.n_workers == 0 {
        return Err(ClusterError::NoWorkers);
    }
    if cfg.task_size == 0 {
        return Err(ClusterError::ZeroTaskSize);
    }
    let all_tasks = partition(ctx.n_voxels(), cfg.task_size);
    let total_tasks = all_tasks.len();
    let run_span = span!(
        "cluster.run",
        workers = cfg.n_workers,
        tasks = total_tasks,
        task_size = cfg.task_size,
        kernel_threads = cfg.kernel_threads
    );
    counter!("cluster.tasks.total", total_tasks);

    // Seed completed work from the resume checkpoint, if any.
    let mut completed: BTreeSet<usize> = BTreeSet::new();
    let mut scores: Vec<VoxelScore> = Vec::with_capacity(ctx.n_voxels());
    let mut resumed_records = Vec::new();
    let mut resumed_voxels = 0usize;
    if let Some(path) = &cfg.resume_from {
        let ck = Checkpoint::load(path)?;
        if (ck.n_voxels, ck.task_size) != (ctx.n_voxels(), cfg.task_size) {
            record!(
                "recorder.resume.mismatch",
                0,
                0,
                TraceOrigin::Dispatch,
                u64::try_from(ck.n_voxels).unwrap_or(u64::MAX)
            );
            if let Some(dir) = &cfg.postmortem_dir {
                let trigger =
                    PostmortemTrigger { kind: "resume.mismatch", task: 0, attempt: 0, worker: 0 };
                let _ = fcma_trace::postmortem::emit_to_dir(dir, &trigger);
            }
            return Err(ClusterError::CheckpointMismatch {
                found: (ck.n_voxels, ck.task_size),
                expected: (ctx.n_voxels(), cfg.task_size),
            });
        }
        for rec in ck.tasks {
            completed.insert(rec.task.start);
            resumed_voxels += rec.scores.len();
            scores.extend(rec.scores.iter().copied());
            resumed_records.push(rec);
        }
        counter!("cluster.tasks.resumed", resumed_records.len());
    }
    let mut writer = match &cfg.checkpoint {
        Some(path) => {
            if cfg.resume_from.as_deref() == Some(path.as_path()) {
                Some(CheckpointWriter::append(path)?)
            } else {
                // Fresh file: replay resumed records so any checkpoint is
                // self-contained.
                let mut w = CheckpointWriter::create(path, ctx.n_voxels(), cfg.task_size)?;
                for rec in &resumed_records {
                    w.record(rec.task, &rec.scores)?;
                    counter!("cluster.checkpoint.records", 1_u64);
                }
                Some(w)
            }
        }
        None => None,
    };
    drop(resumed_records);

    let resumed_starts: BTreeSet<usize> = completed.iter().copied().collect();
    let queue: VecDeque<VoxelTask> =
        all_tasks.iter().copied().filter(|t| !completed.contains(&t.start)).collect();

    // Spawn detached workers.
    let (to_master_tx, to_master_rx): (Sender<FromWorker>, Receiver<FromWorker>) = unbounded();
    let mut workers = Vec::with_capacity(cfg.n_workers);
    for wid in 0..cfg.n_workers {
        let (tx, rx): (Sender<ToWorker>, Receiver<ToWorker>) = unbounded();
        let cancel = CancelToken::new();
        let controls = TaskControls { cancel: cancel.clone(), deadline: cfg.task_deadline };
        spawn_worker(
            wid,
            ctx.clone(),
            Arc::clone(&exec),
            cfg.groups.clone(),
            rx,
            to_master_tx.clone(),
            controls,
        );
        workers.push(WorkerState { tx, cancel, alive: true, idle: true, condemned: false });
    }
    drop(to_master_tx);

    let mut master = Master {
        workers,
        queue,
        completed,
        scores,
        writer: writer.take(),
        attempts: BTreeMap::new(),
        in_flight: BTreeMap::new(),
        current: vec![None; cfg.n_workers],
        first_dispatched: BTreeMap::new(),
        finished_stats: BTreeMap::new(),
        retry_budget: cfg.retry_budget,
        task_deadline: cfg.task_deadline,
        speculate_after: cfg.speculate_after,
        heartbeat: cfg.heartbeat.max(Duration::from_millis(1)),
        tasks_per_worker: vec![0; cfg.n_workers],
        requeued_tasks: 0,
        failed_workers: Vec::new(),
        hung_workers: Vec::new(),
        speculative_launches: 0,
        duplicate_results: 0,
        postmortem_dir: cfg.postmortem_dir.clone(),
    };
    let outcome = master.run(&to_master_rx, total_tasks);
    master.shutdown_workers();
    drop(run_span);
    outcome?;

    let task_stats: Vec<TaskStat> = all_tasks
        .iter()
        .map(|&task| {
            if resumed_starts.contains(&task.start) {
                TaskStat { task, attempts: 0, wall: Duration::ZERO, worker: None, resumed: true }
            } else {
                master.finished_stats.remove(&task.start).unwrap_or(TaskStat {
                    task,
                    attempts: master.attempts.get(&task.start).copied().unwrap_or(0),
                    wall: Duration::ZERO,
                    worker: None,
                    resumed: false,
                })
            }
        })
        .collect();

    let mut scores = master.scores;
    scores.sort_by_key(|s| s.voxel);
    let complete =
        scores.len() == ctx.n_voxels() && scores.iter().enumerate().all(|(i, s)| s.voxel == i);
    if !complete {
        return Err(ClusterError::IncompleteSweep {
            scored: scores.len(),
            expected: ctx.n_voxels(),
        });
    }
    Ok(ClusterRun {
        scores,
        task_stats,
        tasks_per_worker: master.tasks_per_worker,
        requeued_tasks: master.requeued_tasks,
        failed_workers: master.failed_workers,
        hung_workers: master.hung_workers,
        speculative_launches: master.speculative_launches,
        duplicate_results: master.duplicate_results,
        resumed_voxels,
    })
}

/// Master-side view of one worker.
struct WorkerState {
    tx: Sender<ToWorker>,
    cancel: CancelToken,
    /// Believed healthy (not panicked, not condemned).
    alive: bool,
    /// Ready for a task.
    idle: bool,
    /// Declared hung; its results are discarded.
    condemned: bool,
}

/// One copy of a task currently executing on some worker.
struct FlightCopy {
    worker: usize,
    started: Instant,
}

/// The dispatch a worker is currently executing, from the master's point
/// of view. Every dispatch is resolved exactly once — completed,
/// discarded, failed, condemned, or cancelled at shutdown — which is
/// what makes the `cluster.tasks.*` trace counters balance.
#[derive(Clone, Copy)]
struct DispatchInfo {
    task: VoxelTask,
    started: Instant,
    attempt: usize,
    speculative: bool,
}

/// How one dispatch ended (the `outcome` attribute of its
/// `cluster.dispatch` span).
#[derive(Clone, Copy)]
enum DispatchOutcome {
    /// Fresh, accepted result.
    Completed,
    /// Valid result discarded (speculative loser or truncated).
    Discarded,
    /// The worker panicked.
    Failed,
    /// The worker was condemned as hung.
    Condemned,
    /// Still outstanding when the run ended.
    Cancelled,
}

impl DispatchOutcome {
    fn counter_name(self) -> &'static str {
        match self {
            DispatchOutcome::Completed => "cluster.tasks.completed",
            DispatchOutcome::Discarded => "cluster.tasks.discarded",
            DispatchOutcome::Failed => "cluster.tasks.failed",
            DispatchOutcome::Condemned => "cluster.tasks.condemned",
            DispatchOutcome::Cancelled => "cluster.tasks.cancelled",
        }
    }

    fn label(self) -> &'static str {
        match self {
            DispatchOutcome::Completed => "completed",
            DispatchOutcome::Discarded => "discarded",
            DispatchOutcome::Failed => "failed",
            DispatchOutcome::Condemned => "condemned",
            DispatchOutcome::Cancelled => "cancelled",
        }
    }
}

/// A task with at least one copy in flight.
struct Flight {
    task: VoxelTask,
    copies: Vec<FlightCopy>,
    first_started: Instant,
    speculated: bool,
}

/// All mutable master-loop state, so the event handlers can share it.
struct Master {
    workers: Vec<WorkerState>,
    queue: VecDeque<VoxelTask>,
    completed: BTreeSet<usize>,
    scores: Vec<VoxelScore>,
    writer: Option<CheckpointWriter>,
    /// Non-speculative dispatches per task start.
    attempts: BTreeMap<usize, usize>,
    in_flight: BTreeMap<usize, Flight>,
    /// The dispatch each worker is currently executing (trace + stats
    /// accounting; resolved exactly once per dispatch).
    current: Vec<Option<DispatchInfo>>,
    /// First dispatch time per task start (per-task wall-time stats).
    first_dispatched: BTreeMap<usize, Instant>,
    /// Per-task outcome stats, filled at accepted completion.
    finished_stats: BTreeMap<usize, TaskStat>,
    retry_budget: usize,
    task_deadline: Option<Duration>,
    speculate_after: Option<Duration>,
    heartbeat: Duration,
    tasks_per_worker: Vec<usize>,
    requeued_tasks: usize,
    failed_workers: Vec<usize>,
    hung_workers: Vec<usize>,
    speculative_launches: usize,
    duplicate_results: usize,
    /// Directory for flight-recorder postmortem dumps (`None`: off).
    postmortem_dir: Option<PathBuf>,
}

impl Master {
    /// Dump the flight recorder for a fault. Best-effort by contract:
    /// a postmortem must never take down the run it describes.
    fn postmortem(&self, kind: &'static str, task: usize, attempt: usize, worker: usize) {
        if let Some(dir) = &self.postmortem_dir {
            let trigger = PostmortemTrigger {
                kind,
                task: u64::try_from(task).unwrap_or(u64::MAX),
                attempt: u32::try_from(attempt).unwrap_or(u32::MAX),
                worker: u64::try_from(worker).unwrap_or(u64::MAX),
            };
            let _ = fcma_trace::postmortem::emit_to_dir(dir, &trigger);
        }
    }

    /// The event loop: dispatch, receive, recover, until every task is
    /// complete or the run is unrecoverable.
    fn run(&mut self, rx: &Receiver<FromWorker>, total_tasks: usize) -> Result<(), ClusterError> {
        loop {
            self.dispatch_to_idle();
            if self.completed.len() == total_tasks {
                return Ok(());
            }
            if !self.workers.iter().any(|w| w.alive) {
                return Err(ClusterError::AllWorkersFailed {
                    unfinished_tasks: total_tasks - self.completed.len(),
                });
            }
            match rx.recv_timeout(self.next_timeout()) {
                Ok(msg) => self.handle(msg)?,
                Err(RecvTimeoutError::Timeout) => self.check_deadlines()?,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::AllWorkersFailed {
                        unfinished_tasks: total_tasks - self.completed.len(),
                    });
                }
            }
        }
    }

    /// Hand queued tasks to every idle healthy worker. This runs after
    /// every event, so a task requeued by a late failure goes straight
    /// to a waiting worker — the fix for the old driver's stranding bug
    /// (workers are no longer shut down while work is outstanding).
    fn dispatch_to_idle(&mut self) {
        while !self.queue.is_empty() {
            let Some(wid) = self.workers.iter().position(|w| w.alive && w.idle) else {
                return;
            };
            let Some(task) = self.queue.pop_front() else {
                return;
            };
            if !self.dispatch(task, wid, false) {
                // The worker was found dead at send time; put the task
                // back and try the next candidate.
                self.queue.push_front(task);
            }
        }
    }

    /// Send `task` to `wid`; returns `false` if the worker is gone.
    ///
    /// The dispatch's causal identity ([`TraceCtx`]) is computed before
    /// the send and rides the message: a speculative clone keeps the
    /// straggler's attempt number under origin `speculative`, while a
    /// retry advances the attempt under origin `retry` — so the two are
    /// distinguishable everywhere downstream.
    // audit: allow(panicpath) — worker ids are stamped at spawn time and dense in 0..workers.len()
    fn dispatch(&mut self, task: VoxelTask, wid: usize, speculative: bool) -> bool {
        let prior = self.attempts.get(&task.start).copied().unwrap_or(0);
        let attempt = if speculative { prior } else { prior + 1 };
        let origin = if speculative {
            TraceOrigin::Speculative
        } else if attempt <= 1 {
            TraceOrigin::Dispatch
        } else {
            TraceOrigin::Retry
        };
        let ctx = TraceCtx::new(
            u64::try_from(task.start).unwrap_or(u64::MAX),
            u32::try_from(attempt).unwrap_or(u32::MAX),
            origin,
        );
        if self.workers[wid].tx.send(ToWorker::Task { task, ctx }).is_err() {
            self.workers[wid].alive = false;
            self.workers[wid].idle = false;
            return false;
        }
        self.workers[wid].idle = false;
        let now = Instant::now();
        if speculative {
            self.speculative_launches += 1;
            counter!("cluster.tasks.speculative", 1_u64);
            event!("cluster.speculate", task = task.start, worker = wid);
            record!(
                "recorder.speculate",
                ctx.task,
                ctx.attempt,
                origin,
                u64::try_from(wid).unwrap_or(u64::MAX)
            );
        } else {
            *self.attempts.entry(task.start).or_insert(0) += 1;
            record!(
                "recorder.dispatch",
                ctx.task,
                ctx.attempt,
                origin,
                u64::try_from(wid).unwrap_or(u64::MAX)
            );
        }
        counter!("cluster.tasks.dispatched", 1_u64);
        self.current[wid] = Some(DispatchInfo { task, started: now, attempt, speculative });
        self.first_dispatched.entry(task.start).or_insert(now);
        let flight = self.in_flight.entry(task.start).or_insert_with(|| Flight {
            task,
            copies: Vec::new(),
            first_started: now,
            speculated: false,
        });
        if speculative {
            flight.speculated = true;
        }
        flight.copies.push(FlightCopy { worker: wid, started: now });
        true
    }

    /// Resolve worker `wid`'s outstanding dispatch with `outcome`:
    /// record its `cluster.dispatch` span, wall-time histogram sample,
    /// and outcome counter. Every dispatch reaches this exactly once.
    // audit: allow(panicpath) — worker ids are stamped at spawn time and dense in 0..workers.len()
    fn resolve_dispatch(&mut self, wid: usize, outcome: DispatchOutcome) -> Option<DispatchInfo> {
        let info = self.current[wid].take()?;
        if fcma_trace::is_enabled() {
            fcma_trace::add_counter(outcome.counter_name(), 1_u64);
            histogram!("cluster.dispatch.wall_ms", info.started.elapsed().as_secs_f64() * 1e3);
            fcma_trace::record_span_elapsed(
                "cluster.dispatch",
                vec![
                    ("task", AttrValue::from(info.task.start)),
                    ("worker", AttrValue::from(wid)),
                    ("attempt", AttrValue::from(info.attempt)),
                    ("speculative", AttrValue::from(info.speculative)),
                    ("outcome", AttrValue::from(outcome.label())),
                ],
                info.started.elapsed(),
            );
        }
        Some(info)
    }

    fn handle(&mut self, msg: FromWorker) -> Result<(), ClusterError> {
        match msg {
            FromWorker::Ready { .. } => Ok(()), // workers start idle; informational
            FromWorker::Done { worker, task, ctx, scores } => {
                self.on_done(worker, task, ctx, scores)
            }
            FromWorker::Failed { worker, task, ctx } => self.on_failed(worker, task, ctx),
        }
    }

    /// Fence off a late message from a condemned worker: the attempt is
    /// dead to the scheduler, and the fence timestamp is the causality
    /// boundary `fcma report --check` enforces (no record attributed to
    /// the fenced attempt may start after it).
    fn fence(&mut self, worker: usize, task: VoxelTask, ctx: TraceCtx) {
        event!("cluster.fence", worker = worker, task = task.start, attempt = ctx.attempt);
        record!(
            "recorder.fence",
            ctx.task,
            ctx.attempt,
            ctx.origin,
            u64::try_from(worker).unwrap_or(u64::MAX)
        );
        self.postmortem(
            "deadline.fence",
            task.start,
            usize::try_from(ctx.attempt).unwrap_or(usize::MAX),
            worker,
        );
    }

    // audit: allow(panicpath) — worker ids are stamped at spawn time and dense in 0..workers.len()
    fn on_done(
        &mut self,
        worker: usize,
        task: VoxelTask,
        ctx: TraceCtx,
        task_scores: Vec<VoxelScore>,
    ) -> Result<(), ClusterError> {
        if self.workers[worker].condemned {
            // A late answer from a worker we already declared hung: the
            // task was re-dispatched elsewhere, so this result (possibly
            // truncated by cancellation) is discarded. Its dispatch was
            // already resolved as condemned — only fence it off.
            self.fence(worker, task, ctx);
            self.duplicate_results += 1;
            return Ok(());
        }
        self.workers[worker].idle = true;
        if let Some(flight) = self.in_flight.get_mut(&task.start) {
            flight.copies.retain(|c| c.worker != worker);
        }
        let fresh = !self.completed.contains(&task.start);
        let accepted = fresh && task_scores.len() == task.count;
        let outcome =
            if accepted { DispatchOutcome::Completed } else { DispatchOutcome::Discarded };
        let _ = self.resolve_dispatch(worker, outcome);
        if accepted {
            // Under the model checker this is the at-most-once oracle:
            // two accepted completions of one task are a defect.
            fcma_sync::runtime::report_completion(u64::try_from(task.start).unwrap_or(u64::MAX));
            self.completed.insert(task.start);
            self.tasks_per_worker[worker] += 1;
            self.finished_stats.insert(
                task.start,
                TaskStat {
                    task,
                    attempts: self.attempts.get(&task.start).copied().unwrap_or(0),
                    wall: self
                        .first_dispatched
                        .get(&task.start)
                        .map_or(Duration::ZERO, Instant::elapsed),
                    worker: Some(worker),
                    resumed: false,
                },
            );
            if let Some(w) = self.writer.as_mut() {
                w.record(task, &task_scores)?;
                counter!("cluster.checkpoint.records", 1_u64);
                event!("cluster.checkpoint", task = task.start, scores = task_scores.len());
            }
            self.scores.extend(task_scores);
            self.in_flight.remove(&task.start);
            Ok(())
        } else {
            // Either a speculative duplicate of an already-completed
            // task, or a truncated result — discard, and requeue if the
            // task is somehow left with no running copy.
            self.duplicate_results += 1;
            self.requeue_if_abandoned(task)
        }
    }

    // audit: allow(panicpath) — worker ids are stamped at spawn time and dense in 0..workers.len()
    fn on_failed(
        &mut self,
        worker: usize,
        task: VoxelTask,
        ctx: TraceCtx,
    ) -> Result<(), ClusterError> {
        let state = &mut self.workers[worker];
        let was_condemned = state.condemned;
        state.alive = false;
        state.idle = false;
        if was_condemned {
            // Already resolved as condemned when the deadline fired.
            self.fence(worker, task, ctx);
        } else {
            self.failed_workers.push(worker);
            let _ = self.resolve_dispatch(worker, DispatchOutcome::Failed);
            self.postmortem(
                "task.panic",
                task.start,
                usize::try_from(ctx.attempt).unwrap_or(usize::MAX),
                worker,
            );
        }
        if let Some(flight) = self.in_flight.get_mut(&task.start) {
            flight.copies.retain(|c| c.worker != worker);
        }
        self.requeue_if_abandoned(task)
    }

    /// Requeue `task` unless it is completed, still running somewhere,
    /// or already queued. Enforces the retry budget.
    fn requeue_if_abandoned(&mut self, task: VoxelTask) -> Result<(), ClusterError> {
        if self.completed.contains(&task.start) {
            return Ok(());
        }
        if self.in_flight.get(&task.start).is_some_and(|f| !f.copies.is_empty()) {
            return Ok(());
        }
        if self.queue.iter().any(|t| t.start == task.start) {
            return Ok(());
        }
        self.in_flight.remove(&task.start);
        let attempts = self.attempts.get(&task.start).copied().unwrap_or(0);
        if attempts > self.retry_budget {
            return Err(ClusterError::RetryBudgetExhausted { task, attempts });
        }
        self.requeued_tasks += 1;
        counter!("cluster.tasks.requeued", 1_u64);
        self.queue.push_back(task);
        Ok(())
    }

    /// Wake-up interval: the earliest pending hang/speculation timer, or
    /// the heartbeat when none is armed.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        let mut consider = |t: Instant| {
            earliest = Some(earliest.map_or(t, |e| e.min(t)));
        };
        if let Some(deadline) = self.task_deadline {
            for flight in self.in_flight.values() {
                for copy in &flight.copies {
                    consider(copy.started + deadline);
                }
            }
        }
        if let Some(spec) = self.speculate_after {
            for flight in self.in_flight.values() {
                if !flight.speculated && !flight.copies.is_empty() {
                    consider(flight.first_started + spec);
                }
            }
        }
        match earliest {
            Some(t) => t.saturating_duration_since(now).max(Duration::from_millis(1)),
            None => self.heartbeat,
        }
    }

    /// Fire expired hang deadlines and due speculation timers.
    // audit: allow(panicpath) — worker ids are stamped at spawn time and dense in 0..workers.len()
    fn check_deadlines(&mut self) -> Result<(), ClusterError> {
        let now = Instant::now();
        if let Some(deadline) = self.task_deadline {
            // Collect expirations first; condemning touches worker state.
            let mut expirations: Vec<(VoxelTask, Vec<usize>)> = Vec::new();
            for flight in self.in_flight.values_mut() {
                let mut overdue = Vec::new();
                flight.copies.retain(|c| {
                    if now.duration_since(c.started) >= deadline {
                        overdue.push(c.worker);
                        false
                    } else {
                        true
                    }
                });
                if !overdue.is_empty() {
                    expirations.push((flight.task, overdue));
                }
            }
            for (task, overdue) in expirations {
                for wid in overdue {
                    let state = &mut self.workers[wid];
                    state.cancel.cancel();
                    state.alive = false;
                    state.idle = false;
                    let newly_condemned = !state.condemned;
                    if newly_condemned {
                        state.condemned = true;
                        self.hung_workers.push(wid);
                        event!("cluster.condemn", worker = wid, task = task.start);
                        let info = self.resolve_dispatch(wid, DispatchOutcome::Condemned);
                        let attempt = info.map_or(0, |i| i.attempt);
                        record!(
                            "recorder.condemn",
                            u64::try_from(task.start).unwrap_or(u64::MAX),
                            u32::try_from(attempt).unwrap_or(u32::MAX),
                            TraceOrigin::Dispatch,
                            u64::try_from(wid).unwrap_or(u64::MAX)
                        );
                        self.postmortem("worker.condemned", task.start, attempt, wid);
                    }
                }
                self.requeue_if_abandoned(task)?;
            }
        }
        if let Some(spec) = self.speculate_after {
            let due: Vec<VoxelTask> = self
                .in_flight
                .values()
                .filter(|f| {
                    !f.speculated
                        && !f.copies.is_empty()
                        && now.duration_since(f.first_started) >= spec
                })
                .map(|f| f.task)
                .collect();
            for task in due {
                let Some(wid) = self.workers.iter().position(|w| w.alive && w.idle) else {
                    break;
                };
                let _ = self.dispatch(task, wid, true);
            }
        }
        Ok(())
    }

    /// Tell every worker to stop: cancellation for the condemned and
    /// in-flight, `Shutdown` for the idle. Workers are detached, so this
    /// does not block on stragglers. Dispatches still outstanding (e.g.
    /// a speculative loser that never reported) resolve as cancelled so
    /// the dispatch accounting balances.
    fn shutdown_workers(&mut self) {
        for wid in 0..self.workers.len() {
            let _ = self.resolve_dispatch(wid, DispatchOutcome::Cancelled);
        }
        for w in &self.workers {
            w.cancel.cancel();
            let _ = w.tx.send(ToWorker::Shutdown);
        }
    }
}

/// Spawn one detached worker thread serving tasks until shutdown,
/// disconnect, or its own death.
// audit: allow(panicpath) — executor panics are contained by catch_unwind and reported as FromWorker::Failed
fn spawn_worker(
    wid: usize,
    ctx: TaskContext,
    exec: Arc<dyn TaskExecutor>,
    groups: Option<Arc<Vec<usize>>>,
    rx: Receiver<ToWorker>,
    to_master: Sender<FromWorker>,
    controls: TaskControls,
) {
    fcma_sync::thread::spawn(move || {
        if to_master.send(FromWorker::Ready { worker: wid }).is_err() {
            return;
        }
        let warg = u64::try_from(wid).unwrap_or(u64::MAX);
        while let Ok(msg) = rx.recv() {
            match msg {
                ToWorker::Task { task, ctx: trace_ctx } => {
                    if controls.cancel.is_cancelled() {
                        return;
                    }
                    // Install the dispatch's causal identity for the
                    // duration of the executor call: every span, event,
                    // and recorder entry below — including on pool
                    // threads — is stamped with it.
                    let ctx_guard: fcma_trace::CtxGuard = trace_ctx.install();
                    record!(
                        "recorder.task.start",
                        trace_ctx.task,
                        trace_ctx.attempt,
                        trace_ctx.origin,
                        warg
                    );
                    // Contain executor panics: report the failure so the
                    // master can requeue, then die (a crashed node does
                    // not come back).
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        exec.process_with_controls(
                            &ctx,
                            task,
                            groups.as_deref().map(|g| &g[..]),
                            &controls,
                        )
                    }));
                    drop(ctx_guard);
                    match result {
                        Ok(scores) => {
                            record!(
                                "recorder.task.end",
                                trace_ctx.task,
                                trace_ctx.attempt,
                                trace_ctx.origin,
                                warg
                            );
                            if to_master
                                .send(FromWorker::Done {
                                    worker: wid,
                                    task,
                                    ctx: trace_ctx,
                                    scores,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        Err(_) => {
                            record!(
                                "recorder.task.panic",
                                trace_ctx.task,
                                trace_ctx.attempt,
                                trace_ctx.origin,
                                warg
                            );
                            let _ = to_master.send(FromWorker::Failed {
                                worker: wid,
                                task,
                                ctx: trace_ctx,
                            });
                            return;
                        }
                    }
                }
                ToWorker::Shutdown => return,
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChaosExecutor, FaultKind, FaultPlan};
    use fcma_core::{score_all_voxels, OptimizedExecutor};
    use fcma_fmri::presets;

    fn ctx() -> TaskContext {
        let mut cfg = presets::tiny();
        cfg.n_voxels = 64;
        cfg.n_informative = 8;
        let (d, _) = cfg.generate();
        TaskContext::full(&d)
    }

    fn assert_full_coverage(run: &ClusterRun, n_voxels: usize) {
        let voxels: Vec<usize> = run.scores.iter().map(|s| s.voxel).collect();
        let expect: Vec<usize> = (0..n_voxels).collect();
        assert_eq!(voxels, expect);
    }

    #[test]
    fn cluster_matches_sequential_execution() {
        let ctx = ctx();
        let exec = OptimizedExecutor::default();
        let sequential = score_all_voxels(&ctx, &exec, 16, None);
        let run = run_cluster(&ctx, Arc::new(exec), 3, 16, None).expect("healthy run");
        assert_eq!(run.scores.len(), sequential.len());
        assert!(run.failed_workers.is_empty());
        for (a, b) in run.scores.iter().zip(&sequential) {
            assert_eq!(a.voxel, b.voxel);
            assert!(
                (a.accuracy - b.accuracy).abs() < 1e-9,
                "voxel {}: {} vs {}",
                a.voxel,
                a.accuracy,
                b.accuracy
            );
        }
    }

    #[test]
    fn every_voxel_scored_exactly_once() {
        let ctx = ctx();
        let run =
            run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 4, 10, None).expect("run");
        assert_full_coverage(&run, ctx.n_voxels());
    }

    #[test]
    fn all_tasks_accounted_for() {
        let ctx = ctx();
        let run =
            run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 3, 10, None).expect("run");
        let total: usize = run.tasks_per_worker.iter().sum();
        assert_eq!(total, ctx.n_voxels().div_ceil(10));
    }

    #[test]
    fn single_worker_cluster_works() {
        let ctx = ctx();
        let run =
            run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 1, 16, None).expect("run");
        assert_eq!(run.scores.len(), ctx.n_voxels());
        assert_eq!(run.tasks_per_worker, vec![4]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let ctx = ctx();
        let run =
            run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 8, 32, None).expect("run");
        assert_eq!(run.scores.len(), ctx.n_voxels());
        assert!(run.tasks_per_worker.iter().filter(|&&t| t > 0).count() <= 2);
    }

    #[test]
    fn custom_groups_flow_through() {
        let ctx = ctx();
        let groups: Vec<usize> = (0..ctx.n_epochs()).map(|e| e % 2).collect();
        let run = run_cluster(
            &ctx,
            Arc::new(OptimizedExecutor::default()),
            2,
            16,
            Some(Arc::new(groups)),
        )
        .expect("run");
        assert_eq!(run.scores.len(), ctx.n_voxels());
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let ctx = ctx();
        let r = run_cluster(&ctx, Arc::new(OptimizedExecutor::default()), 0, 16, None);
        assert!(matches!(r, Err(ClusterError::NoWorkers)));
    }

    #[test]
    fn zero_task_size_is_a_typed_error() {
        let ctx = ctx();
        let cfg = ClusterConfig { n_workers: 2, task_size: 0, ..Default::default() };
        let r = run_cluster_with(&ctx, Arc::new(OptimizedExecutor::default()), &cfg);
        assert!(matches!(r, Err(ClusterError::ZeroTaskSize)));
    }

    #[test]
    fn failed_task_is_requeued_and_run_completes() {
        let ctx = ctx();
        let exec = ChaosExecutor::panic_once(Arc::new(OptimizedExecutor::default()), 16);
        let run = run_cluster(&ctx, Arc::new(exec), 3, 16, None).expect("recovers");
        assert_eq!(run.requeued_tasks, 1);
        assert_eq!(run.failed_workers.len(), 1);
        assert_full_coverage(&run, ctx.n_voxels());
    }

    #[test]
    fn survives_failure_with_one_healthy_worker_left() {
        let ctx = ctx();
        let exec = ChaosExecutor::panic_once(Arc::new(OptimizedExecutor::default()), 0);
        let run = run_cluster(&ctx, Arc::new(exec), 2, 32, None).expect("recovers");
        assert_eq!(run.scores.len(), ctx.n_voxels());
        assert_eq!(run.requeued_tasks, 1);
    }

    #[test]
    fn losing_every_worker_is_a_typed_error() {
        let ctx = ctx();
        let exec = ChaosExecutor::panic_once(Arc::new(OptimizedExecutor::default()), 0);
        let r = run_cluster(&ctx, Arc::new(exec), 1, 32, None);
        assert!(matches!(r, Err(ClusterError::AllWorkersFailed { .. })), "got {r:?}");
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_error() {
        let ctx = ctx();
        // Task 0 panics on every allowed attempt (budget 2 → 3 tries).
        let plan = FaultPlan::none()
            .with_fault(0, 0, FaultKind::panic_now())
            .with_fault(0, 1, FaultKind::panic_now())
            .with_fault(0, 2, FaultKind::panic_now());
        let exec = ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan);
        let cfg = ClusterConfig { n_workers: 5, task_size: 16, ..Default::default() };
        let r = run_cluster_with(&ctx, Arc::new(exec), &cfg);
        match r {
            Err(ClusterError::RetryBudgetExhausted { task, attempts }) => {
                assert_eq!(task.start, 0);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn hung_worker_is_condemned_and_task_redispatched() {
        let ctx = ctx();
        let plan = FaultPlan::none().with_fault(0, 0, FaultKind::Stall);
        let exec = ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan);
        // The deadline must dominate a legitimate task's debug-build wall
        // time (or the healthy worker gets condemned too) while staying
        // far below the stall cap.
        let cfg = ClusterConfig {
            n_workers: 2,
            task_size: 32,
            task_deadline: Some(Duration::from_millis(500)),
            heartbeat: Duration::from_millis(5),
            ..Default::default()
        };
        let run = run_cluster_with(&ctx, Arc::new(exec), &cfg).expect("recovers from hang");
        assert_eq!(run.hung_workers.len(), 1);
        assert!(run.failed_workers.is_empty());
        assert_eq!(run.requeued_tasks, 1);
        assert_full_coverage(&run, ctx.n_voxels());
    }

    #[test]
    fn straggler_triggers_speculative_copy() {
        let ctx = ctx();
        let plan = FaultPlan::none().with_fault(0, 0, FaultKind::Delay(Duration::from_millis(400)));
        let exec = ChaosExecutor::new(Arc::new(OptimizedExecutor::default()), plan);
        let cfg = ClusterConfig {
            n_workers: 2,
            task_size: 32,
            speculate_after: Some(Duration::from_millis(40)),
            heartbeat: Duration::from_millis(5),
            ..Default::default()
        };
        let run = run_cluster_with(&ctx, Arc::new(exec), &cfg).expect("speculation covers");
        assert!(run.speculative_launches >= 1, "no speculation launched");
        assert!(run.failed_workers.is_empty() && run.hung_workers.is_empty());
        assert_full_coverage(&run, ctx.n_voxels());
    }
}
