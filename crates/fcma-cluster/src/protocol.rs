//! Master–worker message protocol.
//!
//! The paper's cluster framework is MPI master–worker: the master
//! distributes brain data up front, then hands out voxel-block tasks one
//! at a time; a worker returns its scores and receives the next task
//! (§3.1.1). This module defines the message types; the threaded
//! transport lives in [`crate::driver`].

use fcma_core::{VoxelScore, VoxelTask};

/// Messages from the master to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Process this voxel block.
    Task(VoxelTask),
    /// No more work; terminate.
    Shutdown,
}

/// Messages from a worker to the master.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// Initial "ready for work" handshake.
    Ready {
        /// Sender's worker id.
        worker: usize,
    },
    /// A completed task's scores. Carries the task identity so the
    /// master can discard duplicate results (speculative copies, late
    /// answers from workers already declared hung).
    Done {
        /// Sender's worker id.
        worker: usize,
        /// The task these scores cover.
        task: VoxelTask,
        /// Scores for the completed task.
        scores: Vec<VoxelScore>,
    },
    /// The worker failed while processing `task` and is terminating; the
    /// master must requeue the task on a healthy worker.
    Failed {
        /// Sender's worker id.
        worker: usize,
        /// The task that must be re-executed.
        task: VoxelTask,
    },
}

impl FromWorker {
    /// Sender's worker id.
    pub fn worker(&self) -> usize {
        match self {
            FromWorker::Ready { worker }
            | FromWorker::Done { worker, .. }
            | FromWorker::Failed { worker, .. } => *worker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_kinds_carry_worker_ids() {
        assert_eq!(FromWorker::Ready { worker: 3 }.worker(), 3);
        let done = FromWorker::Done {
            worker: 1,
            task: VoxelTask { start: 0, count: 1 },
            scores: vec![VoxelScore { voxel: 0, accuracy: 0.5 }],
        };
        assert_eq!(done.worker(), 1);
        let failed = FromWorker::Failed { worker: 2, task: VoxelTask { start: 0, count: 4 } };
        assert_eq!(failed.worker(), 2);
    }

    #[test]
    fn to_worker_equality() {
        let t = ToWorker::Task(VoxelTask { start: 0, count: 8 });
        assert_eq!(t, ToWorker::Task(VoxelTask { start: 0, count: 8 }));
        assert_ne!(t, ToWorker::Shutdown);
    }
}
