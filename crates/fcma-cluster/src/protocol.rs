//! Master–worker message protocol.
//!
//! The paper's cluster framework is MPI master–worker: the master
//! distributes brain data up front, then hands out voxel-block tasks one
//! at a time; a worker returns its scores and receives the next task
//! (§3.1.1). This module defines the message types; the threaded
//! transport lives in [`crate::driver`].

use fcma_core::{VoxelScore, VoxelTask};
use fcma_trace::TraceCtx;

/// Messages from the master to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Process this voxel block.
    Task {
        /// The voxel block to process.
        task: VoxelTask,
        /// Causal identity of this dispatch attempt. The worker installs
        /// it around the executor call, so every span and recorder event
        /// produced on its behalf — including on pool threads three
        /// layers down — names the dispatch that caused it.
        ctx: TraceCtx,
    },
    /// No more work; terminate.
    Shutdown,
}

/// Messages from a worker to the master.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// Initial "ready for work" handshake.
    Ready {
        /// Sender's worker id.
        worker: usize,
    },
    /// A completed task's scores. Carries the task identity so the
    /// master can discard duplicate results (speculative copies, late
    /// answers from workers already declared hung).
    Done {
        /// Sender's worker id.
        worker: usize,
        /// The task these scores cover.
        task: VoxelTask,
        /// Echo of the dispatch context, so the master can fence a late
        /// answer against the exact attempt that produced it.
        ctx: TraceCtx,
        /// Scores for the completed task.
        scores: Vec<VoxelScore>,
    },
    /// The worker failed while processing `task` and is terminating; the
    /// master must requeue the task on a healthy worker.
    Failed {
        /// Sender's worker id.
        worker: usize,
        /// The task that must be re-executed.
        task: VoxelTask,
        /// Echo of the dispatch context of the failed attempt.
        ctx: TraceCtx,
    },
}

impl FromWorker {
    /// Sender's worker id.
    pub fn worker(&self) -> usize {
        match self {
            FromWorker::Ready { worker }
            | FromWorker::Done { worker, .. }
            | FromWorker::Failed { worker, .. } => *worker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_trace::TraceOrigin;

    fn ctx_of(task: u64, attempt: u32) -> TraceCtx {
        TraceCtx::new(task, attempt, TraceOrigin::Dispatch)
    }

    #[test]
    fn message_kinds_carry_worker_ids() {
        assert_eq!(FromWorker::Ready { worker: 3 }.worker(), 3);
        let done = FromWorker::Done {
            worker: 1,
            task: VoxelTask { start: 0, count: 1 },
            ctx: ctx_of(0, 1),
            scores: vec![VoxelScore { voxel: 0, accuracy: 0.5 }],
        };
        assert_eq!(done.worker(), 1);
        let failed = FromWorker::Failed {
            worker: 2,
            task: VoxelTask { start: 0, count: 4 },
            ctx: ctx_of(0, 1),
        };
        assert_eq!(failed.worker(), 2);
    }

    #[test]
    fn to_worker_equality() {
        let t = ToWorker::Task { task: VoxelTask { start: 0, count: 8 }, ctx: ctx_of(0, 1) };
        assert_eq!(t, ToWorker::Task { task: VoxelTask { start: 0, count: 8 }, ctx: ctx_of(0, 1) });
        assert_ne!(
            t,
            ToWorker::Task {
                task: VoxelTask { start: 0, count: 8 },
                ctx: TraceCtx::new(0, 2, TraceOrigin::Retry),
            },
            "dispatch identity distinguishes retries of the same task"
        );
        assert_ne!(t, ToWorker::Shutdown);
    }
}
