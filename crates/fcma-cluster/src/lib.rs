//! # fcma-cluster — fault-tolerant cluster substrate for FCMA
//!
//! The paper runs FCMA as an MPI master–worker application on a 48-node
//! cluster with 96 Xeon Phi coprocessors. This crate substitutes:
//!
//! * [`protocol`] + [`driver`] — a *real* threaded master–worker scheduler
//!   (crossbeam channels standing in for MPI messages) running the actual
//!   FCMA pipeline with the paper's dynamic load-balancing protocol,
//!   hardened for routine node failure: panic requeue, deadline-based
//!   hang detection, per-task retry budgets, speculative re-execution of
//!   stragglers, and checkpoint/resume of partial sweeps — all surfaced
//!   through a `Result<ClusterRun, ClusterError>` API;
//! * [`fault`] — deterministic fault injection ([`FaultPlan`] +
//!   [`ChaosExecutor`]) so every recovery path above is a reproducibly
//!   tested path;
//! * [`checkpoint`] — the self-checking on-disk format behind
//!   checkpoint/resume;
//! * [`scaling`] — a discrete-event model of the same protocol at cluster
//!   scale (data distribution, dispatch latency, greedy task placement,
//!   node failures) that regenerates the elapsed-time-vs-nodes tables
//!   (Tables 3/4) and the speedup curves (Fig. 8), with per-task times
//!   supplied by the `fcma-sim` time model.

pub mod checkpoint;
pub mod driver;
pub mod error;
pub mod fault;
pub mod protocol;
pub mod scaling;

pub use checkpoint::{Checkpoint, TaskRecord};
pub use driver::{run_cluster, run_cluster_with, ClusterConfig, ClusterRun, TaskStat};
pub use error::{CheckpointError, ClusterError};
pub use fault::{ChaosExecutor, FaultKind, FaultPlan, FaultSpec};
pub use protocol::{FromWorker, ToWorker};
pub use scaling::{ClusterModel, NodeFailure};
