//! # fcma-cluster — cluster substrate for FCMA
//!
//! The paper runs FCMA as an MPI master–worker application on a 48-node
//! cluster with 96 Xeon Phi coprocessors. This crate substitutes:
//!
//! * [`protocol`] + [`driver`] — a *real* threaded master–worker framework
//!   (crossbeam channels standing in for MPI messages) running the actual
//!   FCMA pipeline with the paper's dynamic load-balancing protocol;
//! * [`scaling`] — a discrete-event model of the same protocol at cluster
//!   scale (data distribution, dispatch latency, greedy task placement)
//!   that regenerates the elapsed-time-vs-nodes tables (Tables 3/4) and
//!   the speedup curves (Fig. 8), with per-task times supplied by the
//!   `fcma-sim` time model.

pub mod driver;
pub mod protocol;
pub mod scaling;

pub use driver::{run_cluster, ClusterRun};
pub use protocol::{FromWorker, ToWorker};
pub use scaling::ClusterModel;
