//! Deterministic fault injection for the cluster scheduler.
//!
//! Recovery paths are only trustworthy if they are *tested* paths. This
//! module makes every failure mode of the master–worker protocol
//! reproducibly triggerable: a [`FaultPlan`] maps `(task, attempt)`
//! pairs to injected faults — panics (a crashed node), delays (a
//! straggler), stalls (a hung node) — and a [`ChaosExecutor`] wraps any
//! real [`TaskExecutor`] and fires those faults at exactly the planned
//! points. Plans are either built explicitly ([`FaultPlan::with_fault`])
//! or derived from a seed ([`FaultPlan::seeded`]), so a failing chaos
//! test reproduces from its seed alone.

use fcma_core::{TaskContext, TaskControls, TaskExecutor, VoxelScore, VoxelTask};
use fcma_sync::time::Instant;
use fcma_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Granularity of cancellation polling inside injected waits.
const POLL_SLICE: Duration = Duration::from_millis(1);

/// Upper bound on an injected stall, so a plan that stalls a worker in a
/// run without deadline detection cannot wedge a test binary forever.
const STALL_CAP: Duration = Duration::from_secs(10);

/// One injectable failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep `after` (cooperatively), then panic — a node crash. The
    /// panic fires even if the dispatch was cancelled during the sleep:
    /// a crashing node does not honor cancellation.
    Panic {
        /// Delay before the crash (zero = immediate).
        after: Duration,
    },
    /// Sleep this long, then compute normally — a straggler. The sleep
    /// aborts early (returning no scores) if the dispatch is cancelled.
    Delay(Duration),
    /// Never make progress until cancelled — a hung node. Returns no
    /// scores once cancelled (or after an internal safety cap).
    Stall,
}

impl FaultKind {
    /// An immediate panic.
    pub fn panic_now() -> Self {
        FaultKind::Panic { after: Duration::ZERO }
    }
}

/// One planned fault: fire `kind` on the `attempt`-th execution
/// (0-based, counted per task across all workers) of the task starting
/// at voxel `task_start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// `VoxelTask::start` of the targeted task.
    pub task_start: usize,
    /// 0-based execution attempt the fault applies to.
    pub attempt: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: add one fault. Later entries for the same
    /// `(task, attempt)` pair are ignored (first match wins).
    #[must_use]
    pub fn with_fault(mut self, task_start: usize, attempt: usize, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { task_start, attempt, kind });
        self
    }

    /// The fault planned for this `(task, attempt)`, if any.
    pub fn fault_for(&self, task_start: usize, attempt: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.task_start == task_start && f.attempt == attempt)
            .map(|f| f.kind)
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derive a reproducible plan from a seed: for each task of a
    /// `partition(n_voxels, task_size)` sweep, inject a first-attempt
    /// panic with probability `panic_per_mille`/1000, escalate it to a
    /// repeated (second-attempt) panic with probability
    /// `repeat_per_mille`/1000, and otherwise inject a small straggler
    /// delay with probability `delay_per_mille`/1000. The same seed and
    /// shape always produce the same plan.
    pub fn seeded(
        seed: u64,
        n_voxels: usize,
        task_size: usize,
        panic_per_mille: u16,
        repeat_per_mille: u16,
        delay_per_mille: u16,
    ) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut plan = FaultPlan::none();
        if task_size == 0 {
            return plan;
        }
        let mut start = 0usize;
        while start < n_voxels {
            let roll = splitmix64(&mut state) % 1000;
            if roll < u64::from(panic_per_mille) {
                plan = plan.with_fault(start, 0, FaultKind::panic_now());
                if splitmix64(&mut state) % 1000 < u64::from(repeat_per_mille) {
                    plan = plan.with_fault(start, 1, FaultKind::panic_now());
                }
            } else if roll < u64::from(panic_per_mille) + u64::from(delay_per_mille) {
                let ms = 1 + splitmix64(&mut state) % 4;
                plan = plan.with_fault(start, 0, FaultKind::Delay(Duration::from_millis(ms)));
            }
            start += task_size;
        }
        plan
    }
}

/// SplitMix64 step — the only PRNG this module needs, kept inline so the
/// library has no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`TaskExecutor`] wrapper that executes a [`FaultPlan`].
///
/// Attempt numbers are counted per task across all workers (a mutex-held
/// map), so "fail the first attempt, succeed the retry" is expressible
/// regardless of which workers the scheduler picks.
pub struct ChaosExecutor {
    inner: Arc<dyn TaskExecutor>,
    plan: FaultPlan,
    attempts: Mutex<BTreeMap<usize, usize>>,
}

impl ChaosExecutor {
    /// Wrap `inner`, injecting the faults of `plan`.
    pub fn new(inner: Arc<dyn TaskExecutor>, plan: FaultPlan) -> Self {
        ChaosExecutor { inner, plan, attempts: Mutex::new(BTreeMap::new()) }
    }

    /// Convenience: panic exactly once, on the first execution of the
    /// task starting at `task_start` (the classic crashed-node probe).
    pub fn panic_once(inner: Arc<dyn TaskExecutor>, task_start: usize) -> Self {
        Self::new(inner, FaultPlan::none().with_fault(task_start, 0, FaultKind::panic_now()))
    }

    /// How many times the task starting at `task_start` has been
    /// executed so far.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn attempts_for(&self, task_start: usize) -> usize {
        let map = self.attempts.lock();
        map.get(&task_start).copied().unwrap_or(0)
    }

    /// Atomically fetch-and-increment the attempt counter for a task.
    fn next_attempt(&self, task_start: usize) -> usize {
        let mut map = self.attempts.lock();
        let slot = map.entry(task_start).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    }
}

/// Sleep `total` in cancellable slices on the facade clock (virtual
/// time under a [`fcma_sync::clock::VirtualClock`] or a model checker —
/// injected stalls then cost no wall time). Returns `false` if
/// cancellation fired before the sleep finished.
fn sleep_unless_cancelled(total: Duration, controls: &TaskControls) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if controls.cancel.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        fcma_sync::thread::sleep(POLL_SLICE.min(deadline.saturating_duration_since(now)));
    }
}

impl TaskExecutor for ChaosExecutor {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn process_grouped(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
    ) -> Vec<VoxelScore> {
        self.process_with_controls(ctx, task, groups, &TaskControls::unbounded())
    }

    fn process_with_controls(
        &self,
        ctx: &TaskContext,
        task: VoxelTask,
        groups: Option<&[usize]>,
        controls: &TaskControls,
    ) -> Vec<VoxelScore> {
        let attempt = self.next_attempt(task.start);
        match self.plan.fault_for(task.start, attempt) {
            Some(FaultKind::Panic { after }) => {
                if !after.is_zero() {
                    let _ = sleep_unless_cancelled(after, controls);
                }
                panic!("chaos: injected panic (task start {}, attempt {attempt})", task.start);
            }
            Some(FaultKind::Delay(d)) => {
                if !sleep_unless_cancelled(d, controls) {
                    return Vec::new();
                }
                self.inner.process_with_controls(ctx, task, groups, controls)
            }
            Some(FaultKind::Stall) => {
                let _ = sleep_unless_cancelled(STALL_CAP, controls);
                Vec::new()
            }
            None => self.inner.process_with_controls(ctx, task, groups, controls),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_core::CancelToken;

    #[test]
    fn plan_lookup_matches_task_and_attempt() {
        let plan = FaultPlan::none().with_fault(0, 0, FaultKind::panic_now()).with_fault(
            16,
            1,
            FaultKind::Delay(Duration::from_millis(2)),
        );
        assert_eq!(plan.fault_for(0, 0), Some(FaultKind::panic_now()));
        assert_eq!(plan.fault_for(0, 1), None);
        assert_eq!(plan.fault_for(16, 1), Some(FaultKind::Delay(Duration::from_millis(2))));
        assert_eq!(plan.fault_for(32, 0), None);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 640, 32, 300, 200, 100);
        let b = FaultPlan::seeded(42, 640, 32, 300, 200, 100);
        assert_eq!(a.faults, b.faults);
        let c = FaultPlan::seeded(43, 640, 32, 300, 200, 100);
        assert_ne!(a.faults, c.faults, "different seeds should differ for this shape");
    }

    #[test]
    fn seeded_rates_are_plausible() {
        // 1000 tasks at 500‰ panic rate: expect roughly half faulted.
        let plan = FaultPlan::seeded(7, 32_000, 32, 500, 0, 0);
        assert!((300..700).contains(&plan.len()), "got {} faults", plan.len());
        let none = FaultPlan::seeded(7, 32_000, 32, 0, 0, 0);
        assert!(none.is_empty());
    }

    #[test]
    fn cancellation_aborts_injected_sleep() {
        let controls = TaskControls { cancel: CancelToken::new(), deadline: None };
        controls.cancel.cancel();
        let t0 = Instant::now();
        assert!(!sleep_unless_cancelled(Duration::from_secs(5), &controls));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
