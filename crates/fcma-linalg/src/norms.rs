//! Vector primitives shared by the FCMA kernels.
//!
//! These are the building blocks of the within-subject normalization stage
//! (Fisher transform + z-scoring, paper Eqs. 4–5) and of the SVM inner
//! loops. They are written as flat-slice loops so LLVM can autovectorize
//! them; the per-16-element chunking mirrors the paper's SIMD width on the
//! Xeon Phi (16 single-precision lanes).

/// Dot product of two equal-length slices.
///
/// Accumulates in eight partial sums so the reduction does not serialize on
/// one register — this is the scalar analogue of the paper's vectorization
/// idea #3 and lets the compiler keep 8 SIMD accumulators in flight.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch {} vs {}", x.len(), y.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = x.len() / LANES;
    for i in 0..chunks {
        let xo = &x[i * LANES..(i + 1) * LANES];
        let yo = &y[i * LANES..(i + 1) * LANES];
        for l in 0..LANES {
            acc[l] += xo[l] * yo[l];
        }
    }
    let mut s = acc.iter().sum::<f32>();
    for i in chunks * LANES..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x` (BLAS `saxpy`).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// One-pass mean and (population) variance using the `E[X²] − E[X]²`
/// formulation the paper uses in its normalization kernel (§4.3).
///
/// Returns `(mean, variance)`. Empty input returns `(0, 0)`.
/// The variance is clamped at zero to absorb the formulation's
/// susceptibility to tiny negative results from rounding.
#[inline]
pub fn mean_var_onepass(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let mut s = 0.0f64;
    let mut s2 = 0.0f64;
    for &v in x {
        let v = f64::from(v);
        s += v;
        s2 += v * v;
    }
    let n = crate::cast::f64_from_usize(x.len());
    let mean = s / n;
    let var = (s2 / n - mean * mean).max(0.0);
    (crate::cast::f32_from_f64(mean), crate::cast::f32_from_f64(var))
}

/// Fast `ln` for strictly positive finite `f32`, accurate to ~2 ulp of
/// f32 over the FCMA range.
///
/// The Xeon Phi evaluates `logf` in its extended math unit as part of the
/// vector pipeline (§4.3); libm's scalar `ln` would serialize the Fisher
/// pass on a host CPU, so this branch-free polynomial version — exponent
/// extraction plus the `atanh`-series log of the normalized mantissa —
/// keeps the transform autovectorizable.
///
/// Domain: `x > 0`, finite, normal. Out-of-domain inputs give unspecified
/// finite garbage (callers clamp first).
#[inline]
pub fn fast_ln(x: f32) -> f32 {
    const LN2: f32 = std::f32::consts::LN_2;
    let bits = x.to_bits();
    // Normalize the mantissa into [2/3, 4/3) so |t| <= 0.2 below: if the
    // mantissa's top bit pattern puts m >= 4/3, halve it and bump e.
    // Branch-free (a data-dependent branch here would block
    // autovectorization of the Fisher pass).
    // audit: allow(cast) — masked to 8 bits, always fits i32 exactly
    let e_raw = ((bits >> 23) & 0xff) as i32 - 127;
    let m_raw = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000); // [1, 2)
    let big = i32::from(m_raw >= 4.0 / 3.0);
    // audit: allow(cast) — big is 0 or 1, exact in f32
    let m = m_raw * (1.0 - 0.5 * big as f32);
    // audit: allow(cast) — e_raw+big is in [-127, 129], exact in f32
    let e = (e_raw + big) as f32;
    // ln(m) = 2·atanh(t) with t = (m−1)/(m+1), |t| ≤ 0.2.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // 2(t + t³/3 + t⁵/5 + t⁷/7): error < 1e-7 over |t| ≤ 0.2.
    let ln_m = 2.0 * t * (1.0 + t2 * (1.0 / 3.0 + t2 * (0.2 + t2 * (1.0 / 7.0))));
    ln_m + e * LN2
}

/// The Fisher r-to-z transform `z = ½·ln((1+r)/(1−r))` (paper Eq. 4),
/// equal to `atanh(r)`.
///
/// Correlations of exactly ±1 would map to ±∞; FCMA only feeds this
/// function self-correlations of ±1 on the diagonal, which downstream code
/// masks out, but to keep the pipeline total we clamp `r` into
/// `[-RMAX, RMAX]` first, as BrainIAK's implementation does.
#[inline]
pub fn fisher_z(r: f32) -> f32 {
    const RMAX: f32 = 0.999_999_4; // largest f32 < 1 that keeps atanh finite
    let r = r.clamp(-RMAX, RMAX);
    0.5 * fast_ln((1.0 + r) / (1.0 - r))
}

/// Apply [`fisher_z`] to a slice in place (the vectorizable Fisher pass).
#[inline]
pub fn fisher_z_slice(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = fisher_z(*v);
    }
}

/// Z-score `x` in place using the supplied mean and standard deviation.
///
/// A zero (or subnormal) standard deviation maps everything to 0, matching
/// the convention for constant populations.
#[inline]
pub fn zscore_with(x: &mut [f32], mean: f32, std: f32) {
    if std <= f32::MIN_POSITIVE {
        x.fill(0.0);
        return;
    }
    let inv = 1.0 / std;
    for v in x.iter_mut() {
        *v = (*v - mean) * inv;
    }
}

/// Z-score `x` in place against its own mean/std (population std).
#[inline]
pub fn zscore(x: &mut [f32]) {
    let (mean, var) = mean_var_onepass(x);
    zscore_with(x, mean, var.sqrt());
}

/// Normalize a time-epoch vector per paper Eq. 2: subtract the mean, then
/// divide by the root sum of squares of the mean-centered vector, so that
/// the Pearson correlation of two normalized vectors is their dot product.
///
/// A constant (zero-variance) epoch normalizes to the zero vector, making
/// its correlation with everything 0 — the conventional treatment of dead
/// voxels.
#[inline]
pub fn normalize_epoch(x: &mut [f32]) {
    let (mean, var) = mean_var_onepass(x);
    let n = crate::cast::f32_from_usize(x.len());
    // √(Σx² − n·x̄²) = √(n·var): root sum of squares of the centered vector.
    let rss = (n * var).sqrt();
    if rss <= f32::MIN_POSITIVE {
        x.fill(0.0);
        return;
    }
    let inv = 1.0 / rss;
    for v in x.iter_mut() {
        *v = (*v - mean) * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol, "{a} !~ {b} (tol {tol})");
    }

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f32> = (0..37).map(|i| i as f32 * 0.25).collect();
        let y: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_close(dot(&x, &y), naive, 1e-3);
    }

    #[test]
    fn dot_handles_short_and_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn mean_var_simple() {
        let (m, v) = mean_var_onepass(&[1.0, 2.0, 3.0, 4.0]);
        assert_close(m, 2.5, 1e-6);
        assert_close(v, 1.25, 1e-6);
    }

    #[test]
    fn mean_var_constant_input_zero_variance() {
        let (m, v) = mean_var_onepass(&[5.0; 100]);
        assert_close(m, 5.0, 1e-6);
        assert_close(v, 0.0, 1e-6);
    }

    #[test]
    fn mean_var_empty() {
        assert_eq!(mean_var_onepass(&[]), (0.0, 0.0));
    }

    #[test]
    fn fisher_matches_atanh() {
        for &r in &[0.0f32, 0.1, -0.5, 0.9, -0.99] {
            assert_close(fisher_z(r), r.atanh(), 2e-5);
        }
    }

    #[test]
    fn fast_ln_matches_std_over_fisher_range() {
        // (1+r)/(1−r) spans ~[5e-7, 3.3e6] over the clamped r range.
        let mut x = 5e-7f32;
        while x < 3.5e6 {
            let got = fast_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 1e-5 * want.abs().max(1.0),
                "fast_ln({x}) = {got}, std = {want}"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn fast_ln_exact_landmarks() {
        assert_close(fast_ln(1.0), 0.0, 1e-7);
        assert_close(fast_ln(std::f32::consts::E), 1.0, 1e-5);
        assert_close(fast_ln(2.0), std::f32::consts::LN_2, 1e-6);
    }

    #[test]
    fn fisher_is_finite_at_unit_correlation() {
        assert!(fisher_z(1.0).is_finite());
        assert!(fisher_z(-1.0).is_finite());
        assert!(fisher_z(1.0) > 7.0); // atanh near 1 is large but bounded here
    }

    #[test]
    fn fisher_is_odd() {
        for &r in &[0.2f32, 0.5, 0.77] {
            assert_close(fisher_z(-r), -fisher_z(r), 1e-6);
        }
    }

    #[test]
    fn zscore_gives_zero_mean_unit_std() {
        let mut x: Vec<f32> = (0..64).map(|i| (i as f32) * 0.7 + 3.0).collect();
        zscore(&mut x);
        let (m, v) = mean_var_onepass(&x);
        assert_close(m, 0.0, 1e-5);
        assert_close(v, 1.0, 1e-4);
    }

    #[test]
    fn zscore_constant_population_is_zero() {
        let mut x = vec![3.5f32; 10];
        zscore(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalize_epoch_makes_self_dot_one() {
        let mut x: Vec<f32> = (0..12).map(|i| (i as f32 * 1.3).cos() + 2.0).collect();
        normalize_epoch(&mut x);
        assert_close(dot(&x, &x), 1.0, 1e-5);
        let (m, _) = mean_var_onepass(&x);
        assert_close(m, 0.0, 1e-6);
    }

    #[test]
    fn normalize_epoch_correlation_equals_pearson() {
        // corr(X,Y) via normalized dot product must equal the textbook
        // Pearson formula.
        let xv: Vec<f32> = vec![1.0, 3.0, 2.0, 5.0, 4.0, 7.0];
        let yv: Vec<f32> = vec![2.0, 2.5, 1.0, 4.0, 5.0, 6.5];
        let mut xn = xv.clone();
        let mut yn = yv.clone();
        normalize_epoch(&mut xn);
        normalize_epoch(&mut yn);
        let got = dot(&xn, &yn);

        let (mx, vx) = mean_var_onepass(&xv);
        let (my, vy) = mean_var_onepass(&yv);
        let n = xv.len() as f32;
        let cov: f32 = xv.iter().zip(&yv).map(|(a, b)| (a - mx) * (b - my)).sum::<f32>() / n;
        let pearson = cov / (vx.sqrt() * vy.sqrt());
        assert_close(got, pearson, 1e-5);
    }

    #[test]
    fn normalize_dead_voxel_is_zero() {
        let mut x = vec![4.2f32; 12];
        normalize_epoch(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
