//! Matrix–vector and elementwise operations.
//!
//! Small BLAS-1/2 utilities used around the pipeline: `gemv` for batch
//! SVM decision evaluation, row/column statistics for diagnostics, and
//! elementwise combinators for building test fixtures and reports.

use crate::Mat;

/// `y = A · x` for row-major `A[m × n]` (BLAS `sgemv`, no transpose).
///
/// # Panics
/// Panics on shape mismatches.
pub fn gemv(a: &Mat, x: &[f32], y: &mut [f32]) {
    assert_eq!(a.cols(), x.len(), "gemv: A cols {} != x len {}", a.cols(), x.len());
    assert_eq!(a.rows(), y.len(), "gemv: A rows {} != y len {}", a.rows(), y.len());
    for (r, yi) in y.iter_mut().enumerate() {
        *yi = crate::norms::dot(a.row(r), x);
    }
}

/// `y = Aᵀ · x` for row-major `A[m × n]` (BLAS `sgemv`, transposed):
/// accumulates over rows, so the inner loops stream `A` contiguously.
///
/// # Panics
/// Panics on shape mismatches.
pub fn gemv_t(a: &Mat, x: &[f32], y: &mut [f32]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: A rows {} != x len {}", a.rows(), x.len());
    assert_eq!(a.cols(), y.len(), "gemv_t: A cols {} != y len {}", a.cols(), y.len());
    y.fill(0.0);
    for (r, &xr) in x.iter().enumerate() {
        crate::norms::axpy(xr, a.row(r), y);
    }
}

/// Per-row means of a matrix.
pub fn row_means(a: &Mat) -> Vec<f32> {
    let n = crate::cast::f32_from_usize(a.cols().max(1));
    (0..a.rows()).map(|r| a.row(r).iter().sum::<f32>() / n).collect()
}

/// Per-column means of a matrix.
pub fn col_means(a: &Mat) -> Vec<f32> {
    let mut out = vec![0.0f32; a.cols()];
    for r in 0..a.rows() {
        crate::norms::axpy(1.0, a.row(r), &mut out);
    }
    let m = crate::cast::f32_from_usize(a.rows().max(1));
    for v in &mut out {
        *v /= m;
    }
    out
}

/// Elementwise `C = A + β·B` into a fresh matrix.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_scaled(a: &Mat, beta: f32, b: &Mat) -> Mat {
    assert_eq!(a.rows(), b.rows(), "add_scaled: row mismatch");
    assert_eq!(a.cols(), b.cols(), "add_scaled: col mismatch");
    let data: Vec<f32> = a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x + beta * y).collect();
    Mat::from_vec(a.rows(), a.cols(), data)
}

/// Scale a matrix in place.
pub fn scale(a: &mut Mat, alpha: f32) {
    for v in a.as_mut_slice() {
        *v *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref;

    fn fixture(m: usize, n: usize) -> Mat {
        Mat::from_fn(m, n, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0)
    }

    #[test]
    fn gemv_matches_gemm_with_one_column() {
        let a = fixture(5, 7);
        let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.5 - 1.0).collect();
        let mut y = vec![0.0f32; 5];
        gemv(&a, &x, &mut y);
        let mut expect = vec![0.0f32; 5];
        gemm_ref(5, 1, 7, a.as_slice(), 7, &x, 1, &mut expect, 1);
        for (g, e) in y.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    fn gemv_t_matches_explicit_transpose() {
        let a = fixture(4, 6);
        let x: Vec<f32> = (0..4).map(|i| (i as f32).cos()).collect();
        let mut y = vec![0.0f32; 6];
        gemv_t(&a, &x, &mut y);
        let at = a.transposed();
        let mut expect = vec![0.0f32; 6];
        gemv(&at, &x, &mut expect);
        for (g, e) in y.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "gemv: A cols")]
    fn gemv_rejects_bad_shapes() {
        let a = fixture(2, 3);
        let mut y = vec![0.0; 2];
        gemv(&a, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn means_are_correct() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
        assert_eq!(row_means(&a), vec![2.0, 6.0]);
        assert_eq!(col_means(&a), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn add_scaled_and_scale() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        let c = add_scaled(&a, 0.5, &b);
        assert_eq!(c.as_slice(), &[6.0, 7.0, 8.0]);
        let mut d = c;
        scale(&mut d, 2.0);
        assert_eq!(d.as_slice(), &[12.0, 14.0, 16.0]);
    }
}
