//! Generic cache-blocked GEMM — the stand-in for Intel MKL's `cblas_sgemm`.
//!
//! This is a faithful Goto-style implementation: pack a `KC × NC` slab of
//! `B`, pack `MC × KC` slabs of `A`, and sweep an `MR × NR` register
//! microkernel over them. It is *good generic BLAS*: cache-conscious,
//! vectorizable, and square-blocking — and therefore, exactly like MKL in
//! the paper's measurements, it leaves performance on the table for FCMA's
//! tall-skinny shapes (tiny `k`, enormous `n`), where the packing traffic
//! and square partitioning are mismatched to the data. The shape-
//! specialized competitor lives in [`crate::tall_skinny`].

use crate::gemm_ref::check_gemm_dims;
use crate::microkernel::{microkernel, microkernel_edge, pack_a_panel, pack_b_panel};
use fcma_sync::pool::{Pool, PoolStats};

/// Register tile height used by the generic kernel.
pub const MR: usize = 8;
/// Register tile width (one Phi vector register of f32).
pub const NR: usize = 16;

/// Cache blocking parameters of the generic kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Rows of `A` per L2-resident slab.
    pub mc: usize,
    /// Depth (`k`) per slab.
    pub kc: usize,
    /// Columns of `B` per outer slab.
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        // Sized for a 512 KB L2: KCxNC B-slab (256x512x4B = 512KB would
        // overflow; halve both) plus the A slab and C tile.
        BlockSizes { mc: 64, kc: 128, nc: 512 }
    }
}

/// `C = A · B` with default blocking. See [`gemm_blocked_with`].
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    gemm_blocked_with(BlockSizes::default(), m, n, k, a, lda, b, ldb, c, ldc);
}

/// `C[0..m, 0..n] = A[0..m, 0..k] · B[0..k, 0..n]` (row-major, overwrite)
/// with explicit cache-block sizes.
///
/// Semantics are identical to [`crate::gemm_ref::gemm_ref`]; only the
/// traversal order and packing differ.
///
/// # Panics
/// Panics on inconsistent leading dimensions or undersized buffers.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_with(
    bs: BlockSizes,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    let mut scratch = GemmScratch::new(bs);
    gemm_blocked_scratch(m, n, k, a, lda, b, ldb, c, ldc, &mut scratch);
}

/// Reusable packing buffers for the blocked GEMM. Sized purely by the
/// block configuration, so one [`GemmScratch`] serves any sequence of
/// problem shapes — e.g. the stage-1 correlation loop multiplies one
/// epoch slab per iteration and must not pay an allocation each time.
pub struct GemmScratch {
    /// `NR`-wide packed panels of the current `B` slab.
    b_pack: Vec<f32>,
    /// `MR`-tall packed panels of the current `A` slab.
    a_pack: Vec<f32>,
    /// Block configuration the buffers were sized for.
    bs: BlockSizes,
}

impl GemmScratch {
    /// Size packing buffers for the given block configuration.
    ///
    /// # Panics
    /// Panics on degenerate block sizes (`mc < MR`, `nc < NR`, `kc == 0`).
    #[must_use]
    pub fn new(bs: BlockSizes) -> Self {
        assert!(bs.mc >= MR && bs.nc >= NR && bs.kc >= 1, "gemm_blocked: degenerate block sizes");
        GemmScratch {
            b_pack: vec![0.0f32; bs.kc * bs.nc.div_ceil(NR) * NR],
            a_pack: vec![0.0f32; bs.kc * bs.mc.div_ceil(MR) * MR],
            bs,
        }
    }
}

/// [`gemm_blocked_with`] with caller-provided packing buffers — the hot
/// entry point (DESIGN.md §14). The block configuration is carried by
/// the scratch; results are bit-identical to the allocating wrappers
/// because every packed region read by the microkernels is fully
/// overwritten (fringe-padded) before use.
///
/// # Panics
/// Panics on inconsistent leading dimensions or undersized buffers.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_scratch(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    check_gemm_dims(m, n, k, a.len(), lda, b.len(), ldb, c.len(), ldc);
    let GemmScratch { b_pack, a_pack, bs } = scratch;
    let bs = *bs;
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            c[i * ldc..i * ldc + n].fill(0.0);
        }
        return;
    }

    for jc in (0..n).step_by(bs.nc) {
        let nc = bs.nc.min(n - jc);
        for pc in (0..k).step_by(bs.kc) {
            let kc = bs.kc.min(k - pc);
            let first_k_block = pc == 0;
            // Pack B[pc..pc+kc, jc..jc+nc] into NR-wide panels.
            for (t, jt) in (0..nc).step_by(NR).enumerate() {
                let nr = NR.min(nc - jt);
                let src = &b[pc * ldb + jc + jt..];
                pack_b_panel::<NR>(src, ldb, kc, nr, &mut b_pack[t * bs.kc * NR..]);
            }
            for ic in (0..m).step_by(bs.mc) {
                let mc = bs.mc.min(m - ic);
                // Pack A[ic..ic+mc, pc..pc+kc] into MR-tall panels.
                for (t, it) in (0..mc).step_by(MR).enumerate() {
                    let mr = MR.min(mc - it);
                    let src = &a[(ic + it) * lda + pc..];
                    pack_a_panel::<MR>(src, lda, mr, kc, &mut a_pack[t * bs.kc * MR..]);
                }
                // Macro-kernel: sweep the register tile.
                for (ta, it) in (0..mc).step_by(MR).enumerate() {
                    let mr = MR.min(mc - it);
                    let a_panel = &a_pack[ta * bs.kc * MR..ta * bs.kc * MR + kc * MR];
                    for (tb, jt) in (0..nc).step_by(NR).enumerate() {
                        let nr = NR.min(nc - jt);
                        let b_panel = &b_pack[tb * bs.kc * NR..tb * bs.kc * NR + kc * NR];
                        let c_off = (ic + it) * ldc + jc + jt;
                        if mr == MR && nr == NR {
                            microkernel::<MR, NR>(
                                kc,
                                a_panel,
                                b_panel,
                                &mut c[c_off..],
                                ldc,
                                !first_k_block,
                            );
                        } else {
                            microkernel_edge::<MR, NR>(
                                kc,
                                mr,
                                nr,
                                a_panel,
                                b_panel,
                                &mut c[c_off..],
                                ldc,
                                !first_k_block,
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Pool-parallel [`gemm_blocked_scratch`]: `C`'s rows are split into
/// contiguous `mc`-aligned bands, one task per `mc` block row, and each
/// band runs the full blocked traversal over its own rows with a
/// per-worker [`GemmScratch`]. Because band boundaries coincide with
/// the serial kernel's `ic` blocking, every output element sees exactly
/// the serial instruction sequence — results are bit-identical to the
/// serial kernel at every thread count (DESIGN.md §15). The `B` slab is
/// re-packed per band (identical values), trading packing traffic for a
/// lock-free disjoint-output partition.
///
/// Returns the region's [`PoolStats`] so callers can merge per-epoch
/// regions and bridge them into trace counters in one shot.
///
/// # Panics
/// Panics on inconsistent leading dimensions or undersized buffers.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_parallel(
    pool: &Pool,
    bs: BlockSizes,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) -> PoolStats {
    check_gemm_dims(m, n, k, a.len(), lda, b.len(), ldb, c.len(), ldc);
    let n_blocks = m.div_ceil(bs.mc);
    let bands = pool.threads().min(n_blocks).max(1);
    if bands <= 1 || n == 0 || k == 0 {
        let mut scratch = GemmScratch::new(bs);
        gemm_blocked_scratch(m, n, k, a, lda, b, ldb, c, ldc, &mut scratch);
        return PoolStats { tasks: 1, ..PoolStats::default() };
    }
    // Carve mc-aligned row bands off the output; each task owns its
    // rows outright (disjoint &mut slices, no reduction).
    let mut tasks: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(bands);
    let mut rest: &mut [f32] = c;
    let mut r0 = 0usize;
    for band in 0..bands {
        let blocks = n_blocks / bands + usize::from(band < n_blocks % bands);
        let r1 = (r0 + blocks * bs.mc).min(m);
        if band + 1 == bands {
            tasks.push((r0, r1, rest));
            rest = &mut [];
        } else {
            let (head, tail) = rest.split_at_mut((r1 - r0) * ldc);
            tasks.push((r0, r1, head));
            rest = tail;
        }
        r0 = r1;
    }
    let _ = rest;
    // audit: disjoint(tasks) — row bands are carved by split_at_mut, one non-overlapping C band per task
    let (_, stats) = pool.run_init_stats(
        tasks,
        || GemmScratch::new(bs),
        |scratch, _idx, (r0, r1, band)| {
            gemm_blocked_scratch(r1 - r0, n, k, &a[r0 * lda..], lda, b, ldb, band, ldc, scratch);
        },
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref::gemm_ref;
    use crate::Mat;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        // Deterministic pseudo-random data without pulling rand into the lib.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn check_shape(m: usize, n: usize, k: usize, bs: BlockSizes) {
        let a = pseudo(m * k, 1);
        let b = pseudo(k * n, 2);
        let mut c = vec![f32::NAN; m * n];
        let mut expect = vec![0.0; m * n];
        gemm_blocked_with(bs, m, n, k, &a, k, &b, n, &mut c, n);
        gemm_ref(m, n, k, &a, k, &b, n, &mut expect, n);
        let tol = 1e-4 * k.max(1) as f32;
        for (i, (g, e)) in c.iter().zip(&expect).enumerate() {
            assert!((g - e).abs() < tol, "({m}x{n}x{k}) idx {i}: {g} vs {e}");
        }
    }

    #[test]
    fn matches_reference_on_exact_tiles() {
        check_shape(16, 32, 8, BlockSizes::default());
    }

    #[test]
    fn matches_reference_on_ragged_shapes() {
        check_shape(13, 37, 11, BlockSizes::default());
        check_shape(7, 5, 3, BlockSizes::default());
        check_shape(1, 100, 1, BlockSizes::default());
    }

    #[test]
    fn matches_reference_when_blocks_divide_nothing() {
        check_shape(30, 70, 50, BlockSizes { mc: 16, kc: 7, nc: 33 });
    }

    #[test]
    fn matches_reference_on_tall_skinny_fcma_shape() {
        // Stage-1 shape: tiny k, wide n (scaled down).
        check_shape(24, 600, 12, BlockSizes::default());
    }

    #[test]
    fn matches_reference_with_multiple_k_blocks() {
        // Forces the accumulate path across k slabs.
        check_shape(20, 40, 300, BlockSizes { mc: 16, kc: 64, nc: 32 });
    }

    #[test]
    fn zero_k_zeroes_output() {
        let mut c = vec![3.0; 6];
        gemm_blocked(2, 3, 0, &[], 0, &[], 3, &mut c, 3);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One dirty scratch swept across unrelated shapes must reproduce
        // the fresh-allocation path bit for bit.
        let bs = BlockSizes { mc: 16, kc: 8, nc: 32 };
        let mut scratch = GemmScratch::new(bs);
        for (m, n, k, seed) in [(20usize, 50usize, 12usize, 1u32), (7, 5, 3, 2), (13, 70, 30, 3)] {
            let a = pseudo(m * k, seed);
            let b = pseudo(k * n, seed + 10);
            let mut fresh = vec![0.0; m * n];
            gemm_blocked_with(bs, m, n, k, &a, k, &b, n, &mut fresh, n);
            let mut reused = vec![f32::NAN; m * n];
            gemm_blocked_scratch(m, n, k, &a, k, &b, n, &mut reused, n, &mut scratch);
            for (r, f) in reused.iter().zip(&fresh) {
                assert_eq!(r.to_bits(), f.to_bits(), "({m}x{n}x{k})");
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_at_every_thread_count() {
        let bs = BlockSizes { mc: 16, kc: 8, nc: 32 };
        for (m, n, k) in [(40usize, 70usize, 30usize), (13, 37, 11), (64, 20, 50), (7, 5, 3)] {
            let a = pseudo(m * k, 21);
            let b = pseudo(k * n, 22);
            let mut serial = vec![0.0; m * n];
            gemm_blocked_with(bs, m, n, k, &a, k, &b, n, &mut serial, n);
            for threads in [1usize, 2, 3, 8] {
                let pool = Pool::new(threads);
                let mut par = vec![f32::NAN; m * n];
                gemm_blocked_parallel(&pool, bs, m, n, k, &a, k, &b, n, &mut par, n);
                for (p, s) in par.iter().zip(&serial) {
                    assert_eq!(p.to_bits(), s.to_bits(), "threads={threads} ({m}x{n}x{k})");
                }
            }
        }
    }

    #[test]
    fn honors_output_leading_dimension() {
        // Write a 2x2 product into a 2x5 buffer with ldc=5; the paper's
        // interleaved-by-voxel output trick relies on this.
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut c = vec![-1.0; 10];
        gemm_blocked(2, 2, 2, a.as_slice(), 2, b.as_slice(), 2, &mut c, 5);
        assert_eq!(&c[0..2], &[19.0, 22.0]);
        assert_eq!(&c[5..7], &[43.0, 50.0]);
        assert_eq!(c[2], -1.0, "padding must stay untouched");
    }
}
