//! Checked numeric conversions for kernel code.
//!
//! The fcma-audit `cast` pass bans bare `as` casts in the kernel crates
//! because `as` silently truncates and saturates. These helpers are the
//! sanctioned funnel: each contains exactly one documented, debug-asserted
//! `as` site, so every count-to-float conversion in the kernels states
//! (and checks, in debug builds) its precision contract instead of
//! relying on the reader to re-derive it.

/// Largest integer every `f32` can represent exactly (2^24).
pub const F32_EXACT_MAX: usize = 1 << 24;

/// Convert a count to `f32`, exactly.
///
/// Counts in FCMA are voxel/epoch/timepoint cardinalities — at most a
/// few hundred thousand — far below 2^24, where `f32` stops being exact.
///
/// # Panics
/// Debug builds panic if `n` exceeds [`F32_EXACT_MAX`].
#[inline]
pub fn f32_from_usize(n: usize) -> f32 {
    debug_assert!(n <= F32_EXACT_MAX, "f32_from_usize: {n} is not exactly representable");
    // audit: allow(cast) — the sanctioned lossy-cast site; exactness debug-asserted above
    n as f32
}

/// Convert a count to `f64`, exactly.
///
/// # Panics
/// Debug builds panic if `n` exceeds 2^53 (exact `f64` integer range).
#[inline]
pub fn f64_from_usize(n: usize) -> f64 {
    debug_assert!(n <= (1 << 53), "f64_from_usize: {n} is not exactly representable");
    // audit: allow(cast) — the sanctioned lossy-cast site; exactness debug-asserted above
    n as f64
}

/// Round a double to single precision (intentional narrowing).
///
/// Used where a reduction deliberately accumulates in `f64` and hands a
/// rounded `f32` back to the single-precision pipeline; the rounding is
/// the whole point, so this is a rename of `as f32` that marks intent.
#[inline]
pub fn f32_from_f64(x: f64) -> f32 {
    // audit: allow(cast) — intentional rounding from a widened accumulator
    x as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_conversions_are_exact_in_range() {
        for n in [0usize, 1, 12, 204, 34470, F32_EXACT_MAX] {
            assert_eq!(f32_from_usize(n) as usize, n);
            assert_eq!(f64_from_usize(n) as usize, n);
        }
    }

    #[test]
    #[should_panic(expected = "not exactly representable")]
    #[cfg(debug_assertions)]
    fn f32_conversion_rejects_huge_counts() {
        let _ = f32_from_usize(F32_EXACT_MAX + 1);
    }

    #[test]
    fn f64_to_f32_rounds() {
        assert_eq!(f32_from_f64(1.5), 1.5);
        let narrowed = f32_from_f64(std::f64::consts::PI);
        assert_eq!(narrowed, std::f32::consts::PI);
    }
}
