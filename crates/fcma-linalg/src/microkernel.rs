//! Register-tile microkernels.
//!
//! The paper's optimized kernels bottom out in an auto-generated
//! `16x9x96` assembly microkernel (§4.4). Rust's stand-in is a const-
//! generic `MR × NR` register tile written so LLVM keeps the `NR`-wide
//! accumulator rows in SIMD registers: the inner loop is a broadcast-
//! multiply-accumulate over packed panels, the exact dataflow of the
//! assembly kernel.
//!
//! Packed-panel layout (identical to Goto-style GEMM packing):
//! * `a_panel[l * MR + i]` — element `A[i, l]` of the `MR × k` slab
//!   (k-major, so each k step reads `MR` contiguous floats).
//! * `b_panel[l * NR + j]` — element `B[l, j]` of the `k × NR` slab.

/// Number of f32 lanes in one Xeon Phi vector register; the natural `NR`.
pub const VPU_WIDTH: usize = 16;

/// Compute a single `MR × NR` tile: `C[i, j] (+)= Σ_l a_panel[l,i] · b_panel[l,j]`.
///
/// When `accumulate` is false the tile is overwritten.
///
/// # Panics
/// Panics (in debug builds) if the panels are shorter than `k` steps or the
/// C buffer cannot hold the tile at leading dimension `ldc`.
#[inline]
// audit: pure
pub fn microkernel<const MR: usize, const NR: usize>(
    k: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    accumulate: bool,
) {
    debug_assert!(a_panel.len() >= k * MR, "microkernel: A panel too short");
    debug_assert!(b_panel.len() >= k * NR, "microkernel: B panel too short");
    debug_assert!(ldc >= NR, "microkernel: ldc {ldc} < NR {NR}");
    debug_assert!(MR == 0 || c.len() >= (MR - 1) * ldc + NR, "microkernel: C too short");

    let mut acc = [[0.0f32; NR]; MR];
    for l in 0..k {
        let arow = &a_panel[l * MR..(l + 1) * MR];
        let brow = &b_panel[l * NR..(l + 1) * NR];
        for i in 0..MR {
            let ail = arow[i];
            let accr = &mut acc[i];
            for j in 0..NR {
                accr[j] += ail * brow[j];
            }
        }
    }
    for i in 0..MR {
        let crow = &mut c[i * ldc..i * ldc + NR];
        if accumulate {
            for j in 0..NR {
                crow[j] += acc[i][j];
            }
        } else {
            crow.copy_from_slice(&acc[i]);
        }
    }
}

/// Like [`microkernel`] but for an edge tile narrower than `NR` columns
/// and/or shorter than `MR` rows. Slower; only used on matrix fringes.
///
/// # Panics
/// If the packed panels or `c` are shorter than the `k`/`mr`/`nr`/`ldc`
/// layout requires.
#[inline]
#[allow(clippy::too_many_arguments)] // kernel-call ABI
                                     // audit: pure
pub fn microkernel_edge<const MR: usize, const NR: usize>(
    k: usize,
    mr: usize,
    nr: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    accumulate: bool,
) {
    debug_assert!(mr <= MR && nr <= NR, "microkernel_edge: tile exceeds template");
    let mut acc = [[0.0f32; NR]; MR];
    for l in 0..k {
        let arow = &a_panel[l * MR..l * MR + mr];
        let brow = &b_panel[l * NR..l * NR + nr];
        for i in 0..mr {
            let ail = arow[i];
            for j in 0..nr {
                acc[i][j] += ail * brow[j];
            }
        }
    }
    for i in 0..mr {
        let crow = &mut c[i * ldc..i * ldc + nr];
        if accumulate {
            for j in 0..nr {
                crow[j] += acc[i][j];
            }
        } else {
            crow.copy_from_slice(&acc[i][..nr]);
        }
    }
}

/// Pack an `mr × k` slab of row-major `A` (leading dimension `lda`) into
/// the k-major panel layout, zero-padding rows `mr..MR`.
///
/// # Panics
/// If `a` or `panel` is shorter than the `mr`/`k`/`lda` layout requires.
#[inline]
// audit: pure
pub fn pack_a_panel<const MR: usize>(
    a: &[f32],
    lda: usize,
    mr: usize,
    k: usize,
    panel: &mut [f32],
) {
    debug_assert!(mr <= MR);
    debug_assert!(panel.len() >= k * MR, "pack_a_panel: panel too short");
    for l in 0..k {
        let dst = &mut panel[l * MR..(l + 1) * MR];
        for i in 0..mr {
            dst[i] = a[i * lda + l];
        }
        dst[mr..MR].fill(0.0);
    }
}

/// Pack a `k × nr` slab of row-major `B` (leading dimension `ldb`) into the
/// panel layout, zero-padding columns `nr..NR`.
///
/// # Panics
/// If `b` or `panel` is shorter than the `k`/`nr`/`ldb` layout requires.
#[inline]
// audit: pure
pub fn pack_b_panel<const NR: usize>(
    b: &[f32],
    ldb: usize,
    k: usize,
    nr: usize,
    panel: &mut [f32],
) {
    debug_assert!(nr <= NR);
    debug_assert!(panel.len() >= k * NR, "pack_b_panel: panel too short");
    for l in 0..k {
        let src = &b[l * ldb..l * ldb + nr];
        let dst = &mut panel[l * NR..(l + 1) * NR];
        dst[..nr].copy_from_slice(src);
        dst[nr..NR].fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref::gemm_ref;

    fn dense_tile<const MR: usize, const NR: usize>(k: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..MR * k).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * NR).map(|i| ((i * 5 + 1) % 13) as f32 - 6.0).collect();
        (a, b)
    }

    fn run_micro<const MR: usize, const NR: usize>(k: usize) {
        let (a, b) = dense_tile::<MR, NR>(k);
        let mut a_panel = vec![0.0; k * MR];
        let mut b_panel = vec![0.0; k * NR];
        pack_a_panel::<MR>(&a, k, MR, k, &mut a_panel);
        pack_b_panel::<NR>(&b, NR, k, NR, &mut b_panel);

        let mut c = vec![0.0; MR * NR];
        microkernel::<MR, NR>(k, &a_panel, &b_panel, &mut c, NR, false);

        let mut expect = vec![0.0; MR * NR];
        gemm_ref(MR, NR, k, &a, k, &b, NR, &mut expect, NR);
        for (g, e) in c.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-3, "{g} vs {e}");
        }
    }

    #[test]
    fn tile_8x16_matches_reference() {
        run_micro::<8, 16>(96);
    }

    #[test]
    fn tile_9x16_matches_reference() {
        // The paper's 16x9x96 shape (transposed naming: 9 C-rows of 16 lanes).
        run_micro::<9, 16>(96);
    }

    #[test]
    fn tile_with_tiny_k() {
        run_micro::<8, 16>(1);
        run_micro::<8, 16>(12); // FCMA's epoch length
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let k = 4;
        let (a, b) = dense_tile::<4, 16>(k);
        let mut a_panel = vec![0.0; k * 4];
        let mut b_panel = vec![0.0; k * 16];
        pack_a_panel::<4>(&a, k, 4, k, &mut a_panel);
        pack_b_panel::<16>(&b, 16, k, 16, &mut b_panel);

        let mut c = vec![1.0; 4 * 16];
        microkernel::<4, 16>(k, &a_panel, &b_panel, &mut c, 16, true);
        let mut once = vec![0.0; 4 * 16];
        microkernel::<4, 16>(k, &a_panel, &b_panel, &mut once, 16, false);
        for (acc, base) in c.iter().zip(&once) {
            assert!((acc - (base + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn edge_tile_matches_reference() {
        let k = 10;
        let mr = 5;
        let nr = 11;
        let a: Vec<f32> = (0..mr * k).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let b: Vec<f32> = (0..k * nr).map(|i| (i % 9) as f32 * 0.25 - 1.0).collect();
        let mut a_panel = vec![0.0; k * 8];
        let mut b_panel = vec![0.0; k * 16];
        pack_a_panel::<8>(&a, k, mr, k, &mut a_panel);
        pack_b_panel::<16>(&b, nr, k, nr, &mut b_panel);

        let mut c = vec![0.0; mr * nr];
        microkernel_edge::<8, 16>(k, mr, nr, &a_panel, &b_panel, &mut c, nr, false);

        let mut expect = vec![0.0; mr * nr];
        gemm_ref(mr, nr, k, &a, k, &b, nr, &mut expect, nr);
        for (g, e) in c.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-3);
        }
    }

    #[test]
    fn packing_zero_pads_fringes() {
        let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let mut panel = vec![9.0; 2 * 4];
        pack_a_panel::<4>(&a, 2, 2, 2, &mut panel);
        // k-major: step l=0 -> [A00, A10, 0, 0], l=1 -> [A01, A11, 0, 0]
        assert_eq!(panel, vec![1.0, 3.0, 0.0, 0.0, 2.0, 4.0, 0.0, 0.0]);
    }
}
