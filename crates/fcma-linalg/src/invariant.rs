//! Numeric-invariant instrumentation.
//!
//! [`debug_assert_finite!`] guards the hand-off points between pipeline
//! stages: stage-1 correlation output, stage-2 normalization output, and
//! the stage-3 SYRK kernel precompute. A NaN or infinity born in one
//! kernel otherwise travels silently through the SVM and surfaces as a
//! wrong voxel ranking with no trail; with the guard, debug and test
//! builds fail at the stage that produced it. Release builds compile the
//! check away entirely.

/// In debug builds, assert every element of a float slice is finite.
///
/// `$what` names the buffer for the panic message (e.g. a stage name).
/// Expands to nothing in release builds, so it can wrap hot-kernel
/// outputs without a performance tax.
#[macro_export]
macro_rules! debug_assert_finite {
    ($slice:expr, $what:expr) => {
        if cfg!(debug_assertions) {
            let slice: &[_] = $slice;
            for (i, v) in slice.iter().enumerate() {
                assert!(v.is_finite(), "non-finite value {v} at index {i} in {}", $what,);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passes_on_finite_data() {
        let x = [1.0f32, -2.5, 0.0];
        debug_assert_finite!(&x, "test buffer");
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    #[cfg(debug_assertions)]
    fn fires_on_nan() {
        let x = [1.0f32, f32::NAN];
        debug_assert_finite!(&x, "nan buffer");
    }

    #[test]
    #[should_panic(expected = "stage1 correlation")]
    #[cfg(debug_assertions)]
    fn message_names_the_stage() {
        let x = [f64::INFINITY];
        debug_assert_finite!(&x, "stage1 correlation");
    }
}
