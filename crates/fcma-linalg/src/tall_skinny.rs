//! Shape-specialized tall-skinny correlation GEMM — optimization ideas #1
//! and #3 of the paper (§4.2).
//!
//! Stage 1 of FCMA multiplies, for every epoch, a small `V × k` matrix of
//! assigned-voxel activity against a huge `k × N` matrix of whole-brain
//! activity (`k` ≈ 12 time points, `N` ≈ 35,000 voxels), writing each
//! result row into an output interleaved *by voxel*: the correlation row
//! for (voxel `v`, epoch `e`) lands at row `v·M + e` of a `(V·M) × N`
//! buffer, so that all of one voxel's correlation vectors are contiguous
//! for the later SVM stage.
//!
//! A generic square-blocking GEMM (MKL, [`crate::gemm_blocked::gemm_blocked`]) handles
//! this shape poorly: with `k` this small there is nothing to block in the
//! depth dimension and the packing traffic dominates. The specialized
//! kernel here instead:
//!
//! 1. tiles the *wide* dimension `N` into column strips sized to keep the
//!    brain-data strip plus the output tile resident in one core's L2
//!    (idea #1 — "partitioning tall-skinny matrices for blocking");
//! 2. transposes/packs each strip once and reuses it across **all** epochs
//!    and all voxel groups before moving on (the strip is the hot data);
//! 3. bottoms out in the 16-lane register microkernel so every multiply is
//!    a full-width vector FMA (idea #3 — vectorization-friendly layout).

use crate::gemm_ref::gemm_ref;
use crate::microkernel::{microkernel, microkernel_edge, pack_a_panel, pack_b_panel};
use crate::Mat;
use std::ops::Range;

/// Register tile height for the correlation kernel.
pub const MR: usize = 8;
/// Register tile width (Phi vector width in f32 lanes).
pub const NR: usize = 16;

/// One epoch's pair of normalized activity matrices.
///
/// `assigned` is `V × k` (the task's voxels over the epoch's time points,
/// already normalized per Eq. 2); `brain` is `k × N` (every brain voxel,
/// same normalization, transposed so time is the leading dimension).
/// The dot product of a row of `assigned` with a column of `brain` is the
/// Pearson correlation of that voxel pair over the epoch.
#[derive(Clone, Copy)]
pub struct EpochPair<'a> {
    /// `V × k` assigned-voxel matrix.
    pub assigned: &'a Mat,
    /// `k × N` whole-brain matrix.
    pub brain: &'a Mat,
}

impl<'a> EpochPair<'a> {
    /// Number of time points in this epoch.
    pub fn k(&self) -> usize {
        self.assigned.cols()
    }

    fn validate(&self, v: usize, n: usize) {
        assert_eq!(self.assigned.rows(), v, "EpochPair: assigned rows != V");
        assert_eq!(self.brain.cols(), n, "EpochPair: brain cols != N");
        assert_eq!(
            self.assigned.cols(),
            self.brain.rows(),
            "EpochPair: assigned cols (k={}) != brain rows (k={})",
            self.assigned.cols(),
            self.brain.rows()
        );
    }
}

/// Tuning knobs for the tall-skinny kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TallSkinnyOpts {
    /// Width of each brain-voxel column strip. The default (512 columns ×
    /// 12 time points × 4 B ≈ 24 KB strip + per-voxel-group output tiles)
    /// keeps the working set inside a 512 KB Phi L2.
    pub tile_cols: usize,
}

impl Default for TallSkinnyOpts {
    fn default() -> Self {
        TallSkinnyOpts { tile_cols: 512 }
    }
}

/// Shape summary for the interleaved stage-1 output buffer.
///
/// The buffer holds `V · M` rows of `N` floats; row `v·M + e` is voxel
/// `v`'s correlation vector for epoch `e`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrLayout {
    /// Assigned voxels (`V`).
    pub n_assigned: usize,
    /// Epochs (`M`).
    pub n_epochs: usize,
    /// Brain voxels (`N`).
    pub n_brain: usize,
}

impl CorrLayout {
    /// Required output buffer length.
    pub fn out_len(&self) -> usize {
        self.n_assigned * self.n_epochs * self.n_brain
    }

    /// Row index of (voxel `v`, epoch `e`) in the interleaved buffer.
    #[inline]
    pub fn row(&self, v: usize, e: usize) -> usize {
        v * self.n_epochs + e
    }
}

/// Optimized stage-1 kernel: compute every epoch's correlation rows for
/// every assigned voxel, writing the voxel-interleaved layout.
///
/// Returns the [`CorrLayout`] describing `out`.
///
/// # Panics
/// Panics if the epochs disagree on `V`/`N` or `out` is too short.
pub fn corr_tall_skinny(
    epochs: &[EpochPair<'_>],
    out: &mut [f32],
    opts: TallSkinnyOpts,
) -> CorrLayout {
    assert!(!epochs.is_empty(), "corr_tall_skinny: no epochs");
    let v = epochs[0].assigned.rows();
    let n = epochs[0].brain.cols();
    for ep in epochs {
        ep.validate(v, n);
    }
    let m = epochs.len();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    assert!(
        out.len() >= layout.out_len(),
        "corr_tall_skinny: out buffer {} < required {}",
        out.len(),
        layout.out_len()
    );
    let k_max = epochs.iter().map(EpochPair::k).max().unwrap_or(0);
    let tile = opts.tile_cols.max(NR);
    let mut b_pack = vec![0.0f32; k_max * tile.div_ceil(NR) * NR];
    let mut a_pack = vec![0.0f32; k_max * MR];

    // Column-strip-major traversal: one strip of brain data is packed once
    // and consumed by every (epoch, voxel-group) pair before eviction.
    for j0 in (0..n).step_by(tile) {
        let tw = tile.min(n - j0);
        let n_tiles = tw.div_ceil(NR);
        for (e, ep) in epochs.iter().enumerate() {
            let k = ep.k();
            if k == 0 {
                for vi in 0..v {
                    out[(layout.row(vi, e)) * n + j0..(layout.row(vi, e)) * n + j0 + tw].fill(0.0);
                }
                continue;
            }
            // Pack (transpose) this epoch's strip of brain data.
            for t in 0..n_tiles {
                let jt = j0 + t * NR;
                let nr = NR.min(n - jt);
                pack_b_panel::<NR>(
                    &ep.brain.as_slice()[jt..],
                    n,
                    k,
                    nr,
                    &mut b_pack[t * k_max * NR..],
                );
            }
            for v0 in (0..v).step_by(MR) {
                let mr = MR.min(v - v0);
                pack_a_panel::<MR>(&ep.assigned.as_slice()[v0 * k..], k, mr, k, &mut a_pack);
                for t in 0..n_tiles {
                    let jt = j0 + t * NR;
                    let nr = NR.min(n - jt);
                    let b_panel = &b_pack[t * k_max * NR..t * k_max * NR + k * NR];
                    // Output rows for consecutive voxels are M rows apart:
                    // leading dimension M·N expresses the interleaving.
                    let c_off = layout.row(v0, e) * n + jt;
                    if mr == MR && nr == NR {
                        microkernel::<MR, NR>(k, &a_pack, b_panel, &mut out[c_off..], m * n, false);
                    } else {
                        microkernel_edge::<MR, NR>(
                            k,
                            mr,
                            nr,
                            &a_pack,
                            b_panel,
                            &mut out[c_off..],
                            m * n,
                            false,
                        );
                    }
                }
            }
        }
    }
    layout
}

/// Compute a compact correlation block for a contiguous range of epochs
/// and a strip of brain-voxel columns.
///
/// This is the primitive behind the *merged* stage-1+2 pipeline
/// (optimization idea #2): the caller asks for exactly the `(all voxels) ×
/// (one subject's epochs) × (one column strip)` block that within-subject
/// normalization needs, normalizes it while it is cache-hot, and only then
/// scatters it to the big interleaved buffer.
///
/// `buf` is written densely: `buf[(vi · E + ei) · W + (j − col0)]` where
/// `E = epoch_range.len()` and `W = col_range.len()`.
///
/// # Panics
/// Panics on inconsistent shapes, empty/out-of-bounds ranges, or a short
/// buffer.
pub fn corr_tile_block(
    epochs: &[EpochPair<'_>],
    epoch_range: Range<usize>,
    col_range: Range<usize>,
    buf: &mut [f32],
) {
    let v = epochs.first().map_or(0, |ep| ep.assigned.rows());
    corr_tile_block_rows(epochs, 0..v, epoch_range, col_range, buf);
}

/// Voxel-range generalization of [`corr_tile_block`]: compute the block
/// only for assigned voxels `voxel_range`, writing `buf` densely with
/// *local* voxel indices (`buf[((vi − v_start) · E + ei) · W + …]`).
///
/// This is the unit of work the parallel fused stage-1+2 pipeline hands
/// to pool workers: each worker owns a disjoint MR-aligned band of
/// assigned voxels. `voxel_range.start` must be a multiple of [`MR`] so
/// the register-tile grouping — and therefore every per-element FMA
/// sequence — matches the serial full-range call bit for bit
/// (DESIGN.md §15 determinism contract).
///
/// # Panics
/// Panics on inconsistent shapes, out-of-bounds ranges, an unaligned
/// `voxel_range.start`, or a short buffer.
pub fn corr_tile_block_rows(
    epochs: &[EpochPair<'_>],
    voxel_range: Range<usize>,
    epoch_range: Range<usize>,
    col_range: Range<usize>,
    buf: &mut [f32],
) {
    assert!(!epochs.is_empty(), "corr_tile_block: no epochs");
    let v = epochs[0].assigned.rows();
    let n = epochs[0].brain.cols();
    assert!(epoch_range.end <= epochs.len(), "corr_tile_block: epoch range out of bounds");
    assert!(col_range.end <= n, "corr_tile_block: column range out of bounds");
    assert!(voxel_range.end <= v, "corr_tile_block: voxel range out of bounds");
    assert_eq!(
        voxel_range.start % MR,
        0,
        "corr_tile_block: voxel range must start on an MR={MR} boundary"
    );
    let v_start = voxel_range.start;
    let v_count = voxel_range.len();
    let e_count = epoch_range.len();
    let w = col_range.len();
    assert!(buf.len() >= v_count * e_count * w, "corr_tile_block: buffer too short");

    let k_max = epochs[epoch_range.clone()].iter().map(EpochPair::k).max().unwrap_or(0);
    let mut b_pack = vec![0.0f32; k_max.max(1) * w.div_ceil(NR) * NR];
    let mut a_pack = vec![0.0f32; k_max.max(1) * MR];
    let n_tiles = w.div_ceil(NR);

    for (ei, eidx) in epoch_range.clone().enumerate() {
        let ep = &epochs[eidx];
        ep.validate(v, n);
        let k = ep.k();
        if k == 0 {
            for vi in 0..v_count {
                buf[(vi * e_count + ei) * w..(vi * e_count + ei + 1) * w].fill(0.0);
            }
            continue;
        }
        for t in 0..n_tiles {
            let jt = col_range.start + t * NR;
            let nr = NR.min(col_range.end - jt);
            pack_b_panel::<NR>(&ep.brain.as_slice()[jt..], n, k, nr, &mut b_pack[t * k_max * NR..]);
        }
        for v0 in voxel_range.clone().step_by(MR) {
            let mr = MR.min(voxel_range.end - v0);
            pack_a_panel::<MR>(&ep.assigned.as_slice()[v0 * k..], k, mr, k, &mut a_pack);
            for t in 0..n_tiles {
                let jt = t * NR;
                let nr = NR.min(w - jt);
                let b_panel = &b_pack[t * k_max * NR..t * k_max * NR + k * NR];
                let c_off = ((v0 - v_start) * e_count + ei) * w + jt;
                if mr == MR && nr == NR {
                    microkernel::<MR, NR>(
                        k,
                        &a_pack,
                        b_panel,
                        &mut buf[c_off..],
                        e_count * w,
                        false,
                    );
                } else {
                    microkernel_edge::<MR, NR>(
                        k,
                        mr,
                        nr,
                        &a_pack,
                        b_panel,
                        &mut buf[c_off..],
                        e_count * w,
                        false,
                    );
                }
            }
        }
    }
}

/// Baseline stage-1 reference: per-epoch `gemm_ref` with the interleaving
/// expressed via `ldc`, exactly how the paper's baseline drives
/// `cblas_sgemm`. Used as the correctness oracle for the optimized kernel.
///
/// # Panics
/// If `epochs` is empty or `out` is shorter than the layout requires.
pub fn corr_reference(epochs: &[EpochPair<'_>], out: &mut [f32]) -> CorrLayout {
    assert!(!epochs.is_empty(), "corr_reference: no epochs");
    let v = epochs[0].assigned.rows();
    let n = epochs[0].brain.cols();
    let m = epochs.len();
    let layout = CorrLayout { n_assigned: v, n_epochs: m, n_brain: n };
    assert!(out.len() >= layout.out_len(), "corr_reference: out buffer too short");
    for (e, ep) in epochs.iter().enumerate() {
        ep.validate(v, n);
        gemm_ref(
            v,
            n,
            ep.k(),
            ep.assigned.as_slice(),
            ep.k().max(1),
            ep.brain.as_slice(),
            n,
            &mut out[e * n..],
            m * n,
        );
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_mat(rows: usize, cols: usize, seed: u32) -> Mat {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        Mat::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
        })
    }

    fn make_epochs(v: usize, n: usize, ks: &[usize]) -> (Vec<Mat>, Vec<Mat>) {
        let mut assigned = Vec::new();
        let mut brain = Vec::new();
        for (i, &k) in ks.iter().enumerate() {
            assigned.push(pseudo_mat(v, k, 100 + i as u32));
            brain.push(pseudo_mat(k, n, 200 + i as u32));
        }
        (assigned, brain)
    }

    fn pairs<'a>(assigned: &'a [Mat], brain: &'a [Mat]) -> Vec<EpochPair<'a>> {
        assigned.iter().zip(brain).map(|(a, b)| EpochPair { assigned: a, brain: b }).collect()
    }

    fn compare(v: usize, n: usize, ks: &[usize], opts: TallSkinnyOpts) {
        let (assigned, brain) = make_epochs(v, n, ks);
        let eps = pairs(&assigned, &brain);
        let m = ks.len();
        let mut got = vec![f32::NAN; v * m * n];
        let mut expect = vec![0.0; v * m * n];
        let l1 = corr_tall_skinny(&eps, &mut got, opts);
        let l2 = corr_reference(&eps, &mut expect);
        assert_eq!(l1, l2);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!((g - e).abs() < 1e-4, "idx {i}: {g} vs {e}");
        }
    }

    #[test]
    fn matches_reference_small() {
        compare(8, 64, &[12, 12], TallSkinnyOpts::default());
    }

    #[test]
    fn matches_reference_ragged_everything() {
        compare(11, 93, &[12, 7, 12, 5], TallSkinnyOpts { tile_cols: 48 });
    }

    #[test]
    fn matches_reference_fcma_shape_scaled() {
        // 24 voxels x 300 brain voxels x 6 epochs of 12 tp.
        compare(24, 300, &[12; 6], TallSkinnyOpts::default());
    }

    #[test]
    fn matches_reference_single_voxel_single_epoch() {
        compare(1, 20, &[12], TallSkinnyOpts { tile_cols: 16 });
    }

    #[test]
    fn interleaved_rows_are_grouped_by_voxel() {
        // Construct epochs where the correlation row value identifies the
        // epoch, then verify row (v, e) lands at v*M + e.
        let v = 2;
        let n = 4;
        let m = 3;
        let mut assigned = Vec::new();
        let mut brain = Vec::new();
        for e in 0..m {
            // A[v, 0] = v + 1; B[0, j] = (e + 1) * 10 -> C[v, j] = (v+1)(e+1)*10
            assigned.push(Mat::from_fn(v, 1, |r, _| (r + 1) as f32));
            brain.push(Mat::from_fn(1, n, |_, _| (e + 1) as f32 * 10.0));
        }
        let eps = pairs(&assigned, &brain);
        let mut out = vec![0.0; v * m * n];
        let layout = corr_tall_skinny(&eps, &mut out, TallSkinnyOpts::default());
        for vi in 0..v {
            for e in 0..m {
                let row = layout.row(vi, e);
                let want = (vi + 1) as f32 * (e + 1) as f32 * 10.0;
                assert!(out[row * n..(row + 1) * n].iter().all(|&x| x == want));
            }
        }
    }

    #[test]
    fn tile_block_matches_full_computation() {
        let v = 5;
        let n = 40;
        let ks = [12usize; 6];
        let (assigned, brain) = make_epochs(v, n, &ks);
        let eps = pairs(&assigned, &brain);
        let mut full = vec![0.0; v * ks.len() * n];
        let layout = corr_reference(&eps, &mut full);

        // Block: epochs 2..5, columns 7..29.
        let er = 2..5usize;
        let cr = 7..29usize;
        let w = cr.len();
        let ec = er.len();
        let mut buf = vec![f32::NAN; v * ec * w];
        corr_tile_block(&eps, er.clone(), cr.clone(), &mut buf);
        for vi in 0..v {
            for (ei, e) in er.clone().enumerate() {
                for (ji, j) in cr.clone().enumerate() {
                    let got = buf[(vi * ec + ei) * w + ji];
                    let want = full[layout.row(vi, e) * n + j];
                    assert!((got - want).abs() < 1e-4, "v{vi} e{e} j{j}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn tile_block_rows_bit_identical_to_full_range() {
        // Band-partitioned computation (the parallel fused pipeline's unit
        // of work) must reproduce the full-range tile bit for bit as long
        // as band starts are MR-aligned.
        let v = 21; // 2 full MR groups + a 5-row edge
        let n = 50;
        let ks = [12usize, 7, 12];
        let (assigned, brain) = make_epochs(v, n, &ks);
        let eps = pairs(&assigned, &brain);
        let er = 0..ks.len();
        let cr = 3..47usize;
        let w = cr.len();
        let ec = er.len();
        let mut full = vec![f32::NAN; v * ec * w];
        corr_tile_block(&eps, er.clone(), cr.clone(), &mut full);
        for bands in [1usize, 2, 3] {
            let n_groups = v.div_ceil(MR);
            let mut v0 = 0usize;
            for band in 0..bands.min(n_groups) {
                let groups = n_groups / bands + usize::from(band < n_groups % bands);
                let v1 = (v0 + groups * MR).min(v);
                let mut part = vec![f32::NAN; (v1 - v0) * ec * w];
                corr_tile_block_rows(&eps, v0..v1, er.clone(), cr.clone(), &mut part);
                for (li, got) in part.iter().enumerate() {
                    let vi = v0 + li / (ec * w);
                    let want = full[(vi * ec) * w + li % (ec * w)];
                    assert_eq!(got.to_bits(), want.to_bits(), "bands={bands} band={band}");
                }
                v0 = v1;
            }
            assert_eq!(v0, v);
        }
    }

    #[test]
    #[should_panic(expected = "MR=8 boundary")]
    fn tile_block_rows_rejects_unaligned_start() {
        let a = Mat::zeros(16, 3);
        let b = Mat::zeros(3, 5);
        let eps = [EpochPair { assigned: &a, brain: &b }];
        let mut buf = vec![0.0; 16 * 5];
        corr_tile_block_rows(&eps, 3..16, 0..1, 0..5, &mut buf);
    }

    #[test]
    fn normalized_inputs_give_unit_self_correlation() {
        // When A rows are also columns of B and all are Eq.2-normalized,
        // the correlation of a voxel with itself must be ~1.
        use crate::norms::normalize_epoch;
        let v = 3;
        let n = 3;
        let k = 12;
        let raw = pseudo_mat(n, k, 7);
        let mut norm = raw.clone();
        for r in 0..n {
            normalize_epoch(norm.row_mut(r));
        }
        let brain = norm.transposed(); // k x n
        let eps = [EpochPair { assigned: &norm, brain: &brain }];
        let mut out = vec![0.0; v * n];
        let layout = corr_tall_skinny(&eps, &mut out, TallSkinnyOpts::default());
        for vi in 0..v {
            let self_corr = out[layout.row(vi, 0) * n + vi];
            assert!((self_corr - 1.0).abs() < 1e-4, "self corr {self_corr}");
        }
    }

    #[test]
    #[should_panic(expected = "out buffer")]
    fn rejects_short_output() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(3, 5);
        let eps = [EpochPair { assigned: &a, brain: &b }];
        let mut out = vec![0.0; 5];
        let _ = corr_tall_skinny(&eps, &mut out, TallSkinnyOpts::default());
    }
}
