//! # fcma-linalg — dense linear algebra substrate for FCMA
//!
//! The SC'15 FCMA paper replaces Intel MKL's generic GEMM/SYRK with
//! shape-specialized kernels for the tall-skinny matrices that dominate
//! full-correlation-matrix analysis. This crate provides the Rust
//! equivalents of the whole cast:
//!
//! * [`Mat`] — the row-major `f32` matrix everything operates on;
//! * [`gemm_ref::gemm_ref`] / [`gemm_ref::syrk_ref`] — triple-loop oracles;
//! * [`gemm_blocked`](crate::gemm_blocked::gemm_blocked) — a Goto-style cache-blocked generic GEMM, the
//!   stand-in for MKL `cblas_sgemm` in the paper's baseline;
//! * [`tall_skinny`] — the paper's optimized stage-1 correlation kernel
//!   (L2-sized column strips, packed panels, interleaved-by-voxel output);
//! * [`syrk`] — the paper's optimized stage-3 kernel-matrix SYRK
//!   (96-deep panels, register microkernel, lock-merged partial `C`);
//! * [`microkernel`] — the shared register-tile microkernels;
//! * [`norms`] — epoch normalization (Eq. 2), Fisher transform (Eq. 4),
//!   z-scoring (Eq. 5) and vector primitives.
//!
//! Every optimized kernel is property-tested against the reference
//! implementations.

pub mod cast;
pub mod gemm_blocked;
pub mod gemm_ref;
pub mod invariant;
pub mod mat;
pub mod microkernel;
pub mod norms;
pub mod ops;
pub mod syrk;
pub mod tall_skinny;

pub use cast::{f32_from_f64, f32_from_usize, f64_from_usize};
pub use gemm_blocked::{
    gemm_blocked, gemm_blocked_parallel, gemm_blocked_scratch, gemm_blocked_with, BlockSizes,
    GemmScratch,
};
pub use gemm_ref::{gemm_ref, syrk_ref};
pub use mat::Mat;
pub use norms::{
    dot, fast_ln, fisher_z, fisher_z_slice, mean_var_onepass, normalize_epoch, zscore, zscore_with,
};
pub use ops::{add_scaled, col_means, gemv, gemv_t, row_means, scale};
pub use syrk::{
    syrk_dot, syrk_panel, syrk_panel_parallel, syrk_panel_scratch, syrk_panel_with, SyrkScratch,
    PANEL_K,
};
pub use tall_skinny::{
    corr_reference, corr_tall_skinny, corr_tile_block, corr_tile_block_rows, CorrLayout, EpochPair,
    TallSkinnyOpts,
};
