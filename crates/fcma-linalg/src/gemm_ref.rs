//! Reference GEMM: the correctness oracle for every optimized kernel.
//!
//! A plain triple loop over row-major operands with an explicit leading
//! dimension on every matrix, mirroring the `cblas_sgemm` calling
//! convention the paper's baseline uses. All optimized kernels in this
//! crate are tested against this implementation.

/// `C[0..m, 0..n] = A[0..m, 0..k] · B[0..k, 0..n]` (row-major, overwrite).
///
/// `lda`, `ldb`, `ldc` are leading dimensions (row strides) of the
/// respective buffers; they let callers write into interleaved output
/// layouts exactly the way the paper drives `cblas_sgemm` with a custom
/// `ldc` to group correlation rows by voxel (§3.2).
///
/// # Panics
/// Panics if any leading dimension is smaller than the logical row width
/// or any buffer is too short for the access pattern.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn gemm_ref(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    check_gemm_dims(m, n, k, a.len(), lda, b.len(), ldb, c.len(), ldc);
    for i in 0..m {
        let arow = &a[i * lda..i * lda + k];
        let crow = &mut c[i * ldc..i * ldc + n];
        crow.fill(0.0);
        for (l, &ail) in arow.iter().enumerate() {
            let brow = &b[l * ldb..l * ldb + n];
            for j in 0..n {
                crow[j] += ail * brow[j];
            }
        }
    }
}

/// Validate GEMM buffer shapes; shared by every kernel in this crate.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS call it validates
                                     // audit: pure
pub(crate) fn check_gemm_dims(
    m: usize,
    n: usize,
    k: usize,
    a_len: usize,
    lda: usize,
    b_len: usize,
    ldb: usize,
    c_len: usize,
    ldc: usize,
) {
    assert!(lda >= k, "gemm: lda {lda} < k {k}");
    assert!(ldb >= n, "gemm: ldb {ldb} < n {n}");
    assert!(ldc >= n, "gemm: ldc {ldc} < n {n}");
    if m > 0 {
        assert!(a_len >= (m - 1) * lda + k, "gemm: A buffer too short");
        assert!(c_len >= (m - 1) * ldc + n, "gemm: C buffer too short");
    }
    if k > 0 {
        assert!(b_len >= (k - 1) * ldb + n, "gemm: B buffer too short");
    }
}

/// Reference symmetric rank-k update: `C[0..m, 0..m] = A · Aᵀ` where `A`
/// is `m × n` row-major with leading dimension `lda`.
///
/// Computes the full (symmetric) matrix; optimized SYRK kernels may compute
/// one triangle and mirror it, which this oracle verifies.
///
/// # Panics
/// If `lda < n`, `ldc < m`, or either buffer is shorter than the
/// leading-dimension layout requires.
pub fn syrk_ref(m: usize, n: usize, a: &[f32], lda: usize, c: &mut [f32], ldc: usize) {
    assert!(lda >= n, "syrk: lda {lda} < n {n}");
    assert!(ldc >= m, "syrk: ldc {ldc} < m {m}");
    if m > 0 {
        assert!(a.len() >= (m - 1) * lda + n, "syrk: A buffer too short");
        assert!(c.len() >= (m - 1) * ldc + m, "syrk: C buffer too short");
    }
    for i in 0..m {
        for j in 0..=i {
            let mut s = 0.0f32;
            let ai = &a[i * lda..i * lda + n];
            let aj = &a[j * lda..j * lda + n];
            for l in 0..n {
                s += ai[l] * aj[l];
            }
            c[i * ldc + j] = s;
            c[j * ldc + i] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let m = 4;
        let a = Mat::from_fn(m, m, |r, c| if r == c { 1.0 } else { 0.0 });
        let b = Mat::from_fn(m, m, |r, c| (r * m + c) as f32);
        let mut c = Mat::zeros(m, m);
        gemm_ref(m, m, m, a.as_slice(), m, b.as_slice(), m, c.as_mut_slice(), m);
        assert_eq!(c, b);
    }

    #[test]
    fn known_2x2_product() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_ref(2, 2, 2, &a, 2, &b, 2, &mut c, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn overwrites_rather_than_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [99.0; 4];
        gemm_ref(2, 2, 2, &a, 2, &b, 2, &mut c, 2);
        assert_eq!(c, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn respects_ldc_interleaving() {
        // Two 1x2 results written with ldc=4 into a 2x4 buffer: rows land
        // at offsets 0 and 4, leaving columns 2..4 untouched.
        let a = [1.0, 1.0];
        let b = [1.0, 2.0, 10.0, 20.0];
        let mut c = [7.0; 8];
        gemm_ref(1, 2, 2, &a, 2, &b, 2, &mut c, 4);
        assert_eq!(c, [11.0, 22.0, 7.0, 7.0, 7.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn zero_k_yields_zero_matrix() {
        let mut c = [5.0; 4];
        gemm_ref(2, 2, 0, &[], 0, &[], 2, &mut c, 2);
        assert_eq!(c, [0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "lda")]
    fn rejects_small_lda() {
        let mut c = [0.0; 4];
        gemm_ref(2, 2, 3, &[0.0; 6], 2, &[0.0; 6], 2, &mut c, 2);
    }

    #[test]
    fn syrk_matches_explicit_gram() {
        let a = Mat::from_fn(3, 5, |r, c| ((r + 1) * (c + 2)) as f32 * 0.1);
        let mut c = Mat::zeros(3, 3);
        syrk_ref(3, 5, a.as_slice(), 5, c.as_mut_slice(), 3);
        let at = a.transposed();
        let mut expect = Mat::zeros(3, 3);
        gemm_ref(3, 3, 5, a.as_slice(), 5, at.as_slice(), 3, expect.as_mut_slice(), 3);
        assert!(c.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn syrk_output_is_symmetric() {
        let a = Mat::from_fn(4, 7, |r, c| ((r * 13 + c * 7) % 5) as f32 - 2.0);
        let mut c = Mat::zeros(4, 4);
        syrk_ref(4, 7, a.as_slice(), 7, c.as_mut_slice(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }
}
