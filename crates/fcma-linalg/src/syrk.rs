//! Symmetric rank-k update kernels: `C = A · Aᵀ` for tall-skinny `A`.
//!
//! Stage 3 of FCMA precomputes, per voxel, the linear-SVM kernel matrix
//! `K = X · Xᵀ` where `X` is `M × N` (`M` ≈ 200 epochs, `N` ≈ 35,000
//! brain voxels) — a symmetric product whose *depth* dimension is enormous
//! while the output is tiny. The paper replaces MKL's `cblas_ssyrk` with a
//! custom kernel (§4.4, Fig. 7): threads walk the long dimension in blocks
//! of 96, copy each block into a local buffer, transpose sub-blocks, run a
//! `16x9x96` register microkernel, and merge their partial `C` under a
//! lock.
//!
//! Three implementations live here:
//! * [`crate::gemm_ref::syrk_ref`] — the triple-loop oracle (in `gemm_ref`);
//! * [`syrk_dot`] — a generic library-style version (chunked row dot
//!   products over the lower triangle), the `cblas_ssyrk` stand-in;
//! * [`syrk_panel`] — the paper's panel-blocked, microkernel-based design,
//!   with a work-stealing parallel path ([`syrk_panel_parallel`]) that
//!   splits `C` into `MR`-aligned row bands. Unlike the paper's
//!   OpenMP-lock partial-`C` merge (§4.4), each band walks every panel
//!   in serial order and owns its output rows outright, so the parallel
//!   result is *bit-identical* to the serial kernel at any thread count
//!   (DESIGN.md §15) — there is no arrival-order reduction to race.

use crate::microkernel::{microkernel, microkernel_edge, pack_a_panel};
use fcma_sync::pool::Pool;

/// Register tile height of the SYRK microkernel.
pub const MR: usize = 8;
/// Register tile width of the SYRK microkernel.
pub const NR: usize = 16;
/// Depth of one packed panel — the paper's "blocks of 96 rows (an integral
/// multiple of VPU length)".
pub const PANEL_K: usize = 96;

/// Generic chunked-dot-product SYRK (the `cblas_ssyrk` stand-in).
///
/// Computes the lower triangle of `C[0..m, 0..m] = A · Aᵀ` via row dot
/// products taken `kc` elements at a time, then mirrors. Vectorizes well
/// per dot product but re-streams both operand rows from memory for every
/// `C` entry — the reuse failure mode the paper measures for MKL on this
/// shape.
///
/// # Panics
/// If `lda < n`, `ldc < m`, or either buffer is shorter than the
/// leading-dimension layout requires.
pub fn syrk_dot(m: usize, n: usize, a: &[f32], lda: usize, c: &mut [f32], ldc: usize) {
    assert!(lda >= n, "syrk_dot: lda {lda} < n {n}");
    assert!(ldc >= m, "syrk_dot: ldc {ldc} < m {m}");
    if m > 0 {
        assert!(a.len() >= (m - 1) * lda + n, "syrk_dot: A too short");
        assert!(c.len() >= (m - 1) * ldc + m, "syrk_dot: C too short");
    }
    for i in 0..m {
        let ai = &a[i * lda..i * lda + n];
        for j in 0..=i {
            let aj = &a[j * lda..j * lda + n];
            let s = crate::norms::dot(ai, aj);
            c[i * ldc + j] = s;
            c[j * ldc + i] = s;
        }
    }
}

/// The paper's optimized SYRK: panel-blocked over the long dimension with
/// a register microkernel. Sequential driver; see [`syrk_panel_parallel`]
/// for the threaded version.
pub fn syrk_panel(m: usize, n: usize, a: &[f32], lda: usize, c: &mut [f32], ldc: usize) {
    syrk_panel_with(PANEL_K, m, n, a, lda, c, ldc);
}

/// [`syrk_panel`] with an explicit panel depth — the ablation knob for
/// the paper's choice of 96 (an integral multiple of the 16-lane VPU
/// width sized so a packed `m × panel_k` slab stays L2-resident).
///
/// # Panics
/// Panics if `panel_k` is zero or buffers are inconsistent.
pub fn syrk_panel_with(
    panel_k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    c: &mut [f32],
    ldc: usize,
) {
    let mut scratch = SyrkScratch::new(m, panel_k);
    syrk_panel_scratch(m, n, a, lda, c, ldc, &mut scratch);
}

/// [`syrk_panel_with`] with caller-provided packing buffers — the hot
/// entry point (DESIGN.md §14). The panel depth is carried by the
/// scratch; a [`SyrkScratch`] built once can be reused across calls (and
/// across smaller `m`) without touching the allocator, which is what the
/// paper's per-thread `A_local` buffers amount to.
///
/// Results are bit-identical to the allocating wrappers: every scratch
/// region read by the microkernels is fully overwritten first, so stale
/// contents from a previous call can never leak into the product.
///
/// # Panics
/// Panics if buffers are inconsistent or `scratch` was built for a
/// smaller `m`.
pub fn syrk_panel_scratch(
    m: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    c: &mut [f32],
    ldc: usize,
    scratch: &mut SyrkScratch,
) {
    assert!(scratch.m >= m, "syrk: scratch built for m {} < {m}", scratch.m);
    validate(m, n, a.len(), lda, c.len(), ldc);
    if m == 0 {
        return;
    }
    zero_lower(c, m, ldc);
    let panel_k = scratch.panel_k;
    for p in (0..n).step_by(panel_k) {
        let kp = panel_k.min(n - p);
        accumulate_panel(m, 0, m, a, lda, p, kp, c, ldc, scratch);
    }
    mirror_lower_to_upper(c, m, ldc);
}

/// Work-stealing parallel variant: `C`'s rows are split into contiguous
/// `MR`-aligned bands, one pool task per band. Every band walks the
/// full panel sequence in order and writes only its own rows, so each
/// output element sees exactly the serial kernel's instruction sequence
/// — results are bit-identical to [`syrk_panel_scratch`] at every
/// thread count (the deterministic-reduction contract, DESIGN.md §15).
/// Each worker reuses one [`SyrkScratch`] across its bands.
///
/// # Panics
/// If `lda < n`, `ldc < m`, or either buffer is shorter than the
/// leading-dimension layout requires.
pub fn syrk_panel_parallel(
    pool: &Pool,
    m: usize,
    n: usize,
    a: &[f32],
    lda: usize,
    c: &mut [f32],
    ldc: usize,
) {
    validate(m, n, a.len(), lda, c.len(), ldc);
    if m == 0 {
        return;
    }
    let n_tiles = m.div_ceil(MR);
    let bands = pool.threads().min(n_tiles).max(1);
    if bands <= 1 {
        let mut scratch = SyrkScratch::new(m, PANEL_K);
        syrk_panel_scratch(m, n, a, lda, c, ldc, &mut scratch);
        return;
    }
    zero_lower(c, m, ldc);
    // Carve MR-aligned row bands off the output; each task owns rows
    // [r0, r1) outright (disjoint &mut slices, no reduction lock).
    let mut tasks: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(bands);
    let mut rest: &mut [f32] = c;
    let mut r0 = 0usize;
    for band in 0..bands {
        let tiles = n_tiles / bands + usize::from(band < n_tiles % bands);
        let r1 = (r0 + tiles * MR).min(m);
        if band + 1 == bands {
            tasks.push((r0, r1, rest));
            rest = &mut [];
        } else {
            let (head, tail) = rest.split_at_mut((r1 - r0) * ldc);
            tasks.push((r0, r1, head));
            rest = tail;
        }
        r0 = r1;
    }
    let _ = rest;
    // audit: disjoint(tasks) — row bands are carved by split_at_mut, one non-overlapping C band per task
    pool.run_init(
        tasks,
        || SyrkScratch::new(m, PANEL_K),
        |scratch, _idx, (r0, r1, band)| {
            for p in (0..n).step_by(PANEL_K) {
                let kp = PANEL_K.min(n - p);
                accumulate_panel(m, r0, r1, a, lda, p, kp, band, ldc, scratch);
            }
        },
    );
    mirror_lower_to_upper(c, m, ldc);
}

/// Reusable packing buffers for one thread's panel walk (`A_local` and
/// `A^T_local` in the paper's Fig. 7 terminology). Build once with
/// [`SyrkScratch::new`], thread through [`syrk_panel_scratch`]; the
/// buffers are private so only the kernel's fully-overwriting writes
/// ever touch them.
pub struct SyrkScratch {
    /// `MR`-tall packed slabs for every row tile (the `Aᵀ_local` role).
    a_packs: Vec<f32>,
    /// One `NR`-wide right-operand panel, rebuilt per column tile.
    b_panel: Vec<f32>,
    /// Panel depth the buffers were sized for; also the walk's step.
    panel_k: usize,
    /// Largest `m` the `a_packs` slab can pack.
    m: usize,
}

impl SyrkScratch {
    /// Size buffers for an `m`-row update walked `panel_k` deep.
    ///
    /// # Panics
    /// Panics if `panel_k` is zero.
    #[must_use]
    pub fn new(m: usize, panel_k: usize) -> Self {
        assert!(panel_k > 0, "syrk: panel_k must be positive");
        let n_row_tiles = m.div_ceil(MR);
        SyrkScratch {
            a_packs: vec![0.0; n_row_tiles * panel_k * MR],
            b_panel: vec![0.0; panel_k * NR],
            panel_k,
            m,
        }
    }
}

/// Add one `kp`-deep panel's contribution to the lower triangle of the
/// `MR`-aligned row band `[r0, r1)`. `c_band` holds only the band's
/// rows (global row `i` lives at `(i - r0) * ldc`); the serial kernel
/// passes the full range `(0, m)` with `c_band = c`. Because band
/// boundaries are `MR`-aligned, the tile walk — and therefore each
/// element's accumulation sequence — is identical however the rows are
/// banded.
#[allow(clippy::too_many_arguments)]
// audit: hot
fn accumulate_panel(
    m: usize,
    r0: usize,
    r1: usize,
    a: &[f32],
    lda: usize,
    p: usize,
    kp: usize,
    c_band: &mut [f32],
    ldc: usize,
    scratch: &mut SyrkScratch,
) {
    let SyrkScratch { a_packs, b_panel, panel_k, .. } = scratch;
    let panel_k = *panel_k;
    // Pack every MR-tall row tile of A[r0..r1, p..p+kp] once; tiles serve
    // as both the left (a_panel) and — re-read NR-wide — the right operand.
    for (t, i0) in (r0..r1).step_by(MR).enumerate() {
        let mr = MR.min(m - i0);
        pack_a_panel::<MR>(&a[i0 * lda + p..], lda, mr, kp, &mut a_packs[t * panel_k * MR..]);
    }
    // Right-operand panels need the B layout (l*NR + j = A[j0+j, p+l]);
    // build them per column tile from A directly. Only column tiles at
    // or left of the band's last row contribute to its lower triangle.
    for j0 in (0..r1).step_by(NR) {
        let nr = NR.min(m - j0);
        for l in 0..kp {
            let dst = &mut b_panel[l * NR..(l + 1) * NR];
            for (j, d) in dst[..nr].iter_mut().enumerate() {
                *d = a[(j0 + j) * lda + p + l];
            }
            dst[nr..].fill(0.0);
        }
        // Only row tiles at or below this column tile contribute to the
        // lower triangle (j0 <= i0 covers all i >= j; see mirror step).
        for (t, i0) in (r0..r1).step_by(MR).enumerate() {
            if i0 < j0 {
                continue;
            }
            let mr = MR.min(m - i0);
            let a_panel = &a_packs[t * panel_k * MR..t * panel_k * MR + kp * MR];
            let c_off = (i0 - r0) * ldc + j0;
            if mr == MR && nr == NR {
                microkernel::<MR, NR>(kp, a_panel, b_panel, &mut c_band[c_off..], ldc, true);
            } else {
                microkernel_edge::<MR, NR>(
                    kp,
                    mr,
                    nr,
                    a_panel,
                    b_panel,
                    &mut c_band[c_off..],
                    ldc,
                    true,
                );
            }
        }
    }
}

// audit: pure
fn validate(m: usize, n: usize, a_len: usize, lda: usize, c_len: usize, ldc: usize) {
    assert!(lda >= n, "syrk: lda {lda} < n {n}");
    assert!(ldc >= m, "syrk: ldc {ldc} < m {m}");
    if m > 0 {
        assert!(a_len >= (m - 1) * lda + n, "syrk: A too short");
        assert!(c_len >= (m - 1) * ldc + m, "syrk: C too short");
    }
}

// audit: pure
fn zero_lower(c: &mut [f32], m: usize, ldc: usize) {
    // Tiles straddling the diagonal write a few upper entries too; zero the
    // full square so stale data never leaks through the mirror step.
    for i in 0..m {
        c[i * ldc..i * ldc + m].fill(0.0);
    }
}

// audit: pure
fn mirror_lower_to_upper(c: &mut [f32], m: usize, ldc: usize) {
    for i in 0..m {
        for j in i + 1..m {
            c[i * ldc + j] = c[j * ldc + i];
        }
    }
}

/// Re-export of the reference oracle for convenience.
pub use crate::gemm_ref::syrk_ref;

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(99);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn check(m: usize, n: usize, f: impl Fn(usize, usize, &[f32], usize, &mut [f32], usize)) {
        let a = pseudo(m * n, 3);
        let mut got = vec![f32::NAN; m * m];
        let mut expect = vec![0.0; m * m];
        f(m, n, &a, n, &mut got, m);
        syrk_ref(m, n, &a, n, &mut expect, m);
        let tol = 1e-4 * n.max(1) as f32 * 0.05 + 1e-4;
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!((g - e).abs() < tol, "m={m} n={n} idx {i}: {g} vs {e}");
        }
    }

    #[test]
    fn dot_version_matches_reference() {
        check(7, 33, syrk_dot);
        check(16, 96, syrk_dot);
    }

    #[test]
    fn panel_version_matches_reference_exact_panels() {
        check(16, 192, syrk_panel);
    }

    #[test]
    fn panel_version_matches_reference_ragged() {
        check(13, 100, syrk_panel);
        check(9, 97, syrk_panel);
        check(21, 1, syrk_panel);
        check(1, 200, syrk_panel);
    }

    #[test]
    fn panel_version_fcma_shape_scaled() {
        // M ~ epochs (204 in the paper; scaled), N ~ brain voxels.
        check(52, 700, syrk_panel);
    }

    #[test]
    fn parallel_version_matches_reference() {
        for threads in [2usize, 3, 8] {
            let pool = Pool::new(threads);
            let f = |m: usize, n: usize, a: &[f32], lda: usize, c: &mut [f32], ldc: usize| {
                syrk_panel_parallel(&pool, m, n, a, lda, c, ldc);
            };
            check(20, 2000, f);
            check(17, 777, f);
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_at_every_thread_count() {
        for (m, n) in [(20usize, 300usize), (17, 97), (9, 45), (33, 128)] {
            let a = pseudo(m * n, 13);
            let mut serial = vec![0.0; m * m];
            syrk_panel(m, n, &a, n, &mut serial, m);
            for threads in [1usize, 2, 3, 8] {
                let mut par = vec![f32::NAN; m * m];
                syrk_panel_parallel(&Pool::new(threads), m, n, &a, n, &mut par, m);
                for (p, s) in par.iter().zip(&serial) {
                    assert_eq!(p.to_bits(), s.to_bits(), "threads={threads} m={m} n={n}");
                }
            }
        }
    }

    #[test]
    fn output_is_symmetric() {
        let m = 19;
        let n = 131;
        let a = pseudo(m * n, 8);
        let mut c = vec![0.0; m * m];
        syrk_panel(m, n, &a, n, &mut c, m);
        for i in 0..m {
            for j in 0..m {
                assert_eq!(c[i * m + j], c[j * m + i], "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn diagonal_is_nonnegative() {
        let m = 10;
        let n = 50;
        let a = pseudo(m * n, 21);
        let mut c = vec![0.0; m * m];
        syrk_panel(m, n, &a, n, &mut c, m);
        for i in 0..m {
            assert!(c[i * m + i] >= 0.0, "negative diagonal at {i}");
        }
    }

    #[test]
    fn panel_depth_does_not_change_results() {
        let m = 17;
        let n = 333;
        let a = pseudo(m * n, 11);
        let mut expect = vec![0.0; m * m];
        syrk_ref(m, n, &a, n, &mut expect, m);
        for panel_k in [1usize, 16, 48, 96, 200, 512] {
            let mut got = vec![0.0; m * m];
            syrk_panel_with(panel_k, m, n, &a, n, &mut got, m);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 0.05, "panel {panel_k}: {g} vs {e}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "panel_k")]
    fn rejects_zero_panel_depth() {
        let mut c = vec![0.0; 4];
        syrk_panel_with(0, 2, 4, &[0.0; 8], 4, &mut c, 2);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One dirty scratch walked across shrinking shapes must reproduce
        // the fresh-allocation path bit for bit.
        let mut scratch = SyrkScratch::new(24, 48);
        for (m, n, seed) in [(24usize, 150usize, 5u32), (17, 97, 6), (9, 200, 7)] {
            let a = pseudo(m * n, seed);
            let mut fresh = vec![0.0; m * m];
            syrk_panel_with(48, m, n, &a, n, &mut fresh, m);
            let mut reused = vec![f32::NAN; m * m];
            syrk_panel_scratch(m, n, &a, n, &mut reused, m, &mut scratch);
            for (r, f) in reused.iter().zip(&fresh) {
                assert_eq!(r.to_bits(), f.to_bits(), "m={m} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "scratch built for")]
    fn rejects_undersized_scratch() {
        let mut scratch = SyrkScratch::new(4, 16);
        let mut c = vec![0.0; 64];
        syrk_panel_scratch(8, 16, &[0.0; 128], 16, &mut c, 8, &mut scratch);
    }

    #[test]
    fn zero_depth_gives_zero_matrix() {
        let mut c = vec![5.0; 9];
        syrk_panel(3, 0, &[], 0, &mut c, 3);
        assert_eq!(c, vec![0.0; 9]);
    }

    #[test]
    fn respects_ldc() {
        let m = 4;
        let n = 24;
        let a = pseudo(m * n, 4);
        let ldc = 7;
        let mut c = vec![-3.0; m * ldc];
        syrk_panel(m, n, &a, n, &mut c, ldc);
        let mut expect = vec![0.0; m * m];
        syrk_ref(m, n, &a, n, &mut expect, m);
        for i in 0..m {
            for j in 0..m {
                assert!((c[i * ldc + j] - expect[i * m + j]).abs() < 1e-3);
            }
            for j in m..ldc.min(if i + 1 < m { ldc } else { m }) {
                // Padding beyond column m must be untouched (except the
                // last row, whose padding was never part of the buffer walk).
                assert_eq!(c[i * ldc + j], -3.0, "padding clobbered at ({i},{j})");
            }
        }
    }
}
