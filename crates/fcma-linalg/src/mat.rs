//! Dense row-major single-precision matrix type.
//!
//! FCMA stores everything in single precision (the paper's §3.2: "All
//! floating point values are represented in single precision"), so [`Mat`]
//! is an `f32` matrix. It is deliberately small: a contiguous row-major
//! buffer plus shape, with just enough structure (leading-dimension aware
//! writes, row views, transposes) to express the kernels in this crate.
//!
//! Shape errors are programming errors, not recoverable conditions, so the
//! API panics on mismatched dimensions (the same contract as `ndarray` and
//! BLAS wrappers).

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// `rows * cols`, or a clear panic when the product overflows `usize`
/// (an unchecked multiply would wrap and silently build a matrix with
/// far too small a buffer).
fn checked_len(rows: usize, cols: usize) -> usize {
    rows.checked_mul(cols).unwrap_or_else(|| panic!("Mat: {rows} x {cols} overflows usize"))
}

impl Mat {
    /// Create a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; checked_len(rows, cols)] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or the product overflows
    /// `usize`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            checked_len(rows, cols),
            "Mat::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(checked_len(rows, cols));
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    // audit: pure
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "Mat::get({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Set element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        assert!(row < self.rows && col < self.cols, "Mat::set({row},{col}) out of bounds");
        self.data[row * self.cols + col] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    /// If `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Mat::row({r}) out of bounds (rows={})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    /// If `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "Mat::row_mut({r}) out of bounds (rows={})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole buffer, mutably, in row-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// A newly allocated transpose.
    // audit: allow(panicpath) — indices range over self's own dims, in-bounds by construction
    pub fn transposed(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Copy rows `[start, start + count)` into a new matrix.
    ///
    /// # Panics
    /// Panics if the range exceeds the row count.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn row_block(&self, start: usize, count: usize) -> Mat {
        assert!(
            start + count <= self.rows,
            "Mat::row_block: rows [{start}, {}) out of bounds (rows={})",
            start + count,
            self.rows
        );
        let data = self.data[start * self.cols..(start + count) * self.cols].to_vec();
        Mat { rows: count, cols: self.cols, data }
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> f32 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: col mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Frobenius norm.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fill the matrix with a constant value.
    // audit: pure
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(max_show) {
                write!(f, "{:>10.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(max_show) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_show {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_contents() {
        let m = Mat::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Mat::zeros(4, 4);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.get(3, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Mat::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn row_views_are_contiguous() {
        let m = Mat::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Mat::zeros(2, 2);
        m.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn transpose_roundtrips() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 100 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_block_extracts_expected_rows() {
        let m = Mat::from_fn(5, 2, |r, _| r as f32);
        let b = m.row_block(1, 3);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.row(0), &[1.0, 1.0]);
        assert_eq!(b.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn max_abs_diff_and_frobenius() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 2.0]);
        let b = Mat::from_vec(1, 3, vec![1.0, 0.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
        assert_eq!(a.frobenius_norm(), 3.0);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn zeros_rejects_overflowing_shape() {
        // usize::MAX x 2 wraps to usize::MAX - 1 if multiplied unchecked;
        // the constructor must panic with a clear message instead.
        let _ = Mat::zeros(usize::MAX, 2);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn from_vec_rejects_overflowing_shape() {
        // Unchecked, (MAX/2 + 1) * 2 wraps to exactly 0 and an empty data
        // vector would pass the length check, fabricating a matrix whose
        // indexing math is garbage.
        let _ = Mat::from_vec(usize::MAX / 2 + 1, 2, Vec::new());
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn from_fn_rejects_overflowing_shape() {
        let _ = Mat::from_fn(usize::MAX, 3, |_, _| 0.0);
    }
}
