//! Property-based tests pinning every optimized kernel to the reference
//! implementations across randomized shapes and data.

use fcma_linalg::gemm_blocked::BlockSizes;
use fcma_linalg::tall_skinny::{EpochPair, TallSkinnyOpts};
use fcma_linalg::*;
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

fn close(a: f32, b: f32, scale: f32) -> bool {
    (a - b).abs() <= 1e-3 * scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_blocked_matches_reference(
        m in 1usize..24,
        n in 1usize..70,
        k in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng_state = seed;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a: Vec<f32> = (0..m * k.max(1)).map(|_| next()).collect();
        let b: Vec<f32> = (0..k.max(1) * n).map(|_| next()).collect();
        let mut got = vec![f32::NAN; m * n];
        let mut expect = vec![0.0; m * n];
        gemm_blocked(m, n, k, &a, k.max(1), &b, n, &mut got, n);
        gemm_ref(m, n, k, &a, k.max(1), &b, n, &mut expect, n);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, k as f32), "{g} vs {e}");
        }
    }

    #[test]
    fn gemm_blocked_matches_reference_weird_blocks(
        m in 1usize..20,
        n in 1usize..50,
        k in 1usize..30,
        mc in 8usize..32,
        kc in 1usize..16,
        nc in 16usize..64,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 17 + 5) % 23) as f32 - 11.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13 + 7) % 19) as f32 - 9.0).collect();
        let mut got = vec![0.0; m * n];
        let mut expect = vec![0.0; m * n];
        gemm_blocked_with(BlockSizes { mc, kc, nc }, m, n, k, &a, k, &b, n, &mut got, n);
        gemm_ref(m, n, k, &a, k, &b, n, &mut expect, n);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, (k * 23) as f32));
        }
    }

    #[test]
    fn syrk_panel_matches_reference(
        m in 1usize..24,
        n in 1usize..220,
        seed in any::<u32>(),
    ) {
        let a: Vec<f32> = (0..m * n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 16) % 100) as f32 / 50.0 - 1.0)
            .collect();
        let mut got = vec![f32::NAN; m * m];
        let mut expect = vec![0.0; m * m];
        syrk_panel(m, n, &a, n, &mut got, m);
        syrk_ref(m, n, &a, n, &mut expect, m);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, n as f32), "{g} vs {e}");
        }
    }

    #[test]
    fn syrk_outputs_agree_across_variants(
        m in 1usize..16,
        n in 1usize..150,
    ) {
        let a: Vec<f32> = (0..m * n).map(|i| ((i * 31 + 11) % 17) as f32 * 0.1 - 0.8).collect();
        let mut dotv = vec![0.0; m * m];
        let mut pan = vec![0.0; m * m];
        let mut par = vec![0.0; m * m];
        syrk_dot(m, n, &a, n, &mut dotv, m);
        syrk_panel(m, n, &a, n, &mut pan, m);
        syrk_panel_parallel(m, n, &a, n, &mut par, m);
        for i in 0..m * m {
            prop_assert!(close(dotv[i], pan[i], n as f32));
            prop_assert!(close(pan[i], par[i], n as f32));
        }
    }

    #[test]
    fn corr_tall_skinny_matches_reference(
        v in 1usize..12,
        n in 1usize..80,
        m_epochs in 1usize..5,
        k in 1usize..14,
        tile in 16usize..64,
    ) {
        let assigned: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_fn(v, k, |r, c| ((r * 7 + c * 3 + e) % 13) as f32 * 0.2 - 1.0))
            .collect();
        let brain: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11 + e * 2) % 17) as f32 * 0.1 - 0.7))
            .collect();
        let eps: Vec<EpochPair> = assigned
            .iter()
            .zip(&brain)
            .map(|(a, b)| EpochPair { assigned: a, brain: b })
            .collect();
        let mut got = vec![f32::NAN; v * m_epochs * n];
        let mut expect = vec![0.0; v * m_epochs * n];
        corr_tall_skinny(&eps, &mut got, TallSkinnyOpts { tile_cols: tile });
        corr_reference(&eps, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, k as f32));
        }
    }

    #[test]
    fn normalize_epoch_idempotent_direction(mut x in finite_vec(12)) {
        // Normalizing twice gives the same vector as normalizing once
        // (the vector is already zero-mean unit-RSS after one pass).
        normalize_epoch(&mut x);
        let once = x.clone();
        normalize_epoch(&mut x);
        for (a, b) in x.iter().zip(&once) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn pearson_via_dot_is_bounded(x in finite_vec(12), y in finite_vec(12)) {
        let mut xn = x.clone();
        let mut yn = y.clone();
        normalize_epoch(&mut xn);
        normalize_epoch(&mut yn);
        let r = dot(&xn, &yn);
        prop_assert!(r.abs() <= 1.0 + 1e-4, "correlation {r} out of range");
    }

    #[test]
    fn fisher_z_monotone(a in -0.99f32..0.99, b in -0.99f32..0.99) {
        if a < b {
            prop_assert!(fisher_z(a) < fisher_z(b));
        } else if a > b {
            prop_assert!(fisher_z(a) > fisher_z(b));
        }
    }

    #[test]
    fn zscore_then_stats_are_standard(x in proptest::collection::vec(-100.0f32..100.0, 4..64)) {
        let spread = x.iter().cloned().fold(f32::MIN, f32::max)
            - x.iter().cloned().fold(f32::MAX, f32::min);
        prop_assume!(spread > 1e-3);
        let mut z = x.clone();
        zscore(&mut z);
        let (m, v) = mean_var_onepass(&z);
        prop_assert!(m.abs() < 1e-3, "mean {m}");
        prop_assert!((v - 1.0).abs() < 1e-2, "var {v}");
    }
}
