//! Property-based tests pinning every optimized kernel to the reference
//! implementations across randomized shapes and data.

use fcma_linalg::gemm_blocked::BlockSizes;
use fcma_linalg::tall_skinny::{EpochPair, TallSkinnyOpts, MR};
use fcma_linalg::*;
use fcma_sync::pool::Pool;
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

fn close(a: f32, b: f32, scale: f32) -> bool {
    (a - b).abs() <= 1e-3 * scale.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_blocked_matches_reference(
        m in 1usize..24,
        n in 1usize..70,
        k in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng_state = seed;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a: Vec<f32> = (0..m * k.max(1)).map(|_| next()).collect();
        let b: Vec<f32> = (0..k.max(1) * n).map(|_| next()).collect();
        let mut got = vec![f32::NAN; m * n];
        let mut expect = vec![0.0; m * n];
        gemm_blocked(m, n, k, &a, k.max(1), &b, n, &mut got, n);
        gemm_ref(m, n, k, &a, k.max(1), &b, n, &mut expect, n);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, k as f32), "{g} vs {e}");
        }
    }

    #[test]
    fn gemm_blocked_matches_reference_weird_blocks(
        m in 1usize..20,
        n in 1usize..50,
        k in 1usize..30,
        mc in 8usize..32,
        kc in 1usize..16,
        nc in 16usize..64,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 17 + 5) % 23) as f32 - 11.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 13 + 7) % 19) as f32 - 9.0).collect();
        let mut got = vec![0.0; m * n];
        let mut expect = vec![0.0; m * n];
        gemm_blocked_with(BlockSizes { mc, kc, nc }, m, n, k, &a, k, &b, n, &mut got, n);
        gemm_ref(m, n, k, &a, k, &b, n, &mut expect, n);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, (k * 23) as f32));
        }
    }

    #[test]
    fn syrk_panel_matches_reference(
        m in 1usize..24,
        n in 1usize..220,
        seed in any::<u32>(),
    ) {
        let a: Vec<f32> = (0..m * n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 16) % 100) as f32 / 50.0 - 1.0)
            .collect();
        let mut got = vec![f32::NAN; m * m];
        let mut expect = vec![0.0; m * m];
        syrk_panel(m, n, &a, n, &mut got, m);
        syrk_ref(m, n, &a, n, &mut expect, m);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, n as f32), "{g} vs {e}");
        }
    }

    #[test]
    fn syrk_outputs_agree_across_variants(
        m in 1usize..16,
        n in 1usize..150,
    ) {
        let a: Vec<f32> = (0..m * n).map(|i| ((i * 31 + 11) % 17) as f32 * 0.1 - 0.8).collect();
        let mut dotv = vec![0.0; m * m];
        let mut pan = vec![0.0; m * m];
        let mut par = vec![0.0; m * m];
        syrk_dot(m, n, &a, n, &mut dotv, m);
        syrk_panel(m, n, &a, n, &mut pan, m);
        syrk_panel_parallel(&Pool::new(3), m, n, &a, n, &mut par, m);
        for i in 0..m * m {
            prop_assert!(close(dotv[i], pan[i], n as f32));
            prop_assert!(close(pan[i], par[i], n as f32));
        }
    }

    #[test]
    fn syrk_panel_scratch_bit_identical_to_fresh(
        m in 1usize..20,
        n in 1usize..180,
        panel_k in 1usize..64,
        seed in any::<u32>(),
    ) {
        let a: Vec<f32> = (0..m * n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 16) % 100) as f32 / 50.0 - 1.0)
            .collect();
        let mut fresh = vec![0.0; m * m];
        syrk_panel_with(panel_k, m, n, &a, n, &mut fresh, m);
        // Dirty the scratch with an unrelated product first: reuse must
        // still reproduce the fresh-allocation path bit for bit.
        let decoy: Vec<f32> = a.iter().map(|v| v.mul_add(-1.5, 0.3)).collect();
        let mut scratch = SyrkScratch::new(m, panel_k);
        let mut junk = vec![0.0; m * m];
        syrk_panel_scratch(m, n, &decoy, n, &mut junk, m, &mut scratch);
        let mut reused = vec![f32::NAN; m * m];
        syrk_panel_scratch(m, n, &a, n, &mut reused, m, &mut scratch);
        for (r, f) in reused.iter().zip(&fresh) {
            prop_assert_eq!(r.to_bits(), f.to_bits(), "m={} n={} panel_k={}", m, n, panel_k);
        }
    }

    #[test]
    fn gemm_blocked_scratch_bit_identical_to_fresh(
        m in 1usize..20,
        n in 1usize..50,
        k in 0usize..30,
        mc in 8usize..32,
        kc in 1usize..16,
        nc in 16usize..64,
        seed in any::<u64>(),
    ) {
        let bs = BlockSizes { mc, kc, nc };
        let mut rng_state = seed;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a: Vec<f32> = (0..m * k.max(1)).map(|_| next()).collect();
        let b: Vec<f32> = (0..k.max(1) * n).map(|_| next()).collect();
        let mut fresh = vec![0.0; m * n];
        gemm_blocked_with(bs, m, n, k, &a, k.max(1), &b, n, &mut fresh, n);
        // Same dirty-reuse discipline as the SYRK property above.
        let decoy_a: Vec<f32> = a.iter().map(|v| v.mul_add(-2.0, 0.1)).collect();
        let decoy_b: Vec<f32> = b.iter().map(|v| v.mul_add(0.5, -0.2)).collect();
        let mut scratch = GemmScratch::new(bs);
        let mut junk = vec![0.0; m * n];
        gemm_blocked_scratch(m, n, k, &decoy_a, k.max(1), &decoy_b, n, &mut junk, n, &mut scratch);
        let mut reused = vec![f32::NAN; m * n];
        gemm_blocked_scratch(m, n, k, &a, k.max(1), &b, n, &mut reused, n, &mut scratch);
        for (r, f) in reused.iter().zip(&fresh) {
            prop_assert_eq!(r.to_bits(), f.to_bits(), "({}x{}x{})", m, n, k);
        }
    }

    #[test]
    fn corr_tall_skinny_matches_reference(
        v in 1usize..12,
        n in 1usize..80,
        m_epochs in 1usize..5,
        k in 1usize..14,
        tile in 16usize..64,
    ) {
        let assigned: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_fn(v, k, |r, c| ((r * 7 + c * 3 + e) % 13) as f32 * 0.2 - 1.0))
            .collect();
        let brain: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_fn(k, n, |r, c| ((r * 5 + c * 11 + e * 2) % 17) as f32 * 0.1 - 0.7))
            .collect();
        let eps: Vec<EpochPair<'_>> = assigned
            .iter()
            .zip(&brain)
            .map(|(a, b)| EpochPair { assigned: a, brain: b })
            .collect();
        let mut got = vec![f32::NAN; v * m_epochs * n];
        let mut expect = vec![0.0; v * m_epochs * n];
        corr_tall_skinny(&eps, &mut got, TallSkinnyOpts { tile_cols: tile });
        corr_reference(&eps, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, k as f32));
        }
    }

    #[test]
    fn normalize_epoch_idempotent_direction(mut x in finite_vec(12)) {
        // Normalizing twice gives the same vector as normalizing once
        // (the vector is already zero-mean unit-RSS after one pass).
        normalize_epoch(&mut x);
        let once = x.clone();
        normalize_epoch(&mut x);
        for (a, b) in x.iter().zip(&once) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn pearson_via_dot_is_bounded(x in finite_vec(12), y in finite_vec(12)) {
        let mut xn = x.clone();
        let mut yn = y.clone();
        normalize_epoch(&mut xn);
        normalize_epoch(&mut yn);
        let r = dot(&xn, &yn);
        prop_assert!(r.abs() <= 1.0 + 1e-4, "correlation {r} out of range");
    }

    #[test]
    fn fisher_z_monotone(a in -0.99f32..0.99, b in -0.99f32..0.99) {
        if a < b {
            prop_assert!(fisher_z(a) < fisher_z(b));
        } else if a > b {
            prop_assert!(fisher_z(a) > fisher_z(b));
        }
    }

    #[test]
    fn zscore_then_stats_are_standard(x in proptest::collection::vec(-100.0f32..100.0, 4..64)) {
        let spread = x.iter().cloned().fold(f32::MIN, f32::max)
            - x.iter().cloned().fold(f32::MAX, f32::min);
        prop_assume!(spread > 1e-3);
        let mut z = x.clone();
        zscore(&mut z);
        let (m, v) = mean_var_onepass(&z);
        prop_assert!(m.abs() < 1e-3, "mean {m}");
        prop_assert!((v - 1.0).abs() < 1e-2, "var {v}");
    }
}

// Coverage for the remaining public kernels (the fcma-audit `proptest`
// pass requires every top-level `pub fn` of this crate to be exercised
// here): microkernels and panel packing, BLAS-1/2 helpers, the SYRK
// panel-depth knob, the merged-pipeline tile primitive, and the checked
// cast helpers.

use fcma_linalg::microkernel::{microkernel, microkernel_edge, pack_a_panel, pack_b_panel};
use fcma_linalg::norms::axpy;

fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn microkernel_with_packing_matches_reference(k in 1usize..64, seed in any::<u64>()) {
        const MR: usize = 8;
        const NR: usize = 16;
        let a = pseudo(MR * k, seed);
        let b = pseudo(k * NR, seed ^ 0x9e37);
        let mut a_panel = vec![0.0; k * MR];
        let mut b_panel = vec![0.0; k * NR];
        pack_a_panel::<MR>(&a, k, MR, k, &mut a_panel);
        pack_b_panel::<NR>(&b, NR, k, NR, &mut b_panel);
        let mut got = vec![f32::NAN; MR * NR];
        microkernel::<MR, NR>(k, &a_panel, &b_panel, &mut got, NR, false);
        let mut expect = vec![0.0; MR * NR];
        gemm_ref(MR, NR, k, &a, k, &b, NR, &mut expect, NR);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, k as f32), "{g} vs {e}");
        }
    }

    #[test]
    fn microkernel_edge_matches_reference(
        k in 1usize..32,
        mr in 1usize..=8,
        nr in 1usize..=16,
        seed in any::<u64>(),
    ) {
        const MR: usize = 8;
        const NR: usize = 16;
        let a = pseudo(mr * k, seed);
        let b = pseudo(k * nr, seed ^ 0x51f0);
        let mut a_panel = vec![0.0; k * MR];
        let mut b_panel = vec![0.0; k * NR];
        pack_a_panel::<MR>(&a, k, mr, k, &mut a_panel);
        pack_b_panel::<NR>(&b, nr, k, nr, &mut b_panel);
        let mut got = vec![f32::NAN; mr * nr];
        microkernel_edge::<MR, NR>(k, mr, nr, &a_panel, &b_panel, &mut got, nr, false);
        let mut expect = vec![0.0; mr * nr];
        gemm_ref(mr, nr, k, &a, k, &b, nr, &mut expect, nr);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, k as f32), "{g} vs {e}");
        }
    }

    #[test]
    fn axpy_matches_scalar_loop(alpha in -4.0f32..4.0, x in finite_vec(23), y0 in finite_vec(23)) {
        let mut y = y0.clone();
        axpy(alpha, &x, &mut y);
        for i in 0..x.len() {
            prop_assert!(close(y[i], y0[i] + alpha * x[i], 40.0));
        }
    }

    #[test]
    fn fast_ln_tracks_std_ln(x in 1e-6f32..1e6) {
        let got = fast_ln(x);
        let want = x.ln();
        prop_assert!((got - want).abs() <= 1e-5 * want.abs().max(1.0), "ln({x}): {got} vs {want}");
    }

    #[test]
    fn fisher_z_slice_matches_scalar(mut x in proptest::collection::vec(-0.999f32..0.999, 1..32)) {
        let scalar: Vec<f32> = x.iter().map(|&r| fisher_z(r)).collect();
        fisher_z_slice(&mut x);
        for (a, b) in x.iter().zip(&scalar) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zscore_with_centers_and_scales(x in proptest::collection::vec(-50.0f32..50.0, 4..48)) {
        let (mean, var) = mean_var_onepass(&x);
        prop_assume!(var > 1e-4);
        let std = var.sqrt();
        let mut z = x.clone();
        zscore_with(&mut z, mean, std);
        for (zi, xi) in z.iter().zip(&x) {
            prop_assert!(close(*zi, (xi - mean) / std, 50.0));
        }
        // Degenerate std collapses to the zero vector by convention.
        let mut dead = x.clone();
        zscore_with(&mut dead, mean, 0.0);
        prop_assert!(dead.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemv_matches_row_dots(m in 1usize..12, n in 1usize..20, seed in any::<u64>()) {
        let a = Mat::from_vec(m, n, pseudo(m * n, seed));
        let x = pseudo(n, seed ^ 0xa5a5);
        let mut y = vec![f32::NAN; m];
        gemv(&a, &x, &mut y);
        for r in 0..m {
            let naive: f32 = a.row(r).iter().zip(&x).map(|(p, q)| p * q).sum();
            prop_assert!(close(y[r], naive, n as f32));
        }
    }

    #[test]
    fn gemv_t_matches_explicit_transpose(m in 1usize..12, n in 1usize..20, seed in any::<u64>()) {
        let a = Mat::from_vec(m, n, pseudo(m * n, seed));
        let x = pseudo(m, seed ^ 0x77);
        let mut got = vec![f32::NAN; n];
        gemv_t(&a, &x, &mut got);
        let mut expect = vec![f32::NAN; n];
        gemv(&a.transposed(), &x, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, m as f32));
        }
    }

    #[test]
    fn means_match_naive(m in 1usize..10, n in 1usize..14, seed in any::<u64>()) {
        let a = Mat::from_vec(m, n, pseudo(m * n, seed));
        let rm = row_means(&a);
        let cm = col_means(&a);
        for r in 0..m {
            let naive = a.row(r).iter().sum::<f32>() / n as f32;
            prop_assert!(close(rm[r], naive, 1.0));
        }
        for c in 0..n {
            let naive = (0..m).map(|r| a.get(r, c)).sum::<f32>() / m as f32;
            prop_assert!(close(cm[c], naive, 1.0));
        }
    }

    #[test]
    fn add_scaled_and_scale_are_elementwise(
        beta in -3.0f32..3.0,
        alpha in -3.0f32..3.0,
        m in 1usize..6,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = Mat::from_vec(m, n, pseudo(m * n, seed));
        let b = Mat::from_vec(m, n, pseudo(m * n, seed ^ 0x1234));
        let mut c = add_scaled(&a, beta, &b);
        for i in 0..m * n {
            prop_assert!(close(c.as_slice()[i], a.as_slice()[i] + beta * b.as_slice()[i], 8.0));
        }
        let before = c.clone();
        scale(&mut c, alpha);
        for i in 0..m * n {
            prop_assert!(close(c.as_slice()[i], alpha * before.as_slice()[i], 8.0));
        }
    }

    #[test]
    fn syrk_panel_with_matches_reference_any_depth(
        panel_k in 1usize..128,
        m in 1usize..16,
        n in 1usize..150,
        seed in any::<u64>(),
    ) {
        let a = pseudo(m * n, seed);
        let mut got = vec![f32::NAN; m * m];
        let mut expect = vec![0.0; m * m];
        syrk_panel_with(panel_k, m, n, &a, n, &mut got, m);
        syrk_ref(m, n, &a, n, &mut expect, m);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!(close(*g, *e, n as f32), "panel_k={panel_k}: {g} vs {e}");
        }
    }

    #[test]
    fn corr_tile_block_matches_naive_dots(
        v in 1usize..8,
        n in 4usize..40,
        k in 1usize..10,
        m_epochs in 1usize..4,
        seed in any::<u64>(),
    ) {
        let assigned: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_vec(v, k, pseudo(v * k, seed ^ e as u64)))
            .collect();
        let brain: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_vec(k, n, pseudo(k * n, seed ^ (e as u64) << 8)))
            .collect();
        let eps: Vec<EpochPair<'_>> = assigned
            .iter()
            .zip(&brain)
            .map(|(a, b)| EpochPair { assigned: a, brain: b })
            .collect();
        let col0 = n / 4;
        let col1 = n;
        let w = col1 - col0;
        let mut buf = vec![f32::NAN; v * m_epochs * w];
        corr_tile_block(&eps, 0..m_epochs, col0..col1, &mut buf);
        for vi in 0..v {
            for ei in 0..m_epochs {
                for j in col0..col1 {
                    let naive: f32 = (0..k)
                        .map(|l| assigned[ei].get(vi, l) * brain[ei].get(l, j))
                        .sum();
                    let got = buf[(vi * m_epochs + ei) * w + (j - col0)];
                    prop_assert!(close(got, naive, k as f32), "({vi},{ei},{j}): {got} vs {naive}");
                }
            }
        }
    }

    #[test]
    fn corr_tile_block_rows_bands_bit_identical_to_full_range(
        v in 1usize..40,
        n in 4usize..48,
        k in 1usize..10,
        m_epochs in 1usize..4,
        bands in 1usize..5,
        seed in any::<u64>(),
    ) {
        // The parallel fused pipeline's banding unit: computing the block
        // in MR-aligned voxel bands must reproduce the full-range call
        // bit for bit (DESIGN.md §15).
        let assigned: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_vec(v, k, pseudo(v * k, seed ^ e as u64)))
            .collect();
        let brain: Vec<Mat> = (0..m_epochs)
            .map(|e| Mat::from_vec(k, n, pseudo(k * n, seed ^ (e as u64) << 8)))
            .collect();
        let eps: Vec<EpochPair<'_>> = assigned
            .iter()
            .zip(&brain)
            .map(|(a, b)| EpochPair { assigned: a, brain: b })
            .collect();
        let col0 = n / 5;
        let w = n - col0;
        let mut full = vec![f32::NAN; v * m_epochs * w];
        corr_tile_block_rows(&eps, 0..v, 0..m_epochs, col0..n, &mut full);
        let mut banded = vec![f32::NAN; v * m_epochs * w];
        let n_groups = v.div_ceil(MR);
        let bands = bands.min(n_groups);
        let mut v0 = 0usize;
        for band in 0..bands {
            let groups = n_groups / bands + usize::from(band < n_groups % bands);
            let v1 = (v0 + groups * MR).min(v);
            let chunk = &mut banded[v0 * m_epochs * w..v1 * m_epochs * w];
            corr_tile_block_rows(&eps, v0..v1, 0..m_epochs, col0..n, chunk);
            v0 = v1;
        }
        prop_assert_eq!(v0, v);
        for (i, (b, f)) in banded.iter().zip(&full).enumerate() {
            prop_assert_eq!(b.to_bits(), f.to_bits(), "idx {} (v={} bands={})", i, v, bands);
        }
    }

    // DESIGN.md §15 determinism contract: the parallel band kernels must
    // be BIT-identical to their serial counterparts at every thread
    // count, arbitrary shapes, including the dirty-scratch path (a decoy
    // product runs through the same pool first, so any per-worker state
    // reuse — seeded deques, stolen bands, recycled packing buffers —
    // must not perturb a single ulp).

    #[test]
    fn gemm_parallel_bit_identical_across_threads(
        m in 1usize..48,
        n in 1usize..40,
        k in 0usize..24,
        mc in 8usize..32,
        kc in 1usize..16,
        nc in 16usize..64,
        seed in any::<u64>(),
    ) {
        let bs = BlockSizes { mc, kc, nc };
        let a = pseudo(m * k.max(1), seed);
        let b = pseudo(k.max(1) * n, seed ^ 0xbead);
        let mut serial = vec![0.0; m * n];
        gemm_blocked_with(bs, m, n, k, &a, k.max(1), &b, n, &mut serial, n);
        let decoy: Vec<f32> = a.iter().map(|v| v.mul_add(-1.5, 0.2)).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut junk = vec![0.0; m * n];
            gemm_blocked_parallel(&pool, bs, m, n, k, &decoy, k.max(1), &b, n, &mut junk, n);
            let mut par = vec![f32::NAN; m * n];
            gemm_blocked_parallel(&pool, bs, m, n, k, &a, k.max(1), &b, n, &mut par, n);
            for (p, s) in par.iter().zip(&serial) {
                prop_assert_eq!(p.to_bits(), s.to_bits(), "threads={} ({}x{}x{})", threads, m, n, k);
            }
        }
    }

    #[test]
    fn syrk_parallel_bit_identical_across_threads(
        m in 1usize..40,
        n in 1usize..160,
        seed in any::<u64>(),
    ) {
        let a = pseudo(m * n, seed);
        let mut serial = vec![0.0; m * m];
        syrk_panel(m, n, &a, n, &mut serial, m);
        let decoy: Vec<f32> = a.iter().map(|v| v.mul_add(0.7, -0.3)).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut junk = vec![0.0; m * m];
            syrk_panel_parallel(&pool, m, n, &decoy, n, &mut junk, m);
            let mut par = vec![f32::NAN; m * m];
            syrk_panel_parallel(&pool, m, n, &a, n, &mut par, m);
            for (p, s) in par.iter().zip(&serial) {
                prop_assert_eq!(p.to_bits(), s.to_bits(), "threads={} (m={} n={})", threads, m, n);
            }
        }
    }

    #[test]
    fn cast_helpers_roundtrip_and_round(n in 0usize..(1 << 24), x in -1e6f64..1e6) {
        prop_assert_eq!(f32_from_usize(n) as usize, n);
        prop_assert_eq!(f64_from_usize(n) as usize, n);
        // Narrowing rounds to the nearest f32: error bounded by half an
        // ulp, i.e. relative 2^-24.
        let narrowed = f32_from_f64(x);
        prop_assert!((f64::from(narrowed) - x).abs() <= x.abs() / (1u64 << 24) as f64 + 1e-30);
    }
}
