//! Property-based tests for the data substrate: generator invariants,
//! I/O round-trips, geometry laws, and mask algebra.

use fcma_fmri::geometry::{extract_clusters, Grid3};
use fcma_fmri::mask::VoxelMask;
use fcma_fmri::noise::{Ar1, Drift};
use fcma_fmri::synth::{Placement, SynthConfig};
use proptest::prelude::*;
use std::io::Cursor;

fn config_strategy() -> impl Strategy<Value = SynthConfig> {
    (
        8usize..80,   // n_voxels
        1usize..4,    // n_subjects
        1usize..5,    // epochs_per_subject halves
        3usize..16,   // epoch_len
        0usize..5,    // gap
        any::<u64>(), // seed
        prop_oneof![Just(Placement::Random), Just(Placement::SphericalBlobs)],
    )
        .prop_map(|(nv, ns, eh, el, gap, seed, placement)| SynthConfig {
            n_voxels: nv,
            n_subjects: ns,
            epochs_per_subject: eh * 2,
            epoch_len: el,
            gap,
            n_informative: (nv / 4).max(2) & !1,
            coupling: 1.0,
            noise: Ar1 { phi: 0.3, sigma: 1.0 },
            drift: Drift { linear: 0.5, sin_amp: 0.2, sin_cycles: 1.0 },
            seed,
            placement,
            hrf: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated dataset validates and matches its config's shape.
    #[test]
    fn generated_datasets_are_wellformed(cfg in config_strategy()) {
        let (d, gt) = cfg.generate();
        prop_assert_eq!(d.n_voxels(), cfg.n_voxels);
        prop_assert_eq!(d.n_subjects(), cfg.n_subjects);
        prop_assert_eq!(d.n_epochs(), cfg.n_epochs());
        prop_assert_eq!(gt.informative.len(), cfg.n_informative);
        prop_assert!(gt.informative.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(gt.informative.iter().all(|&v| v < cfg.n_voxels));
        prop_assert!(d.data().as_slice().iter().all(|v| v.is_finite()));
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_is_deterministic(cfg in config_strategy()) {
        let (d1, g1) = cfg.generate();
        let (d2, g2) = cfg.generate();
        prop_assert_eq!(g1.informative, g2.informative);
        prop_assert_eq!(d1.data().as_slice(), d2.data().as_slice());
        prop_assert_eq!(d1.epochs(), d2.epochs());
    }

    /// Activity + epoch table round-trip through the on-disk formats.
    #[test]
    fn io_roundtrip(cfg in config_strategy()) {
        let (d, _) = cfg.generate();
        let mut abuf = Vec::new();
        fcma_fmri::io::write_activity(&mut abuf, d.data()).unwrap();
        let data = fcma_fmri::io::read_activity(&mut Cursor::new(abuf)).unwrap();
        prop_assert_eq!(data.as_slice(), d.data().as_slice());

        let mut ebuf = Vec::new();
        fcma_fmri::io::write_epoch_table(&mut ebuf, d.epochs()).unwrap();
        let eps = fcma_fmri::io::read_epoch_table(&mut Cursor::new(ebuf)).unwrap();
        prop_assert_eq!(&eps[..], d.epochs());
    }

    /// Grid index/coords are a bijection; distance is a metric on sampled
    /// triples (symmetry + triangle inequality).
    #[test]
    fn grid_geometry_laws(
        nx in 1usize..8,
        ny in 1usize..8,
        nz in 1usize..8,
        seed in any::<u32>(),
    ) {
        let g = Grid3::new(nx, ny, nz);
        for i in 0..g.len() {
            let (x, y, z) = g.coords(i);
            prop_assert_eq!(g.index(x, y, z), i);
        }
        let n = g.len();
        let pick = |s: u32| (s as usize) % n;
        let (a, b, c) = (pick(seed), pick(seed.wrapping_mul(31)), pick(seed.wrapping_mul(77)));
        prop_assert!((g.distance(a, b) - g.distance(b, a)).abs() < 1e-12);
        prop_assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c) + 1e-9);
        prop_assert_eq!(g.distance(a, a), 0.0);
    }

    /// Cluster extraction partitions the selection: every selected voxel
    /// appears in exactly one cluster.
    #[test]
    fn clusters_partition_selection(
        nx in 2usize..7,
        ny in 2usize..7,
        sel_bits in any::<u64>(),
    ) {
        let g = Grid3::new(nx, ny, 2);
        let selected: Vec<usize> =
            (0..g.len().min(64)).filter(|&i| sel_bits & (1 << i) != 0).collect();
        let clusters = extract_clusters(&g, &selected);
        let mut all: Vec<usize> = clusters.iter().flat_map(|c| c.voxels.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, selected);
        // Sizes are non-increasing.
        for w in clusters.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
    }

    /// Mask algebra: and() is idempotent and commutative; apply preserves
    /// row content.
    #[test]
    fn mask_laws(cfg in config_strategy(), bits in any::<u64>()) {
        let (d, _) = cfg.generate();
        let n = d.n_voxels();
        let a = VoxelMask::from_fn(n, |v| bits & (1 << (v % 64)) != 0 || v == 0);
        let b = VoxelMask::from_fn(n, |v| v % 2 == 0);
        prop_assert_eq!(a.and(&a).indices(), a.indices());
        prop_assert_eq!(a.and(&b).indices(), b.and(&a).indices());
        let (masked, map) = a.apply(&d);
        prop_assert_eq!(masked.n_voxels(), a.n_kept());
        for (ci, &oi) in map.iter().enumerate() {
            prop_assert_eq!(masked.data().row(ci), d.data().row(oi));
        }
    }

    /// Normalized epochs have unit self-correlation for non-constant
    /// voxels regardless of config.
    #[test]
    fn normalization_is_unit_norm(cfg in config_strategy()) {
        let (d, _) = cfg.generate();
        let ne = fcma_fmri::NormalizedEpochs::from_dataset(&d);
        for e in [0usize, d.n_epochs() - 1] {
            let b = ne.brain(e);
            for v in [0usize, d.n_voxels() - 1] {
                let col: Vec<f32> = (0..b.rows()).map(|t| b.get(t, v)).collect();
                let s = fcma_linalg::dot(&col, &col);
                prop_assert!(
                    (s - 1.0).abs() < 1e-3 || s.abs() < 1e-6,
                    "epoch {e} voxel {v}: ||x||² = {s}"
                );
            }
        }
    }
}
