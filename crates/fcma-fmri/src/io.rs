//! On-disk formats.
//!
//! The paper's system "reads in the preprocessed fMRI data ... and the
//! text files specifying the labeled time epochs" (§3.1). This module
//! provides both:
//!
//! * a compact little-endian binary container for the activity matrix
//!   (`.fcma` — magic, dims, raw f32 rows), and
//! * the human-editable text epoch table (`.epochs` — one epoch per line:
//!   `subject label start len`, `#` comments allowed).

use crate::dataset::{Condition, Dataset, EpochSpec};
use fcma_linalg::Mat;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"FCMADAT1";

/// Errors from reading either format.
#[derive(Debug)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic / truncated / inconsistent binary container.
    Corrupt(String),
    /// Malformed epoch table line.
    Parse { line: usize, msg: String },
    /// The files loaded fine but dataset validation failed.
    Invalid(crate::dataset::DatasetError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Corrupt(m) => write!(f, "corrupt dataset file: {m}"),
            IoError::Parse { line, msg } => write!(f, "epoch table line {line}: {msg}"),
            IoError::Invalid(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write the activity matrix to `w` in the binary container format.
pub fn write_activity<W: Write>(w: &mut W, data: &Mat) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(data.rows() as u64).to_le_bytes())?;
    w.write_all(&(data.cols() as u64).to_le_bytes())?;
    for &v in data.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read an activity matrix from `r`.
// audit: allow(panicpath) — indexes chunks_exact(4) chunks, in-bounds by construction
pub fn read_activity<R: Read>(r: &mut R) -> Result<Mat, IoError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|_| IoError::Corrupt("file shorter than header".into()))?;
    if &magic != MAGIC {
        return Err(IoError::Corrupt(format!("bad magic {magic:?}")));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let rows = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let cols = u64::from_le_bytes(b8) as usize;
    let total =
        rows.checked_mul(cols).ok_or_else(|| IoError::Corrupt("dimension overflow".into()))?;
    // Guard against absurd headers before allocating.
    if total > (1usize << 34) {
        return Err(IoError::Corrupt(format!("implausible size {rows}x{cols}")));
    }
    let mut buf = vec![0u8; total * 4];
    r.read_exact(&mut buf).map_err(|_| IoError::Corrupt("truncated data section".into()))?;
    let data: Vec<f32> =
        buf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    Ok(Mat::from_vec(rows, cols, data))
}

/// Write the epoch table to `w` in the text format.
pub fn write_epoch_table<W: Write>(w: &mut W, epochs: &[EpochSpec]) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# FCMA epoch table: subject label start len")?;
    for ep in epochs {
        writeln!(w, "{} {} {} {}", ep.subject, ep.label.token(), ep.start, ep.len)?;
    }
    w.flush()?;
    Ok(())
}

/// Parse an epoch table from `r`.
// audit: allow(panicpath) — toks[0..=3] guarded by the len == 4 check above each use
pub fn read_epoch_table<R: Read>(r: &mut R) -> Result<Vec<EpochSpec>, IoError> {
    let r = BufReader::new(r);
    let mut epochs = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let toks: Vec<&str> = body.split_whitespace().collect();
        if toks.len() != 4 {
            return Err(IoError::Parse {
                line: lineno + 1,
                msg: format!("expected 4 fields, got {}", toks.len()),
            });
        }
        let subject = toks[0]
            .parse::<usize>()
            .map_err(|e| IoError::Parse { line: lineno + 1, msg: format!("bad subject: {e}") })?;
        let label =
            Condition::parse(toks[1]).map_err(|msg| IoError::Parse { line: lineno + 1, msg })?;
        let start = toks[2]
            .parse::<usize>()
            .map_err(|e| IoError::Parse { line: lineno + 1, msg: format!("bad start: {e}") })?;
        let len = toks[3]
            .parse::<usize>()
            .map_err(|e| IoError::Parse { line: lineno + 1, msg: format!("bad len: {e}") })?;
        epochs.push(EpochSpec { subject, label, start, len });
    }
    Ok(epochs)
}

/// Save a dataset as `<stem>.fcma` + `<stem>.epochs`.
pub fn save_dataset(stem: &Path, dataset: &Dataset) -> Result<(), IoError> {
    let mut f = std::fs::File::create(stem.with_extension("fcma"))?;
    write_activity(&mut f, dataset.data())?;
    let mut e = std::fs::File::create(stem.with_extension("epochs"))?;
    write_epoch_table(&mut e, dataset.epochs())?;
    Ok(())
}

/// Load a dataset saved by [`save_dataset`].
pub fn load_dataset(stem: &Path) -> Result<Dataset, IoError> {
    let mut f = std::fs::File::open(stem.with_extension("fcma"))?;
    let data = read_activity(&mut f)?;
    let mut e = std::fs::File::open(stem.with_extension("epochs"))?;
    let epochs = read_epoch_table(&mut e)?;
    Dataset::new(data, epochs).map_err(IoError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn activity_roundtrip() {
        let m = Mat::from_fn(5, 7, |r, c| (r as f32) * 1.5 - (c as f32) * 0.25);
        let mut buf = Vec::new();
        write_activity(&mut buf, &m).unwrap();
        let got = read_activity(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn activity_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_activity(&mut buf, &Mat::zeros(1, 1)).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_activity(&mut Cursor::new(buf)), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn activity_rejects_truncation() {
        let mut buf = Vec::new();
        write_activity(&mut buf, &Mat::zeros(4, 4)).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_activity(&mut Cursor::new(buf)), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn epoch_table_roundtrip() {
        let eps = vec![
            EpochSpec { subject: 0, label: Condition::A, start: 0, len: 12 },
            EpochSpec { subject: 0, label: Condition::B, start: 16, len: 12 },
            EpochSpec { subject: 1, label: Condition::B, start: 32, len: 12 },
        ];
        let mut buf = Vec::new();
        write_epoch_table(&mut buf, &eps).unwrap();
        let got = read_epoch_table(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, eps);
    }

    #[test]
    fn epoch_table_ignores_comments_and_blanks() {
        let text = "# header\n\n0 A 0 12  # trailing comment\n0 1 16 12\n";
        let got = read_epoch_table(&mut Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].label, Condition::A);
        assert_eq!(got[1].label, Condition::B);
    }

    #[test]
    fn epoch_table_reports_line_numbers() {
        let text = "0 A 0 12\n0 B sixteen 12\n";
        match read_epoch_table(&mut Cursor::new(text.as_bytes())) {
            Err(IoError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn epoch_table_rejects_wrong_arity() {
        let text = "0 A 0\n";
        assert!(matches!(
            read_epoch_table(&mut Cursor::new(text.as_bytes())),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn dataset_file_roundtrip() {
        let cfg = crate::synth::SynthConfig {
            n_voxels: 16,
            n_subjects: 2,
            epochs_per_subject: 4,
            n_informative: 4,
            ..Default::default()
        };
        let (d, _) = cfg.generate();
        let dir = std::env::temp_dir().join("fcma_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("roundtrip");
        save_dataset(&stem, &d).unwrap();
        let got = load_dataset(&stem).unwrap();
        assert_eq!(got.n_voxels(), d.n_voxels());
        assert_eq!(got.epochs(), d.epochs());
        assert_eq!(got.data().as_slice(), d.data().as_slice());
    }
}
