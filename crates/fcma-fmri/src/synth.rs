//! Synthetic fMRI data with *planted* condition-dependent correlation
//! structure.
//!
//! The paper evaluates on two human datasets we cannot obtain
//! (*face-scene* and *attention*). This generator substitutes them with
//! synthetic data that exercises the same code paths **and** carries a
//! known ground truth: a subset of "informative" voxels whose mutual
//! correlations flip with the task condition. FCMA run end-to-end on this
//! data must rank the informative voxels at the top — a stronger
//! correctness check than any real dataset allows.
//!
//! Planting mechanism: the informative set is split into two halves. In
//! every epoch a latent signal `g(t)` is added to both halves — with the
//! same sign under condition A and opposite signs under condition B. The
//! cross-half correlations are therefore positive in A epochs and negative
//! in B epochs, while every other correlation is condition-independent
//! noise. Only the *correlation structure* discriminates; mean activity
//! does not, which is exactly the regime FCMA (as opposed to activity-based
//! MVPA) targets.

use crate::dataset::{Condition, Dataset, EpochSpec};
use crate::geometry::Grid3;
use crate::hrf::Hrf;
use crate::noise::{gaussian, Ar1, Drift};
use fcma_linalg::Mat;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How the informative network is placed in the brain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Uniformly random voxels (the default; hardest for any method that
    /// exploits spatial smoothness).
    Random,
    /// Two spatially compact spherical blobs on a cubic grid — one per
    /// network half, mimicking anatomically localized regions whose
    /// *inter-region* coupling flips with condition. Lets ROI cluster
    /// extraction ([`crate::geometry::extract_clusters`]) be validated
    /// end-to-end.
    SphericalBlobs,
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Brain voxels (`N`).
    pub n_voxels: usize,
    /// Subjects.
    pub n_subjects: usize,
    /// Labeled epochs per subject (must be even: half A, half B).
    pub epochs_per_subject: usize,
    /// Time points per epoch (the paper's datasets use 12).
    pub epoch_len: usize,
    /// Unlabeled rest points between consecutive epochs.
    pub gap: usize,
    /// Size of the planted informative network.
    pub n_informative: usize,
    /// Amplitude of the shared latent signal relative to unit noise.
    pub coupling: f32,
    /// Temporal noise process.
    pub noise: Ar1,
    /// Scanner drift.
    pub drift: Drift,
    /// RNG seed; everything is deterministic given the config.
    pub seed: u64,
    /// Spatial placement of the informative network.
    pub placement: Placement,
    /// Optional hemodynamic response convolution of the planted latent
    /// signals (None = instantaneous neural coupling; Some = realistic
    /// BOLD dynamics that bleed across epoch boundaries).
    pub hrf: Option<Hrf>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_voxels: 1024,
            n_subjects: 4,
            epochs_per_subject: 12,
            epoch_len: 12,
            gap: 4,
            n_informative: 32,
            coupling: 0.9,
            noise: Ar1 { phi: 0.4, sigma: 1.0 },
            drift: Drift { linear: 1.0, sin_amp: 0.5, sin_cycles: 2.0 },
            seed: 0x5EED_FC3A,
            placement: Placement::Random,
            hrf: None,
        }
    }
}

/// Ground truth accompanying a generated dataset.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Sorted indices of the planted informative voxels.
    pub informative: Vec<usize>,
}

impl GroundTruth {
    /// Whether `voxel` is part of the planted network.
    pub fn is_informative(&self, voxel: usize) -> bool {
        self.informative.binary_search(&voxel).is_ok()
    }
}

impl SynthConfig {
    /// Time points per subject scan.
    pub(crate) fn timepoints_per_subject(&self) -> usize {
        self.epochs_per_subject * (self.epoch_len + self.gap)
    }

    /// Total time points across all subjects (subjects occupy disjoint
    /// windows of the shared time axis).
    pub fn n_timepoints(&self) -> usize {
        self.n_subjects * self.timepoints_per_subject()
    }

    /// Total labeled epochs.
    pub fn n_epochs(&self) -> usize {
        self.n_subjects * self.epochs_per_subject
    }

    fn validate(&self) {
        assert!(self.n_voxels > 0, "synth: n_voxels == 0");
        assert!(self.n_subjects > 0, "synth: n_subjects == 0");
        assert!(self.epochs_per_subject >= 2, "synth: need >= 2 epochs per subject");
        assert!(
            self.epochs_per_subject.is_multiple_of(2),
            "synth: epochs_per_subject must be even (half per condition)"
        );
        assert!(self.epoch_len >= 2, "synth: epoch_len must be >= 2");
        assert!(
            self.n_informative <= self.n_voxels,
            "synth: n_informative {} > n_voxels {}",
            self.n_informative,
            self.n_voxels
        );
        assert!(self.n_informative.is_multiple_of(2), "synth: n_informative must be even");
    }

    /// The two halves of the informative network (the halves whose mutual
    /// correlation flips with condition), each sorted. Deterministic in
    /// the seed.
    ///
    /// # Panics
    /// If the config is invalid (odd `n_informative`, network larger than
    /// the volume, or zero-sized dimensions).
    pub(crate) fn network_halves(&self) -> (Vec<usize>, Vec<usize>) {
        self.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA11C_E5E1);
        let half = self.n_informative / 2;
        match self.placement {
            Placement::Random => {
                let mut all: Vec<usize> = (0..self.n_voxels).collect();
                all.shuffle(&mut rng);
                let mut h1: Vec<usize> = all[..half].to_vec();
                let mut h2: Vec<usize> = all[half..self.n_informative].to_vec();
                h1.sort_unstable();
                h2.sort_unstable();
                (h1, h2)
            }
            Placement::SphericalBlobs => {
                let grid = Grid3::cube_for(self.n_voxels);
                let c1 = rng.random_range(0..self.n_voxels);
                // Second region: the voxel farthest from the first center
                // (deterministic, maximally separated).
                let c2 = (0..self.n_voxels)
                    .max_by(|&a, &b| {
                        grid.distance(c1, a).total_cmp(&grid.distance(c1, b)).then(a.cmp(&b))
                    })
                    // audit: allow(panicpath) — range is non-empty: random_range above panics first on n_voxels == 0
                    .expect("n_voxels > 0");
                let blob = |center: usize, exclude: &[usize]| -> Vec<usize> {
                    let mut all: Vec<usize> =
                        (0..self.n_voxels).filter(|v| !exclude.contains(v)).collect();
                    all.sort_by(|&a, &b| {
                        grid.distance(center, a)
                            .total_cmp(&grid.distance(center, b))
                            .then(a.cmp(&b))
                    });
                    let mut v: Vec<usize> = all.into_iter().take(half).collect();
                    v.sort_unstable();
                    v
                };
                let h1 = blob(c1, &[]);
                let h2 = blob(c2, &h1);
                (h1, h2)
            }
        }
    }

    /// The informative voxel set implied by this config (deterministic in
    /// the seed; regenerating is cheap). Union of the two network halves,
    /// sorted.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn informative_voxels(&self) -> Vec<usize> {
        let (h1, h2) = self.network_halves();
        let mut inf: Vec<usize> = h1.into_iter().chain(h2).collect();
        inf.sort_unstable();
        inf
    }

    /// Generate the dataset and its ground truth.
    ///
    /// # Panics
    /// If the config is invalid (odd `n_informative`, network larger than
    /// the volume, or zero-sized dimensions).
    pub fn generate(&self) -> (Dataset, GroundTruth) {
        self.validate();
        let nt = self.n_timepoints();
        let tps = self.timepoints_per_subject();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Background: AR(1) noise + drift for every voxel.
        let mut data = Mat::zeros(self.n_voxels, nt);
        for v in 0..self.n_voxels {
            let series = self.noise.generate(&mut rng, nt);
            let phase: f32 = rng.random::<f32>();
            let row = data.row_mut(v);
            for (t, (dst, src)) in row.iter_mut().zip(&series).enumerate() {
                *dst = *src + self.drift.at(t, nt, phase);
            }
        }

        // Informative network membership (same derivation as
        // `informative_voxels`, same seed stream).
        let (h1, h2) = self.network_halves();
        let mut informative: Vec<usize> = h1.iter().chain(h2.iter()).copied().collect();
        informative.sort_unstable();

        // Epoch table: per subject, half A / half B in a shuffled order.
        let mut epochs = Vec::with_capacity(self.n_epochs());
        for s in 0..self.n_subjects {
            let mut labels: Vec<Condition> = (0..self.epochs_per_subject)
                .map(|i| if i % 2 == 0 { Condition::A } else { Condition::B })
                .collect();
            labels.shuffle(&mut rng);
            for (i, &label) in labels.iter().enumerate() {
                let start = s * tps + i * (self.epoch_len + self.gap);
                epochs.push(EpochSpec { subject: s, label, start, len: self.epoch_len });
            }
        }

        // Plant the latent signal into the informative halves. The two
        // halves' full-timeline latents are built first so an optional
        // HRF convolution can bleed realistically across epoch windows.
        let mut latent1 = vec![0.0f32; nt];
        let mut latent2 = vec![0.0f32; nt];
        for ep in &epochs {
            let sign2 = match ep.label {
                Condition::A => 1.0f32,
                Condition::B => -1.0f32,
            };
            for t in 0..self.epoch_len {
                let g = gaussian(&mut rng);
                latent1[ep.start + t] += g;
                latent2[ep.start + t] += sign2 * g;
            }
        }
        if let Some(h) = &self.hrf {
            latent1 = h.convolve(&latent1);
            latent2 = h.convolve(&latent2);
        }
        for &v in &h1 {
            let row = data.row_mut(v);
            for (t, &g) in latent1.iter().enumerate() {
                row[t] += self.coupling * g;
            }
        }
        for &v in &h2 {
            let row = data.row_mut(v);
            for (t, &g) in latent2.iter().enumerate() {
                row[t] += self.coupling * g;
            }
        }

        // audit: allow(panicpath) — epochs were generated within the bounds of the data just built
        let dataset = Dataset::new(data, epochs).expect("synthetic dataset must validate");
        (dataset, GroundTruth { informative })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcma_linalg::{dot, normalize_epoch};

    fn small() -> SynthConfig {
        SynthConfig {
            n_voxels: 64,
            n_subjects: 3,
            epochs_per_subject: 8,
            epoch_len: 12,
            gap: 2,
            n_informative: 8,
            coupling: 1.2,
            ..SynthConfig::default()
        }
    }

    #[test]
    fn generated_shapes_match_config() {
        let cfg = small();
        let (d, gt) = cfg.generate();
        assert_eq!(d.n_voxels(), 64);
        assert_eq!(d.n_subjects(), 3);
        assert_eq!(d.n_epochs(), 24);
        assert_eq!(d.n_timepoints(), cfg.n_timepoints());
        assert_eq!(gt.informative.len(), 8);
        assert!(gt.informative.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small();
        let (d1, g1) = cfg.generate();
        let (d2, g2) = cfg.generate();
        assert_eq!(g1.informative, g2.informative);
        assert_eq!(d1.data().as_slice(), d2.data().as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small();
        let (d1, _) = cfg.generate();
        cfg.seed ^= 0xFF;
        let (d2, _) = cfg.generate();
        assert_ne!(d1.data().as_slice(), d2.data().as_slice());
    }

    #[test]
    fn informative_voxels_matches_generate() {
        let cfg = small();
        let (_, gt) = cfg.generate();
        assert_eq!(cfg.informative_voxels(), gt.informative);
    }

    #[test]
    fn labels_are_balanced_per_subject() {
        let (d, _) = small().generate();
        for s in 0..d.n_subjects() {
            let r = d.epoch_range_of_subject(s);
            let a = d.epochs()[r.clone()].iter().filter(|e| e.label == Condition::A).count();
            assert_eq!(a * 2, r.len(), "subject {s} imbalanced");
        }
    }

    /// The planted structure must actually flip cross-half correlations
    /// with condition — the property the whole pipeline depends on.
    #[test]
    fn cross_half_correlation_flips_with_condition() {
        let cfg = SynthConfig { coupling: 2.0, ..small() };
        let (d, _) = cfg.generate();
        let (h1, h2) = cfg.network_halves();
        let v1 = h1[0];
        let v2 = h2[0];
        let mut sum_a = 0.0f32;
        let mut sum_b = 0.0f32;
        let mut n_a = 0;
        let mut n_b = 0;
        for e in 0..d.n_epochs() {
            let mut x = d.epoch_series(v1, e).to_vec();
            let mut y = d.epoch_series(v2, e).to_vec();
            normalize_epoch(&mut x);
            normalize_epoch(&mut y);
            let r = dot(&x, &y);
            match d.epochs()[e].label {
                Condition::A => {
                    sum_a += r;
                    n_a += 1;
                }
                Condition::B => {
                    sum_b += r;
                    n_b += 1;
                }
            }
        }
        let mean_a = sum_a / n_a as f32;
        let mean_b = sum_b / n_b as f32;
        assert!(mean_a > 0.3, "A-condition cross-half corr too weak: {mean_a}");
        assert!(mean_b < -0.3, "B-condition cross-half corr should be negative: {mean_b}");
    }

    /// Uninformative voxel pairs must NOT discriminate.
    #[test]
    fn uninformative_correlations_do_not_flip() {
        let cfg = small();
        let (d, gt) = cfg.generate();
        let outsiders: Vec<usize> =
            (0..d.n_voxels()).filter(|v| !gt.is_informative(*v)).take(6).collect();
        let mut diff_sum = 0.0f32;
        let mut pairs = 0;
        for (ai, &va) in outsiders.iter().enumerate() {
            for &vb in &outsiders[ai + 1..] {
                let mut sum_a = 0.0f32;
                let mut sum_b = 0.0f32;
                let mut n_a = 0;
                let mut n_b = 0;
                for e in 0..d.n_epochs() {
                    let mut x = d.epoch_series(va, e).to_vec();
                    let mut y = d.epoch_series(vb, e).to_vec();
                    normalize_epoch(&mut x);
                    normalize_epoch(&mut y);
                    let r = dot(&x, &y);
                    match d.epochs()[e].label {
                        Condition::A => {
                            sum_a += r;
                            n_a += 1;
                        }
                        Condition::B => {
                            sum_b += r;
                            n_b += 1;
                        }
                    }
                }
                diff_sum += (sum_a / n_a as f32 - sum_b / n_b as f32).abs();
                pairs += 1;
            }
        }
        let mean_abs_diff = diff_sum / pairs as f32;
        assert!(mean_abs_diff < 0.35, "uninformative pairs discriminate: {mean_abs_diff}");
    }

    #[test]
    fn spherical_blobs_are_spatially_compact_and_disjoint() {
        let cfg = SynthConfig {
            n_voxels: 512, // 8x8x8 cube
            n_informative: 24,
            placement: Placement::SphericalBlobs,
            ..small()
        };
        let (h1, h2) = cfg.network_halves();
        assert_eq!(h1.len(), 12);
        assert_eq!(h2.len(), 12);
        assert!(h1.iter().all(|v| !h2.contains(v)), "halves overlap");
        // Compactness: every member of a blob is within a small radius of
        // the blob centroid (12 voxels fit inside radius ~2 on a cube).
        let grid = crate::geometry::Grid3::cube_for(cfg.n_voxels);
        for blob in [&h1, &h2] {
            let c = crate::geometry::Cluster { voxels: blob.clone() }.centroid(&grid);
            for &v in blob.iter() {
                let (x, y, z) = grid.coords(v);
                let d = ((x as f64 - c.0).powi(2)
                    + (y as f64 - c.1).powi(2)
                    + (z as f64 - c.2).powi(2))
                .sqrt();
                assert!(d < 3.5, "blob member {v} is {d:.1} from centroid");
            }
        }
        // Separation: blob centroids are far apart.
        let c1 = crate::geometry::Cluster { voxels: h1.clone() }.centroid(&grid);
        let c2 = crate::geometry::Cluster { voxels: h2.clone() }.centroid(&grid);
        let sep = ((c1.0 - c2.0).powi(2) + (c1.1 - c2.1).powi(2) + (c1.2 - c2.2).powi(2)).sqrt();
        assert!(sep > 4.0, "blob separation only {sep:.1}");
    }

    #[test]
    fn blob_placement_still_flips_correlations() {
        let cfg = SynthConfig {
            n_voxels: 216,
            n_informative: 12,
            coupling: 2.0,
            placement: Placement::SphericalBlobs,
            ..small()
        };
        let (d, _) = cfg.generate();
        let (h1, h2) = cfg.network_halves();
        let mut sum_a = 0.0f32;
        let mut sum_b = 0.0f32;
        let (mut n_a, mut n_b) = (0, 0);
        for e in 0..d.n_epochs() {
            let mut x = d.epoch_series(h1[0], e).to_vec();
            let mut y = d.epoch_series(h2[0], e).to_vec();
            normalize_epoch(&mut x);
            normalize_epoch(&mut y);
            let r = dot(&x, &y);
            match d.epochs()[e].label {
                Condition::A => {
                    sum_a += r;
                    n_a += 1;
                }
                Condition::B => {
                    sum_b += r;
                    n_b += 1;
                }
            }
        }
        assert!(sum_a / n_a as f32 > 0.3);
        assert!(sum_b / (n_b as f32) < -0.3);
    }

    #[test]
    fn hrf_convolved_data_still_flips_correlations() {
        // With the HRF the latent bleeds and smooths, but within-epoch
        // cross-half correlations must still carry the condition sign.
        let cfg = SynthConfig {
            coupling: 2.5,
            epoch_len: 16,
            gap: 8,
            hrf: Some(crate::hrf::Hrf::default()),
            ..small()
        };
        let (d, _) = cfg.generate();
        let (h1, h2) = cfg.network_halves();
        let mut sum_a = 0.0f32;
        let mut sum_b = 0.0f32;
        let (mut n_a, mut n_b) = (0, 0);
        for e in 0..d.n_epochs() {
            let mut x = d.epoch_series(h1[0], e).to_vec();
            let mut y = d.epoch_series(h2[0], e).to_vec();
            normalize_epoch(&mut x);
            normalize_epoch(&mut y);
            let r = dot(&x, &y);
            match d.epochs()[e].label {
                Condition::A => {
                    sum_a += r;
                    n_a += 1;
                }
                Condition::B => {
                    sum_b += r;
                    n_b += 1;
                }
            }
        }
        let (ma, mb) = (sum_a / n_a as f32, sum_b / n_b as f32);
        assert!(ma > mb + 0.3, "HRF data no longer discriminates: A {ma} vs B {mb}");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_epochs_per_subject() {
        let cfg = SynthConfig { epochs_per_subject: 7, ..small() };
        let _ = cfg.generate();
    }

    #[test]
    #[should_panic(expected = "n_informative")]
    fn rejects_oversized_network() {
        let cfg = SynthConfig { n_informative: 1000, n_voxels: 10, ..small() };
        let _ = cfg.generate();
    }
}
