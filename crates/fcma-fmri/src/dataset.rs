//! Core fMRI dataset types.
//!
//! An fMRI dataset is a voxels × time activity matrix plus an *epoch
//! table*: labeled windows of time points during which the subject
//! performed one of two task conditions (paper §3.1). FCMA consumes the
//! dataset epoch-by-epoch, so the types here are organized around that
//! access pattern.

use fcma_linalg::Mat;
use std::fmt;

/// Experimental condition label of an epoch. FCMA is a binary
/// classification analysis, so exactly two conditions exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Condition {
    /// First condition (e.g. "face" in the face-scene dataset).
    A,
    /// Second condition (e.g. "scene").
    B,
}

impl Condition {
    /// The SVM target value: `A → +1`, `B → −1`.
    pub fn sign(self) -> f32 {
        match self {
            Condition::A => 1.0,
            Condition::B => -1.0,
        }
    }

    /// Parse from the on-disk epoch-table token (`0`/`A` or `1`/`B`).
    pub fn parse(tok: &str) -> Result<Self, String> {
        match tok {
            "0" | "A" | "a" => Ok(Condition::A),
            "1" | "B" | "b" => Ok(Condition::B),
            other => Err(format!("unknown condition label {other:?}")),
        }
    }

    /// The on-disk token.
    pub(crate) fn token(self) -> &'static str {
        match self {
            Condition::A => "0",
            Condition::B => "1",
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

/// One labeled time epoch: a window `[start, start + len)` of time points
/// during which subject `subject` experienced condition `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSpec {
    /// Owning subject (0-based, contiguous).
    pub subject: usize,
    /// Task condition during the window.
    pub label: Condition,
    /// First time point of the window.
    pub start: usize,
    /// Number of time points.
    pub len: usize,
}

/// A full fMRI dataset: activity matrix + epoch table.
///
/// `data` is `n_voxels × n_timepoints` row-major (each row is one voxel's
/// time series). Epochs are stored grouped by subject in subject order, as
/// the within-subject normalization stage requires.
#[derive(Debug, Clone)]
pub struct Dataset {
    data: Mat,
    epochs: Vec<EpochSpec>,
    n_subjects: usize,
}

/// Errors raised by [`Dataset::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
// audit: allow(deadpub) — named only structurally outside the crate, via `Dataset::new`'s Result
pub enum DatasetError {
    /// An epoch window exceeds the time axis.
    EpochOutOfRange { epoch: usize, start: usize, len: usize, n_timepoints: usize },
    /// An epoch has zero length.
    EmptyEpoch { epoch: usize },
    /// Subject ids are not 0-based contiguous or epochs are not grouped by
    /// subject in nondecreasing order.
    BadSubjectOrder { epoch: usize },
    /// The dataset has no epochs at all.
    NoEpochs,
    /// A subject's epochs are all one condition (SVM needs both classes).
    SingleClassSubject { subject: usize },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::EpochOutOfRange { epoch, start, len, n_timepoints } => write!(
                f,
                "epoch {epoch} window [{start}, {}) exceeds {n_timepoints} time points",
                start + len
            ),
            DatasetError::EmptyEpoch { epoch } => write!(f, "epoch {epoch} has zero length"),
            DatasetError::BadSubjectOrder { epoch } => {
                write!(f, "epoch {epoch} breaks contiguous subject grouping")
            }
            DatasetError::NoEpochs => write!(f, "dataset has no epochs"),
            DatasetError::SingleClassSubject { subject } => {
                write!(f, "subject {subject} has only one condition across its epochs")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Build and validate a dataset.
    ///
    /// Epoch subjects must be 0-based, contiguous, and grouped
    /// (e.g. `0,0,0,1,1,1,2,...`); every subject must see both conditions
    /// so leave-one-subject-out SVM folds are well-posed.
    pub fn new(data: Mat, epochs: Vec<EpochSpec>) -> Result<Self, DatasetError> {
        if epochs.is_empty() {
            return Err(DatasetError::NoEpochs);
        }
        let nt = data.cols();
        let mut n_subjects = 0usize;
        let mut has_a = false;
        let mut has_b = false;
        for (i, ep) in epochs.iter().enumerate() {
            if ep.len == 0 {
                return Err(DatasetError::EmptyEpoch { epoch: i });
            }
            if ep.start + ep.len > nt {
                return Err(DatasetError::EpochOutOfRange {
                    epoch: i,
                    start: ep.start,
                    len: ep.len,
                    n_timepoints: nt,
                });
            }
            if ep.subject == n_subjects {
                // entering a new subject
                if n_subjects > 0 && !(has_a && has_b) {
                    return Err(DatasetError::SingleClassSubject { subject: n_subjects - 1 });
                }
                n_subjects += 1;
                has_a = false;
                has_b = false;
            } else if ep.subject + 1 != n_subjects {
                return Err(DatasetError::BadSubjectOrder { epoch: i });
            }
            match ep.label {
                Condition::A => has_a = true,
                Condition::B => has_b = true,
            }
        }
        if !(has_a && has_b) {
            return Err(DatasetError::SingleClassSubject { subject: n_subjects - 1 });
        }
        Ok(Dataset { data, epochs, n_subjects })
    }

    /// Number of voxels (rows of the activity matrix).
    pub fn n_voxels(&self) -> usize {
        self.data.rows()
    }

    /// Number of acquired time points.
    pub fn n_timepoints(&self) -> usize {
        self.data.cols()
    }

    /// Number of subjects.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Total number of labeled epochs across all subjects.
    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// The epoch table, grouped by subject.
    pub fn epochs(&self) -> &[EpochSpec] {
        &self.epochs
    }

    /// The raw activity matrix (`n_voxels × n_timepoints`).
    pub fn data(&self) -> &Mat {
        &self.data
    }

    /// Indices into [`Self::epochs`] belonging to `subject`.
    // audit: allow(panicpath) — start comes from position() (< len) or 0; total slicing; audit: allow(deadpub) — library API exercised by unit tests
    pub fn epoch_range_of_subject(&self, subject: usize) -> std::ops::Range<usize> {
        let start = self.epochs.iter().position(|e| e.subject == subject).unwrap_or(0);
        let end = start + self.epochs[start..].iter().take_while(|e| e.subject == subject).count();
        start..end
    }

    /// Epoch labels in table order.
    pub fn labels(&self) -> Vec<Condition> {
        self.epochs.iter().map(|e| e.label).collect()
    }

    /// One voxel's raw activity over an epoch window.
    ///
    /// # Panics
    /// If `voxel` or `epoch` is out of range for the dataset.
    pub(crate) fn epoch_series(&self, voxel: usize, epoch: usize) -> &[f32] {
        let ep = &self.epochs[epoch];
        &self.data.row(voxel)[ep.start..ep.start + ep.len]
    }

    /// Consume into parts (used by the I/O layer).
    pub fn into_parts(self) -> (Mat, Vec<EpochSpec>) {
        (self.data, self.epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n_vox: usize, nt: usize, epochs: Vec<EpochSpec>) -> Result<Dataset, DatasetError> {
        Dataset::new(Mat::zeros(n_vox, nt), epochs)
    }

    fn ep(subject: usize, label: Condition, start: usize, len: usize) -> EpochSpec {
        EpochSpec { subject, label, start, len }
    }

    #[test]
    fn accepts_wellformed_two_subject_dataset() {
        let d = tiny(
            4,
            40,
            vec![
                ep(0, Condition::A, 0, 10),
                ep(0, Condition::B, 10, 10),
                ep(1, Condition::B, 20, 10),
                ep(1, Condition::A, 30, 10),
            ],
        )
        .unwrap();
        assert_eq!(d.n_subjects(), 2);
        assert_eq!(d.n_epochs(), 4);
        assert_eq!(d.epoch_range_of_subject(0), 0..2);
        assert_eq!(d.epoch_range_of_subject(1), 2..4);
    }

    #[test]
    fn rejects_empty_epoch_table() {
        assert_eq!(tiny(2, 10, vec![]).unwrap_err(), DatasetError::NoEpochs);
    }

    #[test]
    fn rejects_out_of_range_epoch() {
        let err =
            tiny(2, 10, vec![ep(0, Condition::A, 5, 10), ep(0, Condition::B, 0, 5)]).unwrap_err();
        assert!(matches!(err, DatasetError::EpochOutOfRange { epoch: 0, .. }));
    }

    #[test]
    fn rejects_zero_length_epoch() {
        let err = tiny(2, 10, vec![ep(0, Condition::A, 0, 0)]).unwrap_err();
        assert!(matches!(err, DatasetError::EmptyEpoch { epoch: 0 }));
    }

    #[test]
    fn rejects_nongrouped_subjects() {
        let err = tiny(
            2,
            40,
            vec![
                ep(0, Condition::A, 0, 5),
                ep(0, Condition::B, 5, 5),
                ep(1, Condition::A, 10, 5),
                ep(1, Condition::B, 15, 5),
                ep(0, Condition::A, 20, 5),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::BadSubjectOrder { epoch: 4 }));
    }

    #[test]
    fn rejects_skipped_subject_id() {
        let err = tiny(
            2,
            40,
            vec![ep(0, Condition::A, 0, 5), ep(0, Condition::B, 5, 5), ep(2, Condition::A, 10, 5)],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::BadSubjectOrder { epoch: 2 }));
    }

    #[test]
    fn rejects_single_class_subject() {
        let err = tiny(
            2,
            40,
            vec![
                ep(0, Condition::A, 0, 5),
                ep(0, Condition::A, 5, 5),
                ep(1, Condition::A, 10, 5),
                ep(1, Condition::B, 15, 5),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::SingleClassSubject { subject: 0 }));
    }

    #[test]
    fn rejects_single_class_final_subject() {
        let err = tiny(
            2,
            40,
            vec![ep(0, Condition::A, 0, 5), ep(0, Condition::B, 5, 5), ep(1, Condition::B, 15, 5)],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::SingleClassSubject { subject: 1 }));
    }

    #[test]
    fn epoch_series_windows_the_row() {
        let data = Mat::from_fn(2, 12, |r, c| (r * 100 + c) as f32);
        let d =
            Dataset::new(data, vec![ep(0, Condition::A, 2, 3), ep(0, Condition::B, 6, 3)]).unwrap();
        assert_eq!(d.epoch_series(1, 0), &[102.0, 103.0, 104.0]);
        assert_eq!(d.epoch_series(0, 1), &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn condition_parse_roundtrip() {
        for c in [Condition::A, Condition::B] {
            assert_eq!(Condition::parse(c.token()).unwrap(), c);
        }
        assert!(Condition::parse("x").is_err());
        assert_eq!(Condition::A.sign(), 1.0);
        assert_eq!(Condition::B.sign(), -1.0);
    }
}
