//! # fcma-fmri — fMRI data substrate for FCMA
//!
//! Provides everything FCMA needs on the data side:
//!
//! * [`dataset`] — the [`Dataset`] type: a voxels × time activity matrix
//!   plus a validated, subject-grouped epoch table;
//! * [`epoch`] — per-epoch normalization (paper Eq. 2) producing the
//!   matrices the correlation kernels multiply;
//! * [`synth`] — a synthetic generator with *planted* condition-dependent
//!   correlation structure standing in for the paper's human datasets
//!   (substitution documented in DESIGN.md §2);
//! * [`noise`] — AR(1) temporal noise, drift, and Gaussian sampling;
//! * [`io`] — the binary activity container and text epoch-table formats;
//! * [`presets`] — configurations mirroring the paper's *face-scene* and
//!   *attention* datasets (Table 2) at full and laptop scales.

pub mod dataset;
pub mod epoch;
pub mod geometry;
pub mod hrf;
pub mod io;
pub mod mask;
pub mod noise;
pub mod presets;
pub mod synth;

pub use dataset::{Condition, Dataset, DatasetError, EpochSpec};
pub use epoch::NormalizedEpochs;
pub use geometry::Cluster;
pub use geometry::{extract_clusters, Grid3};
pub use hrf::Hrf;
pub use mask::VoxelMask;
pub use synth::{GroundTruth, Placement, SynthConfig};
