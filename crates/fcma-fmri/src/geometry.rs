//! 3-D voxel geometry: grids, masks, and cluster extraction.
//!
//! FCMA's output is a ranked voxel list, but neuroscientists consume
//! *regions*: "the brain regions constituted by top voxels are identified
//! as ROIs" (paper §3.1.2). This module supplies the spatial structure
//! needed for that last step — a 3-D grid mapping between voxel indices
//! and coordinates, spherical neighborhood queries for building spatially
//! coherent synthetic networks, and connected-component (flood-fill)
//! cluster extraction over selected voxel sets.

/// A dense 3-D voxel grid with row-major (x-fastest) linearization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Extent along x.
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z.
    pub nz: usize,
}

impl Grid3 {
    /// A grid with the given extents.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "Grid3: zero extent");
        Grid3 { nx, ny, nz }
    }

    /// The most cubic grid containing at least `n` voxels.
    pub fn cube_for(n: usize) -> Self {
        let side = (n as f64).cbrt().ceil() as usize;
        Grid3::new(side.max(1), side.max(1), side.max(1))
    }

    /// Total voxels.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid is degenerate (never: extents are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear index of `(x, y, z)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        assert!(x < self.nx && y < self.ny && z < self.nz, "Grid3: ({x},{y},{z}) out of bounds");
        (z * self.ny + y) * self.nx + x
    }

    /// Coordinates of linear index `i`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        assert!(i < self.len(), "Grid3: index {i} out of bounds");
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        (x, y, z)
    }

    /// Euclidean distance between two voxel centers.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay, az) = self.coords(a);
        let (bx, by, bz) = self.coords(b);
        let dx = ax as f64 - bx as f64;
        let dy = ay as f64 - by as f64;
        let dz = az as f64 - bz as f64;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// 6-connected (face) neighbors of voxel `i`, within bounds.
    pub(crate) fn neighbors6(&self, i: usize) -> Vec<usize> {
        let (x, y, z) = self.coords(i);
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push(self.index(x - 1, y, z));
        }
        if x + 1 < self.nx {
            out.push(self.index(x + 1, y, z));
        }
        if y > 0 {
            out.push(self.index(x, y - 1, z));
        }
        if y + 1 < self.ny {
            out.push(self.index(x, y + 1, z));
        }
        if z > 0 {
            out.push(self.index(x, y, z - 1));
        }
        if z + 1 < self.nz {
            out.push(self.index(x, y, z + 1));
        }
        out
    }

    /// All voxels within Euclidean `radius` of `center` (a spherical ROI
    /// seed), sorted by linear index.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn sphere(&self, center: usize, radius: f64) -> Vec<usize> {
        let (cx, cy, cz) = self.coords(center);
        let r = radius.max(0.0);
        let ri = r.ceil() as usize;
        let mut out = Vec::new();
        let x0 = cx.saturating_sub(ri);
        let y0 = cy.saturating_sub(ri);
        let z0 = cz.saturating_sub(ri);
        for z in z0..(cz + ri + 1).min(self.nz) {
            for y in y0..(cy + ri + 1).min(self.ny) {
                for x in x0..(cx + ri + 1).min(self.nx) {
                    let i = self.index(x, y, z);
                    if self.distance(center, i) <= r + 1e-9 {
                        out.push(i);
                    }
                }
            }
        }
        out
    }
}

/// A connected cluster of selected voxels.
#[derive(Debug, Clone, PartialEq, Eq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct Cluster {
    /// Member voxels, sorted.
    pub voxels: Vec<usize>,
}

impl Cluster {
    /// Cluster size.
    pub fn len(&self) -> usize {
        self.voxels.len()
    }

    /// True when empty (never returned by [`extract_clusters`]).
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// Center of mass in grid coordinates.
    pub fn centroid(&self, grid: &Grid3) -> (f64, f64, f64) {
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sz = 0.0;
        for &v in &self.voxels {
            let (x, y, z) = grid.coords(v);
            sx += x as f64;
            sy += y as f64;
            sz += z as f64;
        }
        let n = self.voxels.len().max(1) as f64;
        (sx / n, sy / n, sz / n)
    }
}

/// Partition a selected voxel set into 6-connected clusters (flood fill),
/// returned largest-first. Singleton clusters are kept — filtering by a
/// minimum size is the caller's choice.
pub fn extract_clusters(grid: &Grid3, selected: &[usize]) -> Vec<Cluster> {
    use std::collections::HashSet;
    let set: HashSet<usize> = selected.iter().copied().collect();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut clusters = Vec::new();
    for &start in selected {
        if seen.contains(&start) {
            continue;
        }
        let mut stack = vec![start];
        let mut members = Vec::new();
        seen.insert(start);
        while let Some(v) = stack.pop() {
            members.push(v);
            for nb in grid.neighbors6(v) {
                if set.contains(&nb) && seen.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        members.sort_unstable();
        clusters.push(Cluster { voxels: members });
    }
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then(a.voxels.cmp(&b.voxels)));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let g = Grid3::new(4, 5, 6);
        assert_eq!(g.len(), 120);
        for i in 0..g.len() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.index(x, y, z), i);
        }
    }

    #[test]
    fn cube_for_contains_n() {
        for n in [1usize, 7, 96, 1000, 34_470] {
            let g = Grid3::cube_for(n);
            assert!(g.len() >= n, "cube_for({n}) = {g:?}");
        }
        assert_eq!(Grid3::cube_for(27), Grid3::new(3, 3, 3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_checks_bounds() {
        let _ = Grid3::new(2, 2, 2).index(2, 0, 0);
    }

    #[test]
    fn neighbors_at_corner_and_center() {
        let g = Grid3::new(3, 3, 3);
        assert_eq!(g.neighbors6(g.index(0, 0, 0)).len(), 3);
        assert_eq!(g.neighbors6(g.index(1, 1, 1)).len(), 6);
        // Neighbors are at distance exactly 1.
        for nb in g.neighbors6(g.index(1, 1, 1)) {
            assert!((g.distance(g.index(1, 1, 1), nb) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sphere_radius_zero_is_center() {
        let g = Grid3::new(5, 5, 5);
        let c = g.index(2, 2, 2);
        assert_eq!(g.sphere(c, 0.0), vec![c]);
    }

    #[test]
    fn sphere_radius_one_is_face_neighborhood() {
        let g = Grid3::new(5, 5, 5);
        let c = g.index(2, 2, 2);
        let s = g.sphere(c, 1.0);
        assert_eq!(s.len(), 7); // center + 6 faces
        for v in &s {
            assert!(g.distance(c, *v) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn sphere_clips_at_boundaries() {
        let g = Grid3::new(4, 4, 4);
        let corner = g.index(0, 0, 0);
        let s = g.sphere(corner, 1.0);
        assert_eq!(s.len(), 4); // center + 3 in-bounds faces
    }

    #[test]
    fn clusters_separate_disconnected_blobs() {
        let g = Grid3::new(10, 10, 1);
        // Blob A: an L of 4 voxels; blob B: a distant pair; singleton C.
        let a = vec![g.index(0, 0, 0), g.index(1, 0, 0), g.index(1, 1, 0), g.index(2, 1, 0)];
        let b = vec![g.index(7, 7, 0), g.index(7, 8, 0)];
        let c = vec![g.index(4, 4, 0)];
        let mut all: Vec<usize> = a.iter().chain(&b).chain(&c).copied().collect();
        all.sort_unstable();
        let clusters = extract_clusters(&g, &all);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].len(), 4);
        assert_eq!(clusters[1].len(), 2);
        assert_eq!(clusters[2].len(), 1);
        let mut a_sorted = a.clone();
        a_sorted.sort_unstable();
        assert_eq!(clusters[0].voxels, a_sorted);
    }

    #[test]
    fn diagonal_voxels_are_not_connected() {
        let g = Grid3::new(3, 3, 1);
        let sel = vec![g.index(0, 0, 0), g.index(1, 1, 0)];
        let clusters = extract_clusters(&g, &sel);
        assert_eq!(clusters.len(), 2, "6-connectivity must not join diagonals");
    }

    #[test]
    fn centroid_of_symmetric_cluster() {
        let g = Grid3::new(3, 3, 3);
        let sel: Vec<usize> = (0..g.len()).collect();
        let clusters = extract_clusters(&g, &sel);
        assert_eq!(clusters.len(), 1);
        let (cx, cy, cz) = clusters[0].centroid(&g);
        assert!((cx - 1.0).abs() < 1e-12 && (cy - 1.0).abs() < 1e-12 && (cz - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_gives_no_clusters() {
        let g = Grid3::new(2, 2, 2);
        assert!(extract_clusters(&g, &[]).is_empty());
    }
}
