//! Brain masks: restricting analysis to a voxel subset.
//!
//! Real FCMA never runs on the raw scanner grid — a brain mask first
//! removes air, skull, and non-gray-matter voxels (the paper's 34,470
//! voxels *are* the masked count of a larger acquisition grid). A
//! [`VoxelMask`] selects the voxels to keep; applying it produces a
//! compacted [`Dataset`] plus the mapping back to original indices so
//! selected voxels can be reported in acquisition space.

use crate::dataset::Dataset;
use crate::geometry::Grid3;
use fcma_linalg::Mat;

/// A voxel-inclusion mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoxelMask {
    keep: Vec<bool>,
}

impl VoxelMask {
    /// Mask keeping every voxel.
    pub fn all(n_voxels: usize) -> Self {
        VoxelMask { keep: vec![true; n_voxels] }
    }

    /// Mask from an explicit sorted-or-not index list.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_indices(n_voxels: usize, indices: &[usize]) -> Self {
        let mut keep = vec![false; n_voxels];
        for &i in indices {
            assert!(i < n_voxels, "VoxelMask: index {i} out of range ({n_voxels})");
            keep[i] = true;
        }
        VoxelMask { keep }
    }

    /// Mask from a predicate over voxel indices.
    pub fn from_fn(n_voxels: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        VoxelMask { keep: (0..n_voxels).map(&mut f).collect() }
    }

    /// Threshold mask: keep voxels whose mean absolute activity exceeds
    /// `threshold` — the standard crude brain/air separation (air voxels
    /// have near-zero signal).
    pub fn threshold_mean_abs(dataset: &Dataset, threshold: f32) -> Self {
        let nt = dataset.n_timepoints().max(1) as f32;
        VoxelMask {
            keep: (0..dataset.n_voxels())
                .map(|v| {
                    let mean_abs = dataset.data().row(v).iter().map(|x| x.abs()).sum::<f32>() / nt;
                    mean_abs > threshold
                })
                .collect(),
        }
    }

    /// Spherical mask on a grid (a crude "brain is round" mask): keep
    /// voxels within `radius` of the grid center.
    // audit: allow(deadpub) — library API exercised by unit tests; kept for external use
    pub fn sphere(grid: &Grid3, radius: f64) -> Self {
        let center = grid.index(grid.nx / 2, grid.ny / 2, grid.nz / 2);
        VoxelMask { keep: (0..grid.len()).map(|v| grid.distance(center, v) <= radius).collect() }
    }

    /// Total voxels the mask is defined over.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// True when defined over zero voxels.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Number of kept voxels.
    pub fn n_kept(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Whether voxel `v` is kept.
    pub fn contains(&self, v: usize) -> bool {
        self.keep.get(v).copied().unwrap_or(false)
    }

    /// Kept voxel indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.keep.iter().enumerate().filter_map(|(i, &k)| if k { Some(i) } else { None }).collect()
    }

    /// Intersect with another mask of the same length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and(&self, other: &VoxelMask) -> VoxelMask {
        assert_eq!(self.len(), other.len(), "VoxelMask::and: length mismatch");
        VoxelMask { keep: self.keep.iter().zip(&other.keep).map(|(&a, &b)| a && b).collect() }
    }

    /// Apply to a dataset: returns the compacted dataset (kept voxels
    /// only, epoch table unchanged) and the compact→original index map.
    ///
    /// # Panics
    /// Panics if the mask length differs from the dataset's voxel count
    /// or keeps zero voxels.
    pub fn apply(&self, dataset: &Dataset) -> (Dataset, Vec<usize>) {
        assert_eq!(
            self.len(),
            dataset.n_voxels(),
            "VoxelMask::apply: mask over {} voxels, dataset has {}",
            self.len(),
            dataset.n_voxels()
        );
        let kept = self.indices();
        assert!(!kept.is_empty(), "VoxelMask::apply: empty mask");
        let nt = dataset.n_timepoints();
        let mut data = Mat::zeros(kept.len(), nt);
        for (ci, &oi) in kept.iter().enumerate() {
            data.row_mut(ci).copy_from_slice(dataset.data().row(oi));
        }
        let masked = Dataset::new(data, dataset.epochs().to_vec())
            .expect("masking preserves epoch validity");
        (masked, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn all_and_from_indices() {
        let m = VoxelMask::all(5);
        assert_eq!(m.n_kept(), 5);
        let m = VoxelMask::from_indices(5, &[0, 3]);
        assert_eq!(m.n_kept(), 2);
        assert!(m.contains(0) && m.contains(3) && !m.contains(1));
        assert_eq!(m.indices(), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_indices_checks_bounds() {
        let _ = VoxelMask::from_indices(3, &[3]);
    }

    #[test]
    fn intersection() {
        let a = VoxelMask::from_indices(4, &[0, 1, 2]);
        let b = VoxelMask::from_indices(4, &[1, 2, 3]);
        assert_eq!(a.and(&b).indices(), vec![1, 2]);
    }

    #[test]
    fn sphere_mask_is_centered() {
        let g = Grid3::new(5, 5, 5);
        let m = VoxelMask::sphere(&g, 1.0);
        assert_eq!(m.n_kept(), 7);
        assert!(m.contains(g.index(2, 2, 2)));
        assert!(!m.contains(g.index(0, 0, 0)));
    }

    #[test]
    fn apply_compacts_and_maps_back() {
        let (d, _) = presets::tiny().generate();
        let mask = VoxelMask::from_fn(d.n_voxels(), |v| v % 3 == 0);
        let (masked, map) = mask.apply(&d);
        assert_eq!(masked.n_voxels(), mask.n_kept());
        assert_eq!(masked.n_epochs(), d.n_epochs());
        for (ci, &oi) in map.iter().enumerate() {
            assert_eq!(masked.data().row(ci), d.data().row(oi));
        }
    }

    #[test]
    fn threshold_removes_dead_voxels() {
        let (d, _) = presets::tiny().generate();
        // Zero out a few voxels, then threshold.
        let (mut data, epochs) = d.into_parts();
        for v in [0usize, 5, 10] {
            data.row_mut(v).fill(0.0);
        }
        let d = Dataset::new(data, epochs).unwrap();
        let mask = VoxelMask::threshold_mean_abs(&d, 0.01);
        assert!(!mask.contains(0) && !mask.contains(5) && !mask.contains(10));
        assert_eq!(mask.n_kept(), d.n_voxels() - 3);
    }

    #[test]
    #[should_panic(expected = "empty mask")]
    fn apply_rejects_empty_mask() {
        let (d, _) = presets::tiny().generate();
        let mask = VoxelMask::from_indices(d.n_voxels(), &[]);
        let _ = mask.apply(&d);
    }

    #[test]
    fn masked_analysis_end_to_end_mapping() {
        // The planted voxels must survive masking and map back correctly.
        let cfg = presets::tiny();
        let (d, gt) = cfg.generate();
        // Keep planted voxels + every second voxel.
        let mut keep: Vec<usize> = (0..d.n_voxels()).filter(|v| v % 2 == 0).collect();
        keep.extend(&gt.informative);
        keep.sort_unstable();
        keep.dedup();
        let mask = VoxelMask::from_indices(d.n_voxels(), &keep);
        let (masked, map) = mask.apply(&d);
        // Every planted voxel appears in the compact dataset.
        for &inf in &gt.informative {
            let compact = map.iter().position(|&o| o == inf);
            assert!(compact.is_some(), "planted voxel {inf} lost by masking");
            let ci = compact.unwrap();
            assert_eq!(masked.data().row(ci), d.data().row(inf));
        }
    }
}
