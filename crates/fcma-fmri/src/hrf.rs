//! Hemodynamic response function (HRF) modeling.
//!
//! BOLD signal is not neural activity itself but activity convolved with
//! a slow hemodynamic response (~6 s to peak, ~12 s undershoot). The
//! synthetic generator can convolve its planted latent signals with the
//! canonical double-gamma HRF so the temporal statistics of the data
//! match what an fMRI scanner actually measures — epochs bleed into the
//! inter-epoch gaps, exactly the nuisance real FCMA preprocessing faces.

/// The canonical double-gamma HRF (SPM-style parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
// audit: allow(deadpub) — part of a referenced public signature; demotion trips private_interfaces
pub struct Hrf {
    /// Time-to-peak of the positive lobe, seconds (canonical 6).
    pub peak_delay_s: f64,
    /// Time-to-peak of the undershoot, seconds (canonical 16).
    pub undershoot_delay_s: f64,
    /// Dispersion of both lobes, seconds (canonical 1).
    pub dispersion_s: f64,
    /// Undershoot amplitude ratio (canonical 1/6).
    pub undershoot_ratio: f64,
    /// Repetition time: seconds per acquired volume.
    pub tr_s: f64,
}

impl Default for Hrf {
    fn default() -> Self {
        Hrf {
            peak_delay_s: 6.0,
            undershoot_delay_s: 16.0,
            dispersion_s: 1.0,
            undershoot_ratio: 1.0 / 6.0,
            tr_s: 1.5, // the paper's scanner: a volume every 1.5 s
        }
    }
}

/// Log-gamma via the Lanczos approximation (|error| < 1e-10 for x > 0).
fn ln_gamma(x: f64) -> f64 {
    // Lanczos g=7, n=9 coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_57e-6,
        1.505_632_735_149_311e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma pdf `t^(k-1) e^(-t/θ) / (Γ(k) θ^k)` with `k = delay/disp`,
/// `θ = disp` (the SPM parameterization).
fn gamma_shape(t: f64, delay: f64, dispersion: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    let k = delay / dispersion;
    // Work in log space to avoid overflow for large k.
    let log_v = (k - 1.0) * t.ln() - t / dispersion - ln_gamma(k) - k * dispersion.ln();
    log_v.exp()
}

impl Hrf {
    /// Sample the HRF kernel at the TR grid, truncated at 32 s, peak
    /// normalized to 1.
    ///
    /// # Panics
    /// Panics on non-positive TR or dispersion.
    pub fn kernel(&self) -> Vec<f32> {
        assert!(self.tr_s > 0.0, "Hrf: TR must be positive");
        assert!(self.dispersion_s > 0.0, "Hrf: dispersion must be positive");
        let n = (32.0 / self.tr_s).ceil() as usize + 1;
        let mut k: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * self.tr_s;
                gamma_shape(t, self.peak_delay_s, self.dispersion_s)
                    - self.undershoot_ratio
                        * gamma_shape(t, self.undershoot_delay_s, self.dispersion_s)
            })
            .collect();
        let peak = k.iter().copied().fold(0.0f64, f64::max);
        assert!(peak > 0.0, "Hrf: degenerate kernel");
        for v in &mut k {
            *v /= peak;
        }
        k.into_iter().map(|v| v as f32).collect()
    }

    /// Convolve a neural time series with the HRF (causal, same length:
    /// output `t` depends on inputs `≤ t`).
    // audit: allow(panicpath) — j ranges over take(t + 1), so x[t - j] is in bounds
    pub(crate) fn convolve(&self, x: &[f32]) -> Vec<f32> {
        let k = self.kernel();
        let mut out = vec![0.0f32; x.len()];
        for (t, o) in out.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for (j, &kj) in k.iter().enumerate().take(t + 1) {
                s += kj * x[t - j];
            }
            *o = s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_peaks_near_six_seconds() {
        let h = Hrf::default();
        let k = h.kernel();
        let peak_idx = k.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_time = peak_idx as f64 * h.tr_s;
        assert!((4.0..7.5).contains(&peak_time), "HRF peak at {peak_time} s (idx {peak_idx})");
        assert!((k[peak_idx] - 1.0).abs() < 1e-6, "peak not normalized");
    }

    #[test]
    fn kernel_has_an_undershoot() {
        let k = Hrf::default().kernel();
        let min = k.iter().cloned().fold(f32::MAX, f32::min);
        assert!(min < -0.01, "no undershoot: min {min}");
        // Undershoot comes after the peak.
        let peak_idx = k.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let min_idx = k.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(min_idx > peak_idx);
    }

    #[test]
    fn kernel_starts_at_zero() {
        let k = Hrf::default().kernel();
        assert_eq!(k[0], 0.0);
    }

    #[test]
    fn convolution_is_causal() {
        let h = Hrf::default();
        // Impulse at t=10: response must be zero before t=10 and follow
        // the kernel after.
        let mut x = vec![0.0f32; 40];
        x[10] = 1.0;
        let y = h.convolve(&x);
        for t in 0..10 {
            assert_eq!(y[t], 0.0, "non-causal response at t={t}");
        }
        let k = h.kernel();
        for t in 10..40 {
            let expect = if t - 10 < k.len() { k[t - 10] } else { 0.0 };
            assert!((y[t] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn convolution_is_linear() {
        let h = Hrf::default();
        let a: Vec<f32> = (0..30).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..30).map(|i| (i as f32 * 1.3).cos()).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ya = h.convolve(&a);
        let yb = h.convolve(&b);
        let ysum = h.convolve(&sum);
        for t in 0..30 {
            assert!((ysum[t] - (ya[t] + yb[t])).abs() < 1e-4);
        }
    }

    #[test]
    fn convolution_smooths_blocks() {
        // A boxcar input: the convolved response must ramp up rather than
        // jump, and extend beyond the block's end (the bleed that makes
        // HRF data realistic).
        let h = Hrf::default();
        let mut x = vec![0.0f32; 40];
        for t in 5..13 {
            x[t] = 1.0;
        }
        let y = h.convolve(&x);
        assert!(y[5].abs() < 0.05, "response should be delayed");
        // Just past the block end (t=14: 1.5 s after) the positive lobe is
        // still feeding through; much later the undershoot takes over.
        assert!(y[14] > 0.2, "response should persist past the block end: {}", y[14]);
        assert!(y[22] < 0.0, "late undershoot expected: {}", y[22]);
        let peak: f32 = y.iter().cloned().fold(f32::MIN, f32::max);
        let peak_idx = y.iter().position(|&v| v == peak).unwrap();
        assert!(peak_idx > 8, "peak too early: {peak_idx}");
    }

    #[test]
    #[should_panic(expected = "TR must be positive")]
    fn rejects_bad_tr() {
        let _ = Hrf { tr_s: 0.0, ..Default::default() }.kernel();
    }
}
