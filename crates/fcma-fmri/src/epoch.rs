//! Epoch extraction and per-epoch normalization (paper Eq. 2).
//!
//! Before any correlation is computed, FCMA normalizes each voxel's
//! activity within each epoch (subtract the epoch mean, divide by the
//! root sum of squares) so that Pearson correlation reduces to a dot
//! product and the full correlation matrix to a matrix multiply
//! (paper §3.1, Eq. 2–3). This module materializes those normalized
//! epoch matrices in the layouts the stage-1 kernels want:
//!
//! * the whole-brain side as `k × N` (time-major — a "brain" matrix whose
//!   columns are voxels), ready to be the right operand;
//! * any task's assigned-voxel block as `V × k` (voxel-major), extracted
//!   from the same normalized values, ready to be the left operand.

use crate::dataset::Dataset;
use fcma_linalg::{normalize_epoch, Mat};
use std::ops::Range;

/// All epochs of a dataset, normalized per Eq. 2 and laid out for the
/// correlation kernels.
#[derive(Debug, Clone)]
pub struct NormalizedEpochs {
    /// One `k × N` matrix per epoch (time-major whole-brain activity).
    brain: Vec<Mat>,
    n_voxels: usize,
}

impl NormalizedEpochs {
    /// Normalize every epoch of `dataset`.
    ///
    /// Cost is one pass over each epoch window; dead (constant) voxels
    /// normalize to all-zero columns, giving zero correlation with
    /// everything (see [`fcma_linalg::normalize_epoch`]).
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let keep: Vec<usize> = (0..dataset.n_epochs()).collect();
        Self::from_dataset_subset(dataset, &keep)
    }

    /// Normalize only the epochs whose table indices appear in `keep`
    /// (in `keep` order). Used by cross-validation folds that exclude a
    /// subject's epochs.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_dataset_subset(dataset: &Dataset, keep: &[usize]) -> Self {
        let n = dataset.n_voxels();
        let mut brain = Vec::with_capacity(keep.len());
        let mut scratch: Vec<f32> = Vec::new();
        for &e in keep {
            assert!(e < dataset.n_epochs(), "epoch index {e} out of range");
            let k = dataset.epochs()[e].len;
            let mut m = Mat::zeros(k, n);
            for v in 0..n {
                scratch.clear();
                scratch.extend_from_slice(dataset.epoch_series(v, e));
                normalize_epoch(&mut scratch);
                for (t, &val) in scratch.iter().enumerate() {
                    m.set(t, v, val);
                }
            }
            brain.push(m);
        }
        NormalizedEpochs { brain, n_voxels: n }
    }

    /// Number of epochs.
    pub fn n_epochs(&self) -> usize {
        self.brain.len()
    }

    /// Number of brain voxels (`N`).
    pub fn n_voxels(&self) -> usize {
        self.n_voxels
    }

    /// The `k × N` normalized whole-brain matrix for epoch `e`.
    ///
    /// # Panics
    /// If `e` is not a valid epoch index.
    pub fn brain(&self, e: usize) -> &Mat {
        &self.brain[e]
    }

    /// Extract the `V × k` assigned-voxel matrix for epoch `e` and the
    /// voxel range `voxels` (the left operand of the stage-1 multiply).
    ///
    /// # Panics
    /// Panics if the range exceeds the voxel count.
    pub(crate) fn assigned_block(&self, e: usize, voxels: Range<usize>) -> Mat {
        assert!(
            voxels.end <= self.n_voxels,
            "assigned_block: voxel range {voxels:?} exceeds N={}",
            self.n_voxels
        );
        let b = &self.brain[e];
        let k = b.rows();
        Mat::from_fn(voxels.len(), k, |r, c| b.get(c, voxels.start + r))
    }

    /// Extract assigned blocks for every epoch at once.
    pub fn assigned_blocks(&self, voxels: Range<usize>) -> Vec<Mat> {
        (0..self.n_epochs()).map(|e| self.assigned_block(e, voxels.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Condition, EpochSpec};
    use fcma_linalg::dot;

    fn dataset() -> Dataset {
        // 3 voxels, 24 time points, 2 epochs of 12 for one subject.
        let data = Mat::from_fn(3, 24, |r, c| ((r + 1) * (c + 3)) as f32 % 7.0 + r as f32);
        Dataset::new(
            data,
            vec![
                EpochSpec { subject: 0, label: Condition::A, start: 0, len: 12 },
                EpochSpec { subject: 0, label: Condition::B, start: 12, len: 12 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_are_time_major() {
        let d = dataset();
        let ne = NormalizedEpochs::from_dataset(&d);
        assert_eq!(ne.n_epochs(), 2);
        assert_eq!(ne.brain(0).rows(), 12);
        assert_eq!(ne.brain(0).cols(), 3);
    }

    #[test]
    fn columns_have_unit_self_correlation() {
        let d = dataset();
        let ne = NormalizedEpochs::from_dataset(&d);
        for e in 0..2 {
            let b = ne.brain(e);
            for v in 0..3 {
                let col: Vec<f32> = (0..b.rows()).map(|t| b.get(t, v)).collect();
                let s = dot(&col, &col);
                assert!((s - 1.0).abs() < 1e-4, "epoch {e} voxel {v}: {s}");
            }
        }
    }

    #[test]
    fn assigned_block_is_transposed_slice() {
        let d = dataset();
        let ne = NormalizedEpochs::from_dataset(&d);
        let blk = ne.assigned_block(1, 1..3);
        assert_eq!(blk.rows(), 2);
        assert_eq!(blk.cols(), 12);
        for r in 0..2 {
            for t in 0..12 {
                assert_eq!(blk.get(r, t), ne.brain(1).get(t, 1 + r));
            }
        }
    }

    #[test]
    fn dead_voxel_normalizes_to_zero_column() {
        let mut data = Mat::from_fn(2, 12, |_, c| c as f32);
        data.row_mut(1).fill(5.0); // constant voxel
        let d = Dataset::new(
            data,
            vec![
                EpochSpec { subject: 0, label: Condition::A, start: 0, len: 6 },
                EpochSpec { subject: 0, label: Condition::B, start: 6, len: 6 },
            ],
        )
        .unwrap();
        let ne = NormalizedEpochs::from_dataset(&d);
        for t in 0..6 {
            assert_eq!(ne.brain(0).get(t, 1), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "voxel range")]
    fn assigned_block_rejects_bad_range() {
        let d = dataset();
        let ne = NormalizedEpochs::from_dataset(&d);
        let _ = ne.assigned_block(0, 2..5);
    }
}
