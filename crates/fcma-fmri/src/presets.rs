//! Preset configurations mirroring the paper's two evaluation datasets
//! (Table 2) plus scaled-down variants sized for laptop runs.
//!
//! | Dataset    | Voxels | Subjects | Epochs | Epoch length |
//! |------------|--------|----------|--------|--------------|
//! | face-scene | 34,470 | 18       | 216    | 12           |
//! | attention  | 25,260 | 30       | 540    | 12           |

use crate::noise::{Ar1, Drift};
use crate::synth::{Placement, SynthConfig};

/// Full-scale *face-scene* shape: 34,470 voxels, 18 subjects, 216 epochs
/// of 12 time points (12 epochs per subject).
pub(crate) fn face_scene_full() -> SynthConfig {
    SynthConfig {
        n_voxels: 34_470,
        n_subjects: 18,
        epochs_per_subject: 12,
        epoch_len: 12,
        gap: 4,
        n_informative: 256,
        coupling: 0.9,
        noise: Ar1 { phi: 0.4, sigma: 1.0 },
        drift: Drift { linear: 1.0, sin_amp: 0.5, sin_cycles: 2.0 },
        seed: 0xFACE_5CE0,
        placement: Placement::Random,
        hrf: None,
    }
}

/// Full-scale *attention* shape: 25,260 voxels, 30 subjects, 540 epochs of
/// 12 time points (18 epochs per subject).
pub(crate) fn attention_full() -> SynthConfig {
    SynthConfig {
        n_voxels: 25_260,
        n_subjects: 30,
        epochs_per_subject: 18,
        epoch_len: 12,
        gap: 4,
        n_informative: 192,
        coupling: 0.9,
        noise: Ar1 { phi: 0.4, sigma: 1.0 },
        drift: Drift { linear: 1.0, sin_amp: 0.5, sin_cycles: 2.0 },
        seed: 0xA77E_0710,
        placement: Placement::Random,
        hrf: None,
    }
}

/// *face-scene* with the voxel count scaled down but the full epoch
/// structure retained (18 subjects × 12 epochs of 12 tp). Shape-faithful
/// for everything except `N`.
pub fn face_scene_scaled(n_voxels: usize) -> SynthConfig {
    let mut cfg = face_scene_full();
    cfg.n_voxels = n_voxels;
    cfg.n_informative = (n_voxels / 64).max(4) & !1; // even, ~1.5% of brain
    cfg
}

/// *attention* with the voxel count scaled down (30 subjects × 18 epochs
/// of 12 tp retained).
pub fn attention_scaled(n_voxels: usize) -> SynthConfig {
    let mut cfg = attention_full();
    cfg.n_voxels = n_voxels;
    cfg.n_informative = (n_voxels / 64).max(4) & !1;
    cfg
}

/// A tiny configuration for unit and integration tests: completes an
/// end-to-end FCMA run in well under a second.
pub fn tiny() -> SynthConfig {
    SynthConfig {
        n_voxels: 96,
        n_subjects: 4,
        epochs_per_subject: 8,
        epoch_len: 12,
        gap: 2,
        n_informative: 12,
        coupling: 1.4,
        noise: Ar1 { phi: 0.3, sigma: 1.0 },
        drift: Drift { linear: 0.5, sin_amp: 0.3, sin_cycles: 1.5 },
        seed: 0x7E57_7E57,
        placement: Placement::Random,
        hrf: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_scene_matches_table2() {
        let cfg = face_scene_full();
        assert_eq!(cfg.n_voxels, 34_470);
        assert_eq!(cfg.n_subjects, 18);
        assert_eq!(cfg.n_epochs(), 216);
        assert_eq!(cfg.epoch_len, 12);
    }

    #[test]
    fn attention_matches_table2() {
        let cfg = attention_full();
        assert_eq!(cfg.n_voxels, 25_260);
        assert_eq!(cfg.n_subjects, 30);
        assert_eq!(cfg.n_epochs(), 540);
        assert_eq!(cfg.epoch_len, 12);
    }

    #[test]
    fn scaled_presets_keep_epoch_structure() {
        let cfg = face_scene_scaled(2048);
        assert_eq!(cfg.n_voxels, 2048);
        assert_eq!(cfg.n_epochs(), 216);
        assert!(cfg.n_informative.is_multiple_of(2) && cfg.n_informative >= 4);
        let cfg = attention_scaled(1024);
        assert_eq!(cfg.n_epochs(), 540);
    }

    #[test]
    fn tiny_preset_generates() {
        let (d, gt) = tiny().generate();
        assert_eq!(d.n_voxels(), 96);
        assert_eq!(gt.informative.len(), 12);
    }
}
