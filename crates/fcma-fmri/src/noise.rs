//! Noise processes for synthetic fMRI time series.
//!
//! Real BOLD signal rides on structured noise: slow scanner drift,
//! temporally autocorrelated physiological noise, and thermal white
//! noise. The synthetic generator composes these three processes so the
//! normalization and correlation stages face realistic (non-iid) inputs.

use rand::Rng;

/// First-order autoregressive process: `x_t = phi·x_{t−1} + ε_t` with
/// `ε_t ~ N(0, sigma²)`, approximating physiological noise
/// autocorrelation in BOLD data (phi ≈ 0.3–0.6 at TR ≈ 1.5 s).
#[derive(Debug, Clone, Copy)]
pub struct Ar1 {
    /// Autoregressive coefficient, `|phi| < 1`.
    pub phi: f32,
    /// Innovation standard deviation.
    pub sigma: f32,
}

impl Ar1 {
    /// Generate `n` samples, starting from the stationary distribution.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f32> {
        assert!(self.phi.abs() < 1.0, "Ar1: |phi| must be < 1, got {}", self.phi);
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        // Stationary variance sigma² / (1 − phi²).
        let stat_sd = self.sigma / (1.0 - self.phi * self.phi).sqrt();
        let mut x = gaussian(rng) * stat_sd;
        out.push(x);
        for _ in 1..n {
            x = self.phi * x + gaussian(rng) * self.sigma;
            out.push(x);
        }
        out
    }
}

/// Slow linear + sinusoidal scanner drift.
#[derive(Debug, Clone, Copy)]
pub struct Drift {
    /// Total linear drift across the scan, in signal units.
    pub linear: f32,
    /// Amplitude of the slow sinusoidal component.
    pub sin_amp: f32,
    /// Number of sinusoid cycles across the scan.
    pub sin_cycles: f32,
}

impl Drift {
    /// Evaluate the drift at time `t` of `n` total points, with a
    /// per-voxel phase offset so voxels don't share an artifactual
    /// common component.
    pub fn at(&self, t: usize, n: usize, phase: f32) -> f32 {
        if n <= 1 {
            return 0.0;
        }
        let frac = t as f32 / (n - 1) as f32;
        self.linear * frac
            + self.sin_amp * (2.0 * std::f32::consts::PI * (self.sin_cycles * frac + phase)).sin()
    }
}

/// Standard normal sample via Box–Muller (keeps us independent of
/// `rand_distr`, which is outside the approved dependency set).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.random::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.random::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn gaussian_has_roughly_standard_moments() {
        let mut r = rng(1);
        let xs: Vec<f32> = (0..20_000).map(|_| gaussian(&mut r)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ar1_is_autocorrelated_at_lag_one() {
        let mut r = rng(2);
        let phi = 0.6;
        let xs = Ar1 { phi, sigma: 1.0 }.generate(&mut r, 50_000);
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        let lag1: f32 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f32>()
            / (xs.len() - 1) as f32;
        let rho = lag1 / var;
        assert!((rho - phi).abs() < 0.05, "lag-1 autocorr {rho}, expected ~{phi}");
    }

    #[test]
    fn ar1_zero_phi_is_white() {
        let mut r = rng(3);
        let xs = Ar1 { phi: 0.0, sigma: 2.0 }.generate(&mut r, 30_000);
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        let lag1: f32 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f32>()
            / (xs.len() - 1) as f32;
        assert!((lag1 / var).abs() < 0.03);
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn ar1_generate_lengths() {
        let mut r = rng(4);
        let gen = Ar1 { phi: 0.3, sigma: 1.0 };
        assert_eq!(gen.generate(&mut r, 0).len(), 0);
        assert_eq!(gen.generate(&mut r, 1).len(), 1);
        assert_eq!(gen.generate(&mut r, 17).len(), 17);
    }

    #[test]
    #[should_panic(expected = "|phi| must be < 1")]
    fn ar1_rejects_nonstationary_phi() {
        let mut r = rng(5);
        let _ = Ar1 { phi: 1.0, sigma: 1.0 }.generate(&mut r, 4);
    }

    #[test]
    fn drift_endpoints() {
        let d = Drift { linear: 2.0, sin_amp: 0.0, sin_cycles: 1.0 };
        assert_eq!(d.at(0, 100, 0.0), 0.0);
        assert!((d.at(99, 100, 0.0) - 2.0).abs() < 1e-6);
        // degenerate scan
        assert_eq!(d.at(0, 1, 0.0), 0.0);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let a = Ar1 { phi: 0.4, sigma: 1.5 }.generate(&mut rng(42), 64);
        let b = Ar1 { phi: 0.4, sigma: 1.5 }.generate(&mut rng(42), 64);
        assert_eq!(a, b);
    }
}
